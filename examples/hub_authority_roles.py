"""Case study: recovering hub and authority pages in a web-like graph.

The generator plants a block of "hub" pages that link to almost every page in
a set of "authority" pages, inside a sparse random background.  The directed
densest subgraph recovers the two roles as its S side (hubs) and T side
(authorities); the example also reports what an exact solver finds and how
close the 2-approximation gets.

Run with::

    python examples/hub_authority_roles.py
"""

from __future__ import annotations

from repro import DDSSession
from repro.datasets.casestudy import hub_authority_case, precision_recall


def main() -> None:
    case = hub_authority_case(n_pages=500, n_hubs=10, n_authorities=15, seed=8)
    graph = case.graph
    print(f"web graph: {graph.num_nodes} pages, {graph.num_edges} links\n")

    # One session serves both queries, sharing the per-graph caches.
    session = DDSSession(graph)
    exact = session.densest_subgraph("core-exact")
    approx = session.densest_subgraph("core-approx")

    for label, result in (("core-exact", exact), ("core-approx", approx)):
        hub_precision, hub_recall = precision_recall(result.s_nodes, case.true_s)
        auth_precision, auth_recall = precision_recall(result.t_nodes, case.true_t)
        print(f"[{label}]")
        print(f"  density = {result.density:.3f}  |S| = {result.s_size}  |T| = {result.t_size}")
        print(f"  hub recovery:       precision = {hub_precision:.2f}, recall = {hub_recall:.2f}")
        print(f"  authority recovery: precision = {auth_precision:.2f}, recall = {auth_recall:.2f}")
        if result.stats.get("flow_calls") is not None:
            print(f"  max-flow calls: {result.stats['flow_calls']}")
        print()

    ratio = approx.density / exact.density if exact.density else 0.0
    print(f"approximation quality: rho(core-approx) / rho(exact) = {ratio:.4f}")


if __name__ == "__main__":
    main()
