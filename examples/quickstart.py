"""Quickstart: find the densest directed subgraph of a small graph.

Run with::

    python examples/quickstart.py

The script builds a toy "who-retweets-whom" graph, runs the exact CoreExact
algorithm and the two approximation algorithms, and prints the (S, T) pair —
``S`` are the accounts doing the retweeting, ``T`` the accounts being
retweeted — together with the Kannan–Vinay density.
"""

from __future__ import annotations

from repro import DiGraph, densest_subgraph


def build_retweet_graph() -> DiGraph:
    """A tiny social graph: three fans heavily amplify two influencers."""
    edges = [
        # A dense "amplification" block: fans -> influencers.
        ("fan_1", "influencer_a"),
        ("fan_1", "influencer_b"),
        ("fan_2", "influencer_a"),
        ("fan_2", "influencer_b"),
        ("fan_3", "influencer_a"),
        ("fan_3", "influencer_b"),
        # Background chatter.
        ("alice", "bob"),
        ("bob", "carol"),
        ("carol", "alice"),
        ("dave", "influencer_a"),
        ("influencer_a", "alice"),
        ("erin", "dave"),
    ]
    return DiGraph.from_edges(edges)


def main() -> None:
    graph = build_retweet_graph()
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    for method in ("core-exact", "core-approx", "peel-approx"):
        result = densest_subgraph(graph, method=method)
        print(f"[{method}]")
        print(f"  density rho(S, T) = {result.density:.4f}")
        print(f"  S (sources) = {sorted(map(str, result.s_nodes))}")
        print(f"  T (targets) = {sorted(map(str, result.t_nodes))}")
        print(f"  exact answer: {result.is_exact}\n")


if __name__ == "__main__":
    main()
