"""Quickstart: find the densest directed subgraph of a small graph.

Run with::

    python examples/quickstart.py

The script builds a toy "who-retweets-whom" graph, opens one
:class:`repro.DDSSession` over it, and queries the exact CoreExact algorithm
and the two approximation algorithms through the session — so the per-graph
state (degree arrays, cores, decision networks) is shared across the three
queries.  It prints the (S, T) pair — ``S`` are the accounts doing the
retweeting, ``T`` the accounts being retweeted — together with the
Kannan–Vinay density, then shows a top-2 query whose first round is served
straight from the session's result cache.
"""

from __future__ import annotations

from repro import DDSSession, DiGraph


def build_retweet_graph() -> DiGraph:
    """A tiny social graph: three fans heavily amplify two influencers."""
    edges = [
        # A dense "amplification" block: fans -> influencers.
        ("fan_1", "influencer_a"),
        ("fan_1", "influencer_b"),
        ("fan_2", "influencer_a"),
        ("fan_2", "influencer_b"),
        ("fan_3", "influencer_a"),
        ("fan_3", "influencer_b"),
        # Background chatter.
        ("alice", "bob"),
        ("bob", "carol"),
        ("carol", "alice"),
        ("dave", "influencer_a"),
        ("influencer_a", "alice"),
        ("erin", "dave"),
    ]
    return DiGraph.from_edges(edges)


def main() -> None:
    graph = build_retweet_graph()
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    session = DDSSession(graph)
    for method in ("core-exact", "core-approx", "peel-approx"):
        result = session.densest_subgraph(method)
        print(f"[{method}]")
        print(f"  density rho(S, T) = {result.density:.4f}")
        print(f"  S (sources) = {sorted(map(str, result.s_nodes))}")
        print(f"  T (targets) = {sorted(map(str, result.t_nodes))}")
        print(f"  exact answer: {result.is_exact}\n")

    # The greedy top-k query reuses the cached core-exact answer for its
    # first round instead of recomputing it.
    top2 = session.top_k(2, method="core-exact")
    print(f"top-2 edge-disjoint pairs: densities = {[round(r.density, 4) for r in top2]}")
    stats = session.cache_stats()
    print(
        f"session served {stats['queries']} queries with "
        f"{stats['result_cache_hits']} result-cache hits and "
        f"{stats['networks_reused']} reused decision networks"
    )


if __name__ == "__main__":
    main()
