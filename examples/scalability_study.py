"""Mini scalability study: approximation runtime as the graph grows.

Mirrors the paper's scalability experiment at laptop scale: take a synthetic
heavy-tailed graph, keep 20%, 40%, ..., 100% of its edges, and time the two
approximation algorithms on each prefix.  CoreApprox scales almost linearly
and stays well ahead of the ratio-sweep peeling baseline.

Run with::

    python examples/scalability_study.py
"""

from __future__ import annotations

import time

from repro import DDSSession
from repro.bench.workloads import edge_fraction_subgraph
from repro.datasets.registry import load_dataset


def main() -> None:
    base = load_dataset("amazon-medium")
    print(f"base graph: {base.num_nodes} nodes, {base.num_edges} edges\n")
    print(f"{'fraction':>9} | {'edges':>7} | {'core-approx (s)':>16} | {'peel-approx (s)':>16}")
    print("-" * 60)

    for percent in (20, 40, 60, 80, 100):
        sample = edge_fraction_subgraph(base, percent / 100.0, seed=percent)
        session = DDSSession(sample)
        timings = {}
        for method in ("core-approx", "peel-approx"):
            start = time.perf_counter()
            result = session.densest_subgraph(method)
            timings[method] = time.perf_counter() - start
            del result
        print(
            f"{percent:>8}% | {sample.num_edges:>7} | "
            f"{timings['core-approx']:>16.3f} | {timings['peel-approx']:>16.3f}"
        )

    print("\n(Each row re-runs both algorithms on an edge-sampled prefix of the graph.)")


if __name__ == "__main__":
    main()
