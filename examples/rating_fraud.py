"""Case study: detecting a review-boosting ring in a rating graph.

A group of fraudulent accounts rates a small set of products almost
exhaustively, while honest users rate a few random products each.  Because
rating edges are directed (user -> product), the densest *directed* subgraph
separates the two roles: ``S`` recovers the fraudulent accounts and ``T`` the
boosted products.  The script also runs the undirected densest subgraph on
the same data to show that ignoring direction mixes the roles together.

Run with::

    python examples/rating_fraud.py
"""

from __future__ import annotations

from repro import DDSSession
from repro.datasets.casestudy import precision_recall, rating_fraud_case
from repro.undirected import charikar_peel


def main() -> None:
    case = rating_fraud_case(
        n_users=400,
        n_products=200,
        n_fraud_users=12,
        n_boosted_products=8,
        seed=7,
    )
    graph = case.graph
    print(f"rating graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"planted ring: {len(case.true_s)} fraudulent users x {len(case.true_t)} boosted products\n")

    session = DDSSession(graph)
    result = session.densest_subgraph("core-approx")
    s_precision, s_recall = precision_recall(result.s_nodes, case.true_s)
    t_precision, t_recall = precision_recall(result.t_nodes, case.true_t)

    print("[directed densest subgraph: core-approx]")
    print(f"  density = {result.density:.3f}, |S| = {result.s_size}, |T| = {result.t_size}")
    print(f"  fraud-user recovery:  precision = {s_precision:.2f}, recall = {s_recall:.2f}")
    print(f"  boosted-product recovery: precision = {t_precision:.2f}, recall = {t_recall:.2f}\n")

    undirected = charikar_peel(graph)
    mixed_precision, _ = precision_recall(undirected.nodes, case.true_s)
    print("[undirected densest subgraph: charikar peel]")
    print(f"  edge density = {undirected.density:.3f}, |H| = {undirected.size}")
    print(
        "  the undirected answer mixes users and products into one set "
        f"(only {mixed_precision:.0%} of it are fraudulent users), so the roles are lost"
    )


if __name__ == "__main__":
    main()
