"""Retune-vs-rebuild equivalence and flow-engine instrumentation regressions.

The retune path (:meth:`~repro.core.flow_network.DecisionNetwork.retune`)
must be observationally identical to building a fresh decision network for
every ``(ratio, guess)``: bit-identical min-cut values and identical
extracted ``(S, T)`` pairs.  On top of that, every fixed-ratio search must
use exactly one network — freshly built or served by the network cache
(``networks_built + networks_reused == fixed_ratio_searches``), with the
divide-and-conquer interior probes *reusing* the coarse-stage network in
their refine stage — and the total flow-call counts must not regress versus
the counts recorded from the seed implementation.
"""

from __future__ import annotations

import pytest

from repro.bench.baselines import SEED_FLOW_CALLS
from repro.core.exact_core import core_exact
from repro.core.exact_dc import dc_exact
from repro.core.flow_network import build_decision_network
from repro.core.subproblem import STSubproblem
from repro.datasets.registry import load_dataset
from repro.flow.engine import FlowEngine
from repro.flow.registry import available_flow_solvers
from repro.graph.generators import complete_bipartite_digraph, gnm_random_digraph


def _sweep_pairs():
    """20 (ratio, guess) probe pairs spanning the interesting range."""
    ratios = [0.25, 0.5, 1.0, 2.0, 4.0]
    guesses = [0.0, 0.7, 1.9, 3.3]
    return [(r, g) for r in ratios for g in guesses]


class TestRetuneEqualsRebuild:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: gnm_random_digraph(12, 50, seed=7),
            lambda: complete_bipartite_digraph(3, 4),
        ],
        ids=["gnm-12-50", "k-3-4"],
    )
    def test_bit_identical_cuts_and_pairs(self, graph_factory):
        graph = graph_factory()
        subproblem = STSubproblem.from_graph(graph)
        pairs = _sweep_pairs()
        assert len(pairs) == 20

        retuned = build_decision_network(subproblem, *pairs[0])
        for ratio, guess in pairs:
            retuned.retune(ratio, guess)
            fresh = build_decision_network(subproblem, ratio, guess)

            # Identical parameterisation: same capacities, bit for bit.
            assert list(retuned.network.arc_capacities) == list(fresh.network.arc_capacities)

            engine = FlowEngine()
            cut_retuned, solver_retuned = engine.min_cut(
                retuned.network, retuned.source, retuned.sink
            )
            cut_fresh, solver_fresh = engine.min_cut(fresh.network, fresh.source, fresh.sink)
            assert cut_retuned == cut_fresh  # bit-identical, not approx

            pair_retuned = retuned.extract_pair(solver_retuned.min_cut_source_side())
            pair_fresh = fresh.extract_pair(solver_fresh.min_cut_source_side())
            assert pair_retuned == pair_fresh

    def test_retune_validates_parameters(self):
        graph = complete_bipartite_digraph(2, 2)
        decision = build_decision_network(STSubproblem.from_graph(graph), 1.0, 1.0)
        from repro.exceptions import AlgorithmError

        with pytest.raises(AlgorithmError):
            decision.retune(0.0, 1.0)
        with pytest.raises(AlgorithmError):
            decision.retune(1.0, -1.0)


class TestEngineInstrumentation:
    """Regressions against the recorded seed counts (repro.bench.baselines)."""
    @pytest.mark.parametrize("dataset", ["foodweb-tiny", "social-tiny"])
    @pytest.mark.parametrize("solver_fn", [dc_exact, core_exact], ids=["dc", "core"])
    def test_one_network_per_fixed_ratio_search(self, dataset, solver_fn):
        graph = load_dataset(dataset)
        result = solver_fn(graph)
        stats = result.stats
        # Every search uses exactly one network: built fresh or cache-served.
        assert stats["networks_built"] + stats["networks_reused"] == stats["fixed_ratio_searches"]
        assert stats["networks_built"] >= 1
        # The coarse->refine interior probes must hit the network cache, so
        # strictly fewer networks are built than searches run.
        assert stats["networks_reused"] >= 1
        assert stats["networks_built"] < stats["fixed_ratio_searches"]
        assert stats["flow_calls"] >= stats["networks_built"]
        assert stats["arcs_pushed"] > 0
        assert stats["flow_solver"] == "dinic"

        recorded = SEED_FLOW_CALLS[(dataset, result.method)]
        assert stats["flow_calls"] <= recorded, (
            f"flow_calls regressed on {dataset}/{result.method}: "
            f"{stats['flow_calls']} > seed {recorded}"
        )

    def test_cross_solver_identical_density(self):
        graph = load_dataset("foodweb-tiny")
        densities = {
            name: dc_exact(graph, flow_solver=name).density
            for name in available_flow_solvers()
        }
        reference = densities["dinic"]
        for name, density in densities.items():
            assert density == pytest.approx(reference, abs=1e-9), name

    def test_flow_exact_counts_one_network_per_search(self):
        from repro.core.exact_flow import flow_exact

        graph = gnm_random_digraph(8, 20, seed=3)
        result = flow_exact(graph)
        stats = result.stats
        # All candidate ratios are distinct, so a fresh run never hits the
        # network cache: one network is built per search.
        assert stats["networks_built"] == stats["fixed_ratio_searches"]
        assert stats["networks_reused"] == 0
        assert stats["flow_calls"] >= stats["networks_built"]
