"""Unit tests for the DiGraph data structure."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.nodes() == []
        assert list(g.edges()) == []

    def test_add_node_idempotent(self):
        g = DiGraph()
        first = g.add_node("a")
        second = g.add_node("a")
        assert first == second
        assert g.num_nodes == 1

    def test_add_edge_creates_nodes(self):
        g = DiGraph()
        assert g.add_edge("a", "b") is True
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_duplicate_edge_ignored(self):
        g = DiGraph()
        assert g.add_edge(1, 2) is True
        assert g.add_edge(1, 2) is False
        assert g.num_edges == 1

    def test_self_loop_dropped_by_default(self):
        g = DiGraph()
        assert g.add_edge("a", "a") is False
        assert g.num_edges == 0

    def test_self_loop_kept_when_allowed(self):
        g = DiGraph(allow_self_loops=True)
        assert g.add_edge("a", "a") is True
        assert g.num_edges == 1
        assert g.has_edge("a", "a")

    def test_from_edges_with_extra_nodes(self):
        g = DiGraph.from_edges([(1, 2)], nodes=[3, 4])
        assert set(g.nodes()) == {1, 2, 3, 4}
        assert g.num_edges == 1

    def test_mixed_label_types(self):
        g = DiGraph.from_edges([("a", 1), (1, (2, 3))])
        assert g.num_nodes == 3
        assert g.has_edge("a", 1)
        assert g.has_edge(1, (2, 3))


class TestQueries:
    def test_degrees(self):
        g = DiGraph.from_edges([("a", "b"), ("a", "c"), ("b", "c")])
        assert g.out_degree("a") == 2
        assert g.in_degree("a") == 0
        assert g.out_degree("c") == 0
        assert g.in_degree("c") == 2

    def test_successors_predecessors(self):
        g = DiGraph.from_edges([("a", "b"), ("a", "c"), ("b", "c")])
        assert sorted(g.successors("a")) == ["b", "c"]
        assert sorted(g.predecessors("c")) == ["a", "b"]
        assert g.successors("c") == []

    def test_unknown_node_raises(self):
        g = DiGraph.from_edges([(1, 2)])
        with pytest.raises(GraphError):
            g.out_degree(99)
        with pytest.raises(GraphError):
            g.index_of("missing")

    def test_contains_and_len(self):
        g = DiGraph.from_edges([(1, 2), (2, 3)])
        assert 1 in g
        assert 99 not in g
        assert len(g) == 3

    def test_edges_roundtrip(self):
        pairs = {(1, 2), (2, 3), (3, 1), (1, 3)}
        g = DiGraph.from_edges(pairs)
        assert set(g.edges()) == pairs

    def test_max_degrees(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (0, 3), (1, 3)])
        assert g.max_out_degree() == 3
        assert g.max_in_degree() == 2
        assert DiGraph().max_out_degree() == 0


class TestIndexView:
    def test_label_index_roundtrip(self):
        g = DiGraph.from_edges([("x", "y"), ("y", "z")])
        for label in g.nodes():
            assert g.label_of(g.index_of(label)) == label

    def test_adjacency_consistency(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        out_total = sum(len(adj) for adj in g.out_adj)
        in_total = sum(len(adj) for adj in g.in_adj)
        assert out_total == g.num_edges
        assert in_total == g.num_edges

    def test_adjacency_cache_invalidation(self):
        g = DiGraph.from_edges([(0, 1)])
        assert g.out_adj[g.index_of(0)] == [g.index_of(1)]
        g.add_edge(0, 2)
        assert len(g.out_adj[g.index_of(0)]) == 2

    def test_count_edges_between(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 2), (2, 0)])
        s = [g.index_of(0), g.index_of(1)]
        t = [g.index_of(2)]
        assert g.count_edges_between(s, t) == 2
        assert g.count_edges_between(t, s) == 1

    def test_edges_between_matches_count(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 2), (2, 0), (2, 1)])
        s = [g.index_of(0), g.index_of(2)]
        t = [g.index_of(1), g.index_of(2)]
        found = g.edges_between(s, t)
        assert len(found) == g.count_edges_between(s, t)
        for u, v in found:
            assert g.has_edge(g.label_of(u), g.label_of(v))


class TestMutationsAndCopies:
    def test_remove_edge(self):
        g = DiGraph.from_edges([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        with pytest.raises(GraphError):
            g.remove_edge(1, 2)

    def test_copy_is_independent(self):
        g = DiGraph.from_edges([(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_edges == 1
        assert clone.num_edges == 2
        assert g.nodes() == [1, 2]

    def test_subgraph_keeps_isolated_nodes(self):
        g = DiGraph.from_edges([(1, 2), (2, 3), (3, 4)])
        sub = g.subgraph([1, 2, 4])
        assert set(sub.nodes()) == {1, 2, 4}
        assert sub.num_edges == 1
        assert sub.has_edge(1, 2)

    def test_reverse(self):
        g = DiGraph.from_edges([(1, 2), (2, 3)])
        rev = g.reverse()
        assert rev.has_edge(2, 1)
        assert rev.has_edge(3, 2)
        assert rev.num_edges == 2
        assert set(rev.nodes()) == set(g.nodes())
