"""Unit tests for graph builders and transformations."""

from __future__ import annotations

from repro.graph.builders import (
    graph_from_edge_list,
    induced_subgraph,
    largest_weakly_connected_component,
    relabel_to_integers,
    remove_self_loops,
    reverse_graph,
    st_induced_subgraph,
    weakly_connected_node_sets,
)
from repro.graph.digraph import DiGraph


def test_graph_from_edge_list_dedupes():
    g = graph_from_edge_list([(1, 2), (1, 2), (2, 1)])
    assert g.num_edges == 2


def test_relabel_to_integers():
    g = DiGraph.from_edges([("a", "b"), ("b", "c")])
    relabeled, mapping = relabel_to_integers(g)
    assert set(relabeled.nodes()) == {0, 1, 2}
    assert relabeled.num_edges == 2
    assert relabeled.has_edge(mapping["a"], mapping["b"])


def test_remove_self_loops():
    g = DiGraph.from_edges([(1, 1), (1, 2)], allow_self_loops=True)
    cleaned = remove_self_loops(g)
    assert cleaned.num_edges == 1
    assert not cleaned.has_edge(1, 1)


def test_reverse_graph():
    g = DiGraph.from_edges([(1, 2)])
    assert reverse_graph(g).has_edge(2, 1)


def test_induced_subgraph():
    g = DiGraph.from_edges([(1, 2), (2, 3), (1, 3)])
    sub = induced_subgraph(g, [1, 3])
    assert sub.num_edges == 1
    assert sub.has_edge(1, 3)


def test_st_induced_subgraph_keeps_only_forward_edges():
    g = DiGraph.from_edges([(1, 2), (2, 1), (1, 3), (3, 2)])
    sub = st_induced_subgraph(g, sources=[1], targets=[2, 3])
    assert set(sub.nodes()) == {1, 2, 3}
    assert set(sub.edges()) == {(1, 2), (1, 3)}


def test_weakly_connected_components_ordering():
    g = DiGraph.from_edges([(1, 2), (2, 3), (10, 11)])
    g.add_node(99)
    components = weakly_connected_node_sets(g)
    sizes = [len(c) for c in components]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes == [3, 2, 1]


def test_largest_weakly_connected_component():
    g = DiGraph.from_edges([(1, 2), (2, 3), (10, 11)])
    largest = largest_weakly_connected_component(g)
    assert set(largest.nodes()) == {1, 2, 3}
    assert largest.num_edges == 2


def test_largest_component_of_empty_graph():
    g = DiGraph()
    assert largest_weakly_connected_component(g).num_nodes == 0
