"""Tests for the method registry and the typed config dataclasses."""

from __future__ import annotations

import pytest

from repro.core.config import ApproxConfig, ExactConfig, FlowConfig
from repro.core.method_registry import (
    MethodSpec,
    available_methods,
    get_method_spec,
    method_specs,
    register_method,
    unregister_method,
)
from repro.core.results import DDSResult
from repro.exceptions import AlgorithmError, ConfigError, FlowError
from repro.graph.generators import complete_bipartite_digraph
from repro.session import DDSSession


class TestRegistry:
    def test_builtins_registered(self):
        names = available_methods()
        assert names == sorted(names)
        for expected in (
            "flow-exact",
            "dc-exact",
            "core-exact",
            "core-approx",
            "inc-approx",
            "peel-approx",
            "brute-force",
        ):
            assert expected in names

    def test_capability_flags(self):
        flow_backed = {spec.name for spec in method_specs() if spec.flow_backed}
        assert flow_backed == {"flow-exact", "dc-exact", "core-exact"}
        warm = {spec.name for spec in method_specs() if spec.supports_warm_start}
        assert warm == flow_backed
        exact = {spec.name for spec in method_specs() if spec.is_exact}
        assert exact == {"flow-exact", "dc-exact", "core-exact", "brute-force"}
        for spec in method_specs():
            assert spec.description

    def test_config_types(self):
        assert get_method_spec("core-exact").config_type is ExactConfig
        assert get_method_spec("peel-approx").config_type is ApproxConfig

    def test_unknown_method(self):
        with pytest.raises(AlgorithmError, match="unknown method"):
            get_method_spec("nope")

    def test_register_and_unregister_custom_method(self):
        def runner(graph, config, context):
            return DDSResult(
                s_nodes=[graph.label_of(0)],
                t_nodes=[graph.label_of(1)],
                density=0.5,
                edge_count=1,
                method="half-density",
                is_exact=False,
            )

        register_method(MethodSpec(
            name="half-density",
            runner=runner,
            config_type=ApproxConfig,
            is_exact=False,
            flow_backed=False,
            supports_warm_start=False,
            description="test stub",
        ))
        try:
            session = DDSSession(complete_bipartite_digraph(2, 2))
            result = session.densest_subgraph("half-density")
            assert result.method == "half-density"
            assert result.density == 0.5
        finally:
            unregister_method("half-density")
        with pytest.raises(AlgorithmError):
            get_method_spec("half-density")

    def test_exact_config_subclass_methods_resolve_defaults(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class BoostConfig(ExactConfig):
            boost: float = 2.0

        def runner(graph, config, context):
            return DDSResult(
                s_nodes=[graph.label_of(0)],
                t_nodes=[graph.label_of(1)],
                density=config.boost,
                edge_count=1,
                method="boosted",
                is_exact=False,
            )

        register_method(MethodSpec(
            name="boosted",
            runner=runner,
            config_type=BoostConfig,
            is_exact=False,
            flow_backed=True,
            supports_warm_start=False,
            description="test stub with a config subclass",
        ))
        try:
            session = DDSSession(complete_bipartite_digraph(2, 2), flow="push-relabel")
            # Default-config query must build the subclass (with the session
            # flow folded in), not a bare ExactConfig.
            result = session.densest_subgraph("boosted")
            assert result.density == 2.0
            custom = session.densest_subgraph("boosted", config=BoostConfig(boost=3.5))
            assert custom.density == 3.5
        finally:
            unregister_method("boosted")

    def test_register_validates_spec(self):
        with pytest.raises(AlgorithmError):
            register_method(MethodSpec(
                name="",
                runner=lambda g, c, ctx: None,
                config_type=ApproxConfig,
                is_exact=False,
                flow_backed=False,
                supports_warm_start=False,
            ))
        with pytest.raises(AlgorithmError, match="MethodConfig"):
            register_method(MethodSpec(
                name="bad-config",
                runner=lambda g, c, ctx: None,
                config_type=dict,
                is_exact=False,
                flow_backed=False,
                supports_warm_start=False,
            ))

    def test_register_rejects_unhashable_config_type(self):
        from dataclasses import dataclass

        from repro.core.config import MethodConfig

        @dataclass  # not frozen: eq=True sets __hash__ = None
        class MutableConfig(MethodConfig):
            epsilon: float = 0.5

        with pytest.raises(AlgorithmError, match="hashable"):
            register_method(MethodSpec(
                name="mutable-config",
                runner=lambda g, c, ctx: None,
                config_type=MutableConfig,
                is_exact=False,
                flow_backed=False,
                supports_warm_start=False,
            ))


class TestConfigValidation:
    def test_exact_config_defaults(self):
        cfg = ExactConfig()
        assert cfg.tolerance is None
        assert cfg.leaf_ratio_count == 2
        assert cfg.flow.solver == "dinic"

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_exact_config_rejects_bad_tolerance(self, bad):
        with pytest.raises(ConfigError, match="tolerance"):
            ExactConfig(tolerance=bad)

    def test_exact_config_rejects_bad_leaf_count(self):
        with pytest.raises(ConfigError, match="leaf_ratio_count"):
            ExactConfig(leaf_ratio_count=0)

    def test_exact_config_rejects_bad_node_limit(self):
        with pytest.raises(ConfigError, match="node_limit"):
            ExactConfig(node_limit=0)

    def test_exact_config_coerces_solver_name(self):
        assert ExactConfig(flow="push-relabel").flow == FlowConfig(solver="push-relabel")

    def test_flow_config_rejects_unknown_solver(self):
        with pytest.raises(FlowError, match="unknown flow solver"):
            FlowConfig(solver="nope")

    def test_flow_config_rejects_negative_cache(self):
        with pytest.raises(ConfigError, match="network_cache_size"):
            FlowConfig(network_cache_size=-1)

    @pytest.mark.parametrize("bad", [0.0, -0.5])
    def test_approx_config_rejects_bad_epsilon(self, bad):
        with pytest.raises(ConfigError, match="epsilon"):
            ApproxConfig(epsilon=bad)

    def test_approx_config_normalises_ratios(self):
        cfg = ApproxConfig(ratios=[1, 2.0])
        assert cfg.ratios == (1.0, 2.0)
        with pytest.raises(ConfigError, match="ratio"):
            ApproxConfig(ratios=[1.0, -2.0])
        with pytest.raises(ConfigError, match="ratios"):
            ApproxConfig(ratios=[])

    def test_resolve_rejects_unknown_overrides(self):
        with pytest.raises(ConfigError, match="does not accept"):
            ExactConfig.resolve(None, tolerence=0.1)  # typo on purpose
        with pytest.raises(ConfigError, match="flow_solver"):
            ApproxConfig.resolve(None, flow_solver="dinic")

    def test_resolve_rejects_wrong_config_type(self):
        with pytest.raises(ConfigError, match="ExactConfig"):
            ExactConfig.resolve(ApproxConfig())

    def test_resolve_accepts_legacy_max_nodes_alias(self):
        assert ExactConfig.resolve(None, max_nodes=10).node_limit == 10
        with pytest.raises(ConfigError, match="alias"):
            ExactConfig.resolve(None, max_nodes=10, node_limit=12)
        with pytest.raises(ConfigError, match="max_nodes"):
            ApproxConfig.resolve(None, max_nodes=10)

    def test_resolve_flow_string_plus_flow_solver(self):
        resolved = ExactConfig.resolve(None, flow="dinic", flow_solver="push-relabel")
        assert resolved.flow == FlowConfig(solver="push-relabel")

    def test_resolve_overlays_fields(self):
        base = ExactConfig(tolerance=0.5)
        resolved = ExactConfig.resolve(base, flow_solver="edmonds-karp")
        assert resolved.tolerance == 0.5
        assert resolved.flow.solver == "edmonds-karp"
        # ``None`` overrides leave the base untouched (and return it as-is).
        assert ExactConfig.resolve(base, tolerance=None) is base

    def test_configs_are_hashable_cache_keys(self):
        assert hash(ExactConfig()) == hash(ExactConfig())
        assert ExactConfig(flow="dinic") == ExactConfig()
        assert ApproxConfig(ratios=[1.0]) == ApproxConfig(ratios=(1.0,))


class TestConfigThroughSession:
    def test_wrong_config_type_for_method(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        with pytest.raises(ConfigError, match="ExactConfig"):
            session.densest_subgraph("dc-exact", config=ApproxConfig())
        with pytest.raises(ConfigError, match="ApproxConfig"):
            session.densest_subgraph("peel-approx", config=ExactConfig())

    def test_epsilon_rejected_by_exact_methods(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        with pytest.raises(ConfigError, match="does not accept"):
            session.densest_subgraph("core-exact", epsilon=0.5)

    def test_tolerance_rejected_by_approx_methods(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        with pytest.raises(ConfigError, match="does not accept"):
            session.densest_subgraph("peel-approx", tolerance=0.1)

    def test_invalid_value_rejected_before_any_work(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        with pytest.raises(ConfigError, match="tolerance"):
            session.densest_subgraph("dc-exact", tolerance=-1.0)
        assert session.cache_stats()["queries"] == 0

    def test_legacy_kwargs_still_flow_through(self):
        session = DDSSession(complete_bipartite_digraph(3, 3))
        result = session.densest_subgraph("peel-approx", epsilon=0.25)
        assert result.stats["epsilon"] == 0.25

    def test_unused_knobs_are_rejected_not_ignored(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        # node_limit guards flow-exact/brute-force only; dc-exact never
        # consults it, so setting it must error instead of doing nothing.
        with pytest.raises(ConfigError, match="does not use config field 'node_limit'"):
            session.densest_subgraph("dc-exact", node_limit=50)
        with pytest.raises(ConfigError, match="does not use config field 'epsilon'"):
            session.densest_subgraph("core-approx", config=ApproxConfig(epsilon=0.25))
        with pytest.raises(ConfigError, match="'seed_with_core'"):
            session.densest_subgraph("core-exact", config=ExactConfig(seed_with_core=True))

    def test_flow_config_on_non_flow_method_is_ignored_with_warning(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        with pytest.warns(UserWarning, match="performs no min-cuts"):
            result = session.densest_subgraph(
                "brute-force", config=ExactConfig(flow="push-relabel")
            )
        assert result.stats["flow_solver_ignored"] == {
            "flow_solver": "push-relabel",
            "method": "brute-force",
        }

    def test_session_default_flow_does_not_trigger_spurious_warning(self):
        import warnings as warnings_module

        # A session-wide solver preference is policy, not a per-query request:
        # a default-config brute-force query must not warn about it.
        session = DDSSession(complete_bipartite_digraph(2, 3), flow="push-relabel")
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", UserWarning)
            result = session.densest_subgraph("brute-force")
        assert "flow_solver_ignored" not in result.stats

    def test_explicit_flow_matching_session_default_still_warns(self):
        session = DDSSession(complete_bipartite_digraph(2, 3), flow="push-relabel")
        with pytest.warns(UserWarning, match="performs no min-cuts"):
            result = session.densest_subgraph(
                "brute-force", config=ExactConfig(flow="push-relabel")
            )
        assert result.stats["flow_solver_ignored"]["flow_solver"] == "push-relabel"
