"""Tests for the benchmark harness and workload helpers."""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentRecord, format_series, format_table, run_method_on_dataset
from repro.bench.workloads import (
    approx_method_matrix,
    edge_fraction_subgraph,
    exact_method_matrix,
    quality_reference_density,
)
from repro.graph.generators import complete_bipartite_digraph, gnm_random_digraph


class TestHarness:
    def test_run_method_on_dataset(self):
        g = complete_bipartite_digraph(2, 3)
        record = run_method_on_dataset("E0", "toy", g, "core-approx")
        assert isinstance(record, ExperimentRecord)
        assert record.seconds >= 0.0
        row = record.row()
        assert row["dataset"] == "toy"
        assert row["method"] == "core-approx"
        assert row["density"] > 0

    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy", "c": 3}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text and "c" in text
        assert "22" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_series(self):
        text = format_series("fraction", "seconds", [(0.2, 1.5), (1.0, 3.25)], title="scale")
        assert "scale" in text
        assert "0.2" in text
        assert "3.2500" in text


class TestWorkloads:
    def test_method_matrices(self):
        assert exact_method_matrix() == ["flow-exact", "dc-exact", "core-exact"]
        assert exact_method_matrix(include_baseline=False) == ["dc-exact", "core-exact"]
        assert "core-approx" in approx_method_matrix()

    def test_edge_fraction_subgraph(self):
        g = gnm_random_digraph(50, 400, seed=1)
        half = edge_fraction_subgraph(g, 0.5, seed=2)
        assert half.num_nodes == g.num_nodes
        assert 0 < half.num_edges < g.num_edges
        full = edge_fraction_subgraph(g, 1.0, seed=2)
        assert full.num_edges == g.num_edges

    def test_edge_fraction_never_empty(self):
        g = gnm_random_digraph(10, 5, seed=1)
        tiny = edge_fraction_subgraph(g, 0.01, seed=3)
        assert tiny.num_edges >= 1

    def test_edge_fraction_validation(self):
        g = gnm_random_digraph(5, 5, seed=1)
        with pytest.raises(ValueError):
            edge_fraction_subgraph(g, 0.0)
        with pytest.raises(ValueError):
            edge_fraction_subgraph(g, 1.5)

    def test_quality_reference_small_graph_uses_exact(self):
        g = complete_bipartite_digraph(2, 3)
        density, method = quality_reference_density(g)
        assert method == "core-exact"
        assert density == pytest.approx(6 ** 0.5)

    def test_quality_reference_large_graph_uses_best_approx(self):
        g = gnm_random_digraph(40, 160, seed=4)
        density, method = quality_reference_density(g, exact_node_limit=10)
        assert method in approx_method_matrix()
        assert density > 0
