"""Tests for the undirected companion algorithms (k-core, Charikar, Goldberg)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyGraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_bipartite_digraph, cycle_digraph, gnm_random_digraph
from repro.undirected.charikar import charikar_peel
from repro.undirected.goldberg import goldberg_exact
from repro.undirected.kcore import core_decomposition, k_core, max_core
from repro.undirected.models import edge_density, symmetrize, undirected_edge_count


def _clique(n: int) -> DiGraph:
    g = DiGraph()
    for u in range(n):
        for v in range(n):
            if u != v:
                g.add_edge(u, v)
    return g


class TestSymmetrize:
    def test_symmetrize_adds_reverse_arcs(self):
        g = DiGraph.from_edges([(1, 2), (2, 3)])
        symmetric = symmetrize(g)
        assert symmetric.has_edge(2, 1)
        assert symmetric.has_edge(3, 2)
        assert symmetric.num_edges == 4

    def test_undirected_edge_count(self):
        g = DiGraph.from_edges([(1, 2), (2, 1), (2, 3)])
        symmetric = symmetrize(g)
        assert undirected_edge_count(symmetric, [1, 2, 3]) == 2
        assert edge_density(symmetric, [1, 2]) == pytest.approx(0.5)
        assert edge_density(symmetric, []) == 0.0


class TestKCore:
    def test_clique_core_numbers(self):
        g = _clique(5)
        numbers = core_decomposition(g)
        assert all(value == 4 for value in numbers.values())
        k, nodes = max_core(g)
        assert k == 4
        assert len(nodes) == 5

    def test_cycle_core_numbers(self):
        numbers = core_decomposition(cycle_digraph(6))
        assert all(value == 2 for value in numbers.values())

    def test_path_with_pendant(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        numbers = core_decomposition(g)
        assert numbers[3] == 1
        assert numbers[0] == 2

    def test_k_core_extraction(self):
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert set(k_core(g, 2)) == {0, 1, 2}
        assert set(k_core(g, 1)) == {0, 1, 2, 3}
        assert k_core(g, 5) == []

    def test_empty_graph(self):
        assert core_decomposition(DiGraph()) == {}
        assert max_core(DiGraph()) == (0, [])

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_core_number_at_most_degree(self, seed):
        g = gnm_random_digraph(12, 40, seed=seed)
        symmetric = symmetrize(g)
        numbers = core_decomposition(g)
        for label, core_number in numbers.items():
            undirected_degree = len(symmetric.successors(label))
            assert core_number <= undirected_degree

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_k_core_min_degree(self, seed):
        """Inside the k_max-core every vertex has undirected degree >= k_max."""
        g = gnm_random_digraph(12, 45, seed=seed)
        if g.num_edges == 0:
            return
        k, nodes = max_core(g)
        symmetric = symmetrize(g)
        node_set = set(nodes)
        for label in nodes:
            inside = sum(1 for other in symmetric.successors(label) if other in node_set)
            assert inside >= k


class TestDensestSubgraphUndirected:
    def test_goldberg_on_clique_plus_pendant(self):
        g = _clique(4)
        g.add_edge(0, 99)
        result = goldberg_exact(g)
        assert result.density == pytest.approx(6 / 4)
        assert set(result.nodes) == {0, 1, 2, 3}
        assert result.is_exact

    def test_charikar_half_guarantee_on_random_graphs(self):
        for seed in range(6):
            g = gnm_random_digraph(12, 40, seed=seed)
            if g.num_edges == 0:
                continue
            exact = goldberg_exact(g)
            approx = charikar_peel(g)
            assert approx.density >= exact.density / 2.0 - 1e-9
            assert approx.density <= exact.density + 1e-9

    def test_bipartite_densest(self):
        g = complete_bipartite_digraph(3, 3)
        result = goldberg_exact(g)
        assert result.density == pytest.approx(9 / 6)

    def test_empty_graph_rejected(self):
        with pytest.raises(EmptyGraphError):
            goldberg_exact(DiGraph.from_edges([], nodes=[1]))
        with pytest.raises(EmptyGraphError):
            charikar_peel(DiGraph.from_edges([], nodes=[1]))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_goldberg_at_least_half_average_degree(self, seed):
        """The densest subgraph density is at least m/n (the whole graph is a candidate)."""
        g = gnm_random_digraph(10, 30, seed=seed)
        if g.num_edges == 0:
            return
        symmetric = symmetrize(g)
        whole_density = (symmetric.num_edges // 2) / symmetric.num_nodes
        assert goldberg_exact(g).density >= whole_density - 1e-9
