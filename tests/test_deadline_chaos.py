"""Chaos tests: deadlines mid-solve, circuit-breaker lifecycle, drain under fire.

The robustness acceptance criteria, pinned:

* **Cancellation safety** — a solve cancelled at a cooperative checkpoint
  leaves its warm network in the valid state it had at solve entry, so
  re-running the query on the same session retunes **bit-identically** to
  a fresh session (densities *and* node sets compared with ``==``).
  Expiry is driven by an injected stepping clock, so the cancellation
  point is deterministic per parameterisation — no sleeps, no flakes.
* **Anytime bounds** — the partial carried by a mid-solve
  :class:`~repro.exceptions.DeadlineExceeded` brackets the true optimum:
  ``partial.density <= rho_opt <= partial.upper_bound``.
* **Breaker lifecycle** — closed → open after ``failure_threshold``
  exhausted ladders, fast-fail while open, exactly one half-open probe
  after the cooldown, reclose on success / re-open on failure — all on an
  injected monotonic clock.
* **Drain under fire** — a daemon draining with work in flight finishes
  that work before exiting; a daemon killed *mid-drain* still tears down
  without deadlocking.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ConfigError, DeadlineExceeded, NetError
from repro.graph.generators import gnp_random_digraph
from repro.net import CircuitBreaker, CircuitOpenError, ShardClient, ShardDaemon
from repro.runtime import Deadline
from repro.service import BatchExecutor, payload_answer, plan_batch
from repro.session import DDSSession


class SteppingClock:
    """A monotonic clock that advances a fixed step on every reading.

    Each deadline checkpoint reads the clock once, so ``budget_ms /
    step_ms`` readings in, the budget expires — at a *deterministic*
    checkpoint, however fast the machine is.
    """

    def __init__(self, step_ms: float) -> None:
        self.now = 0.0
        self.step = step_ms / 1000.0
        self.readings = 0

    def __call__(self) -> float:
        self.readings += 1
        now = self.now
        self.now += self.step
        return now


def _answer(result) -> tuple:
    """The bit-comparable part of a DDSResult: density plus both node sets."""
    return (result.density, sorted(map(str, result.s_nodes)), sorted(map(str, result.t_nodes)))


class TestCancellationSafety:
    """A cancelled warm network must retune bit-identically."""

    # Budgets chosen to expire at different checkpoint depths: early (the
    # first few engine admissions), mid-search, and deep into the D&C.
    @pytest.mark.filterwarnings("ignore::UserWarning")
    @pytest.mark.parametrize("budget_readings", [3, 10, 40, 150])
    @pytest.mark.parametrize("solver", ["dinic", "push-relabel", "numpy-push-relabel"])
    def test_cancel_then_resume_is_bit_identical(self, solver, budget_readings):
        graph = gnp_random_digraph(48, 0.12, seed=11)
        reference = _answer(DDSSession(graph, flow=solver).densest_subgraph("dc-exact"))

        session = DDSSession(graph, flow=solver)
        engine = session._engine_for(solver)
        clock = SteppingClock(step_ms=1.0)
        # Arm the engine's deadline conduit directly with the stepping
        # clock (the session arms real wall-clock deadlines; chaos wants a
        # deterministic expiry point).  One reading is spent at
        # construction, the rest at solver/driver checkpoints.
        engine.deadline = Deadline(float(budget_readings), clock=clock)
        try:
            session.densest_subgraph("dc-exact")
        except DeadlineExceeded as error:
            partial = error.partial
            assert partial is not None
            # Certified bracket around the true optimum.
            assert partial.density <= reference[0] + 1e-9
            assert reference[0] <= partial.upper_bound + 1e-9
        else:
            pytest.skip(f"budget of {budget_readings} readings outlived the solve")
        finally:
            engine.deadline = None

        # The cancelled solve left warm networks behind; retuning them must
        # reproduce the fresh session's answer exactly.
        resumed = _answer(session.densest_subgraph("dc-exact"))
        assert resumed == reference

    def test_cancelled_flow_exact_also_retunes_bit_identically(self):
        # The ratio-enumeration driver has its own anytime assembly path;
        # one small case pins it (flow-exact enumerates O(n^2) ratios, so
        # the graph stays tiny).
        graph = gnp_random_digraph(16, 0.2, seed=11)
        reference = _answer(DDSSession(graph).densest_subgraph("flow-exact"))
        session = DDSSession(graph)
        engine = session._engine_for(session.flow.solver)
        engine.deadline = Deadline(40.0, clock=SteppingClock(step_ms=1.0))
        try:
            with pytest.raises(DeadlineExceeded) as excinfo:
                session.densest_subgraph("flow-exact")
        finally:
            engine.deadline = None
        partial = excinfo.value.partial
        assert partial is not None and partial.method == "flow-exact"
        assert partial.density <= reference[0] + 1e-9 <= partial.upper_bound + 2e-9
        assert _answer(session.densest_subgraph("flow-exact")) == reference

    def test_generous_deadline_is_bit_identical_to_none(self):
        graph = gnp_random_digraph(40, 0.15, seed=3)
        reference = _answer(DDSSession(graph).densest_subgraph("dc-exact"))
        timed = _answer(
            DDSSession(graph).densest_subgraph("dc-exact", deadline_ms=1e9)
        )
        assert timed == reference

    def test_session_counts_anytime_returns(self):
        graph = gnp_random_digraph(40, 0.15, seed=5)
        session = DDSSession(graph)
        with pytest.raises(DeadlineExceeded):
            # A microscopic real budget expires at the first checkpoint.
            session.densest_subgraph("dc-exact", deadline_ms=1e-6)
        stats = session.cache_stats()
        assert stats["anytime_returns"] == 1
        assert stats["deadline_hits"] >= 1


class TestCircuitBreaker:
    def test_open_after_threshold_then_half_open_then_reclose(self):
        clock = SteppingClock(step_ms=0.0)  # frozen until advanced by hand
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=5.0, clock=clock)
        breaker.admit("h:1")
        breaker.record_failure()
        assert breaker.state == "closed"  # one short of the threshold
        breaker.admit("h:1")
        breaker.record_failure()
        assert breaker.state == "open"

        with pytest.raises(CircuitOpenError):
            breaker.admit("h:1")

        clock.now += 5.0  # cooldown elapses on the monotonic clock
        breaker.admit("h:1")  # becomes the half-open probe
        assert breaker.state == "half-open"
        # Concurrent callers during the probe keep failing fast.
        with pytest.raises(CircuitOpenError):
            breaker.admit("h:1")

        breaker.record_success()
        assert breaker.state == "closed"
        stats = breaker.stats()
        assert stats["breaker_opens"] == 1
        assert stats["breaker_half_open_probes"] == 1
        assert stats["breaker_reclosures"] == 1
        assert stats["breaker_fast_failures"] == 2

    def test_half_open_failure_reopens_for_another_cooldown(self):
        clock = SteppingClock(step_ms=0.0)
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=2.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now += 2.0
        breaker.admit("h:1")
        assert breaker.state == "half-open"
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.admit("h:1")  # new cooldown, still closed off
        clock.now += 2.0
        breaker.admit("h:1")
        assert breaker.stats()["breaker_opens"] == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(cooldown_s=0)

    def test_client_breaker_opens_on_dead_host_and_readmits(self):
        # A daemon serves, dies, and comes back on the same port: the
        # client's breaker must open on the exhausted ladder, fast-fail
        # while open, then re-admit through a successful half-open probe.
        daemon = ShardDaemon(None)
        host, port = daemon.start()
        clock = SteppingClock(step_ms=0.0)
        client = ShardClient(
            host,
            port,
            max_retries=0,
            connect_timeout=0.5,
            breaker=CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock),
        )
        assert client.ping()["pong"] is True
        daemon.shutdown()

        with pytest.raises(NetError):
            client.ping()  # exhausted ladder against the dead daemon
        assert client.breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.ping()  # no socket touched: fast fail

        revived = ShardDaemon(None, host=host, port=port)
        revived.start()
        try:
            clock.now += 5.0  # cooldown elapses
            assert client.ping()["pong"] is True  # the half-open probe
            assert client.breaker.state == "closed"
            stats = client.stats()
            assert stats["breaker_reclosures"] == 1
            assert stats["breaker_fast_failures"] == 1
        finally:
            revived.shutdown()

    def test_executor_routes_around_an_open_breaker(self):
        # With one worker the lanes run sequentially: the first exhausted
        # ladder opens the dead host's breaker, so every later lane skips
        # the ladder entirely and solves inline immediately.
        graphs = {
            f"g{i}": gnp_random_digraph(24, 0.2, seed=i) for i in range(3)
        }
        queries = [
            {"query": "densest", "method": "core-exact", "dataset": key} for key in graphs
        ]
        plan = plan_batch(queries, default_graph_key="g0")
        local = BatchExecutor(graphs).execute(plan)
        remote = BatchExecutor(
            graphs, remote_hosts=["127.0.0.1:9"], max_retries=0, max_workers=1
        ).execute(plan)
        stats = remote.executor_stats
        assert stats["remote_failures"] == 1
        assert stats["breaker_skipped_lanes"] == 2
        assert stats["lanes_inline"] == 3
        assert stats["breaker_states"] == {"127.0.0.1:9": "open"}
        assert [payload_answer(p) for p in remote.results_in_input_order()] == [
            payload_answer(p) for p in local.results_in_input_order()
        ]


class TestDrainUnderFire:
    def test_drain_finishes_in_flight_work_then_exits(self):
        daemon = ShardDaemon(None)
        host, port = daemon.start()
        client = ShardClient(host, port, max_retries=0)
        graph = gnp_random_digraph(160, 0.08, seed=29)
        from repro.net import graph_to_wire

        wire = graph_to_wire(graph)
        entries = [(0, {"query": "densest", "method": "dc-exact"})]
        results: dict[str, object] = {}

        def slow_solve() -> None:
            results["payload"] = client.solve_lane(
                "g", graph.content_fingerprint(), entries, graph=wire
            )

        worker = threading.Thread(target=slow_solve)
        worker.start()
        try:
            # Wait for the solve to be genuinely in flight before draining,
            # so the drain provably races live work (bounded spin, no sleep
            # calibration).
            import time as _time

            spin_until = _time.monotonic() + 10.0
            while _time.monotonic() < spin_until:
                if daemon.daemon_stats()["in_flight"] > 0 or "payload" in results:
                    break
            response = client.drain(grace_s=30.0)
            assert response["draining"] is True
            worker.join(timeout=60)
            assert not worker.is_alive()
            # The in-flight solve completed with a real answer.
            assert results["payload"]["executions"][0]["payload"]["density"] > 0
        finally:
            worker.join(timeout=60)
        daemon.join(timeout=30)
        assert daemon._thread is None or not daemon._thread.is_alive()
        assert daemon.daemon_stats()["unjoined_threads"] == 0

    def test_kill_mid_drain_does_not_deadlock(self):
        daemon = ShardDaemon(None)
        daemon.start()
        daemon.drain(grace_s=60.0)  # long grace: the drain waiter is alive
        daemon.shutdown()  # the kill — must not deadlock against the drain
        daemon.join(timeout=30)
        assert daemon._thread is None or not daemon._thread.is_alive()
        # Idempotence under fire: draining an already-dead daemon is a no-op.
        daemon.drain(grace_s=1.0)

    def test_drain_validation(self):
        daemon = ShardDaemon(None)
        with pytest.raises(ConfigError):
            daemon.drain(grace_s=0)
        with pytest.raises(ConfigError):
            daemon.drain(grace_s=-1.0)
