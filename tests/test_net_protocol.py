"""Property and unit tests for the network tier's frame protocol."""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NetError, ProtocolError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph
from repro.net import protocol


def _json_scalars() -> st.SearchStrategy:
    return st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**53), max_value=2**53),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.text(max_size=20),
    )


def _json_payloads() -> st.SearchStrategy:
    """JSON-object payloads of bounded depth (the envelope requires objects)."""
    values = st.recursive(
        _json_scalars(),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=10), children, max_size=4),
        ),
        max_leaves=12,
    )
    return st.dictionaries(st.text(max_size=10), values, max_size=5)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        op=st.sampled_from(protocol.REQUEST_OPS),
        request_id=st.text(min_size=1, max_size=32),
        payload=_json_payloads(),
    )
    def test_request_encode_decode_identity(self, op, request_id, payload):
        frame = protocol.encode_request(request_id, op, payload)
        message = protocol.decode_frame_bytes(frame)
        assert message["op"] == op
        assert message["request_id"] == request_id
        assert message["payload"] == payload
        assert message["protocol_version"] == protocol.PROTOCOL_VERSION
        assert message["checksum"] == protocol.payload_checksum(payload)

    @settings(max_examples=60, deadline=None)
    @given(
        status=st.sampled_from(protocol.RESPONSE_STATUSES),
        request_id=st.text(min_size=1, max_size=32),
        payload=_json_payloads(),
    )
    def test_response_encode_decode_identity(self, status, request_id, payload):
        frame = protocol.encode_response(request_id, payload, status=status)
        message = protocol.decode_frame_bytes(frame)
        assert message["status"] == status
        assert message["request_id"] == request_id
        assert message["payload"] == payload

    @settings(max_examples=60, deadline=None)
    @given(payload=_json_payloads(), data=st.data())
    def test_any_truncation_is_rejected(self, payload, data):
        frame = protocol.encode_request("rid", "solve", payload)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(ProtocolError):
            protocol.decode_frame_bytes(frame[:cut])

    @settings(max_examples=60, deadline=None)
    @given(payload=_json_payloads(), trailing=st.binary(min_size=1, max_size=8))
    def test_trailing_bytes_are_rejected(self, payload, trailing):
        frame = protocol.encode_request("rid", "ping", payload)
        with pytest.raises(ProtocolError):
            protocol.decode_frame_bytes(frame + trailing)


def _frame_raw(message: dict) -> bytes:
    """Frame an arbitrary message dict, bypassing encode-side validation."""
    body = json.dumps(message).encode("utf-8")
    return struct.pack("!I", len(body)) + body


class TestStrictDecode:
    def test_version_mismatch_is_rejected(self):
        frame = protocol.encode_request("rid", "ping", {"a": 1})
        message = protocol.decode_frame_bytes(frame)
        message["protocol_version"] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="protocol version"):
            protocol.decode_frame_bytes(_frame_raw(message))

    def test_corrupt_payload_fails_checksum(self):
        frame = protocol.encode_request("rid", "ping", {"a": 1})
        message = protocol.decode_frame_bytes(frame)
        message["payload"]["a"] = 2  # checksum still covers {"a": 1}
        with pytest.raises(ProtocolError, match="checksum"):
            protocol.decode_frame_bytes(_frame_raw(message))

    def test_corrupt_checksum_is_rejected(self):
        frame = protocol.encode_request("rid", "ping", {"a": 1})
        message = protocol.decode_frame_bytes(frame)
        message["checksum"] = "0" * 64
        with pytest.raises(ProtocolError, match="checksum"):
            protocol.decode_frame_bytes(_frame_raw(message))

    def test_body_must_be_json(self):
        body = b"not json at all"
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.decode_frame_bytes(struct.pack("!I", len(body)) + body)

    def test_body_must_be_an_object(self):
        with pytest.raises(ProtocolError, match="object"):
            protocol.decode_frame_bytes(_frame_raw([1, 2, 3]))

    def test_missing_request_id_is_rejected(self):
        frame = protocol.encode_request("rid", "ping", {})
        message = protocol.decode_frame_bytes(frame)
        del message["request_id"]
        with pytest.raises(ProtocolError, match="request_id"):
            protocol.decode_frame_bytes(_frame_raw(message))

    def test_op_and_status_are_mutually_exclusive(self):
        frame = protocol.encode_request("rid", "ping", {})
        message = protocol.decode_frame_bytes(frame)
        message["status"] = "ok"
        with pytest.raises(ProtocolError, match="exactly one"):
            protocol.decode_frame_bytes(_frame_raw(message))
        del message["status"]
        del message["op"]
        with pytest.raises(ProtocolError, match="exactly one"):
            protocol.decode_frame_bytes(_frame_raw(message))

    def test_unknown_op_and_status_are_rejected(self):
        frame = protocol.encode_request("rid", "ping", {})
        message = protocol.decode_frame_bytes(frame)
        message["op"] = "explode"
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.decode_frame_bytes(_frame_raw(message))

    def test_oversized_length_prefix_is_corruption(self):
        frame = struct.pack("!I", protocol.MAX_FRAME_BYTES + 1) + b"x"
        with pytest.raises(ProtocolError, match="MAX_FRAME_BYTES"):
            protocol.decode_frame_bytes(frame)

    def test_encode_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown request op"):
            protocol.encode_request("rid", "explode", {})

    def test_encode_rejects_non_object_payload(self):
        with pytest.raises(ProtocolError, match="object"):
            protocol.encode_request("rid", "ping", [1, 2])

    def test_encode_rejects_unserialisable_payload(self):
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.encode_request("rid", "ping", {"bad": {1, 2}})

    def test_encode_rejects_unknown_status(self):
        with pytest.raises(ProtocolError, match="unknown response status"):
            protocol.encode_response("rid", {}, status="maybe")


class TestGraphOnTheWire:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_graph_round_trip_preserves_fingerprint(self, seed):
        graph = gnm_random_digraph(12, 30, seed=seed)
        rebuilt = protocol.graph_from_wire(protocol.graph_to_wire(graph))
        assert rebuilt.content_fingerprint() == graph.content_fingerprint()
        assert rebuilt.num_nodes == graph.num_nodes
        assert rebuilt.num_edges == graph.num_edges

    def test_string_labels_round_trip(self):
        graph = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        rebuilt = protocol.graph_from_wire(protocol.graph_to_wire(graph))
        assert set(rebuilt.edges()) == set(graph.edges())
        assert rebuilt.content_fingerprint() == graph.content_fingerprint()

    def test_non_json_native_labels_refuse_to_serialise(self):
        graph = DiGraph.from_edges([((0, 1), (2, 3))])
        with pytest.raises(NetError, match="JSON round trip"):
            protocol.graph_to_wire(graph)

    def test_tampered_edges_fail_verification(self):
        graph = gnm_random_digraph(8, 16, seed=3)
        document = protocol.graph_to_wire(graph)
        document["edges"] = document["edges"][:-1]
        with pytest.raises(ProtocolError):
            protocol.graph_from_wire(document)

    def test_shape_mismatch_is_rejected(self):
        document = protocol.graph_to_wire(gnm_random_digraph(8, 16, seed=4))
        document["num_edges"] += 1
        with pytest.raises(ProtocolError, match="shape mismatch"):
            protocol.graph_from_wire(document)

    def test_malformed_document_is_rejected(self):
        with pytest.raises(ProtocolError, match="wire graph"):
            protocol.graph_from_wire({"nodes": [1], "edges": "oops"})
        with pytest.raises(ProtocolError):
            protocol.graph_from_wire("not a document")
