"""Unit and property tests for core-derived bounds and DDS containment."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import containing_core, containing_core_orders, core_based_bounds
from repro.core.bruteforce import brute_force_dds
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_bipartite_digraph, gnm_random_digraph


class TestCoreBasedBounds:
    def test_bipartite_bounds(self):
        g = complete_bipartite_digraph(3, 4)
        bounds = core_based_bounds(g)
        # max xy = 4*3 = 12, optimum density = sqrt(12).
        assert bounds.lower == pytest.approx(math.sqrt(12))
        assert bounds.upper == pytest.approx(2 * math.sqrt(12))
        assert bounds.core_density == pytest.approx(math.sqrt(12))

    def test_trivial_bounds_for_edgeless_graph(self):
        g = DiGraph.from_edges([], nodes=[1, 2])
        bounds = core_based_bounds(g)
        assert bounds.is_trivial
        assert bounds.lower == 0.0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_bounds_bracket_optimum(self, seed):
        """sqrt(max xy) <= rho_opt <= 2*sqrt(max xy) on small random digraphs."""
        g = gnm_random_digraph(7, 18, seed=seed)
        if g.num_edges == 0:
            return
        optimum = brute_force_dds(g).density
        bounds = core_based_bounds(g)
        assert bounds.lower <= optimum + 1e-9
        assert optimum <= bounds.upper + 1e-9

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_core_is_half_approximation(self, seed):
        g = gnm_random_digraph(7, 20, seed=seed)
        if g.num_edges == 0:
            return
        optimum = brute_force_dds(g).density
        bounds = core_based_bounds(g)
        assert bounds.core_density >= optimum / 2.0 - 1e-9


class TestContainment:
    def test_orders_monotone_in_density(self):
        x1, y1 = containing_core_orders(2.0, 0.5, 2.0)
        x2, y2 = containing_core_orders(6.0, 0.5, 2.0)
        assert x2 >= x1 and y2 >= y1

    def test_orders_zero_for_zero_density(self):
        assert containing_core_orders(0.0, 0.5, 2.0) == (0, 0)

    def test_orders_invalid_interval(self):
        with pytest.raises(ValueError):
            containing_core_orders(1.0, 2.0, 1.0)
        with pytest.raises(ValueError):
            containing_core_orders(-1.0, 0.5, 2.0)

    def test_containing_core_with_zero_orders_is_whole_graph(self):
        g = gnm_random_digraph(8, 20, seed=1)
        core = containing_core(g, 0.0, 0.1, 10.0)
        assert len(core.s_nodes) == g.num_nodes
        assert len(core.t_nodes) == g.num_nodes

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_optimum_contained_in_core(self, seed):
        """The brute-force DDS survives inside the containing core.

        Uses a density lower bound <= rho_opt (here: half the optimum) and a
        ratio window that contains the optimal ratio — exactly the conditions
        CoreExact instantiates.
        """
        g = gnm_random_digraph(7, 20, seed=seed)
        if g.num_edges == 0:
            return
        best = brute_force_dds(g)
        ratio = best.s_size / best.t_size
        core = containing_core(g, best.density / 2.0, ratio / 2.0, ratio * 2.0)
        s_indices = set(g.indices_of(best.s_nodes))
        t_indices = set(g.indices_of(best.t_nodes))
        assert s_indices <= set(core.s_nodes)
        assert t_indices <= set(core.t_nodes)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_optimum_contained_with_exact_density(self, seed):
        """Containment also holds with the tightest allowed bound (rho_opt itself)."""
        g = gnm_random_digraph(6, 15, seed=seed)
        if g.num_edges == 0:
            return
        best = brute_force_dds(g)
        ratio = best.s_size / best.t_size
        core = containing_core(g, best.density, ratio, ratio)
        assert set(g.indices_of(best.s_nodes)) <= set(core.s_nodes)
        assert set(g.indices_of(best.t_nodes)) <= set(core.t_nodes)
