"""Unit tests for STSubproblem, the decision network, and the fixed-ratio solver."""

from __future__ import annotations

import math

import pytest

from repro.core.bruteforce import brute_force_dds
from repro.core.density import exactness_tolerance, global_density_upper_bound
from repro.core.fixed_ratio import maximize_fixed_ratio
from repro.core.flow_network import build_decision_network, decision_cut_is_improving
from repro.core.subproblem import STSubproblem
from repro.exceptions import AlgorithmError
from repro.flow.dinic import DinicSolver
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_bipartite_digraph, gnm_random_digraph


class TestSTSubproblem:
    def test_from_graph_defaults_to_all_nodes(self):
        g = gnm_random_digraph(10, 25, seed=1)
        sub = STSubproblem.from_graph(g)
        assert sub.num_edges == g.num_edges
        assert not sub.is_empty

    def test_useless_vertices_dropped(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        g.add_node(99)  # isolated
        sub = STSubproblem.from_graph(g)
        # Node 2 has no outgoing edge -> not an S candidate; node 0 has no
        # incoming edge -> not a T candidate; 99 appears on neither side.
        assert g.index_of(99) not in sub.s_candidates
        assert g.index_of(99) not in sub.t_candidates
        assert g.index_of(2) not in sub.s_candidates
        assert g.index_of(0) not in sub.t_candidates

    def test_candidate_restriction(self):
        g = complete_bipartite_digraph(3, 3)
        s_idx = g.indices_of(["s0", "s1"])
        t_idx = g.indices_of(["t0"])
        sub = STSubproblem.from_graph(g, s_idx, t_idx)
        assert sub.num_edges == 2
        assert set(sub.s_candidates) == set(s_idx)
        assert set(sub.t_candidates) == set(t_idx)

    def test_degrees(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        sub = STSubproblem.from_graph(g)
        dout = sub.out_degrees()
        din = sub.in_degrees()
        assert dout[g.index_of(0)] == 2
        assert din[g.index_of(2)] == 2

    def test_restricted_to(self):
        g = gnm_random_digraph(10, 30, seed=2)
        sub = STSubproblem.from_graph(g)
        smaller = sub.restricted_to(sub.s_candidates[:3], sub.t_candidates[:3])
        assert smaller.num_edges <= sub.num_edges
        for u, v in smaller.edges:
            assert u in sub.s_candidates[:3]
            assert v in sub.t_candidates[:3]

    def test_empty_subproblem(self):
        g = DiGraph.from_edges([(0, 1)])
        sub = STSubproblem.from_graph(g, s_candidates=[g.index_of(1)], t_candidates=[g.index_of(0)])
        assert sub.is_empty
        assert sub.size_signature() == (0, 0, 0)


class TestDecisionNetwork:
    def test_structure(self):
        g = complete_bipartite_digraph(2, 2)
        sub = STSubproblem.from_graph(g)
        decision = build_decision_network(sub, ratio=1.0, guess=1.0)
        # source + sink + 2 S copies + 2 T copies
        assert decision.num_nodes == 6
        assert decision.total_capacity == pytest.approx(2.0 * sub.num_edges)

    def test_invalid_parameters(self):
        g = complete_bipartite_digraph(2, 2)
        sub = STSubproblem.from_graph(g)
        with pytest.raises(AlgorithmError):
            build_decision_network(sub, ratio=0.0, guess=1.0)
        with pytest.raises(AlgorithmError):
            build_decision_network(sub, ratio=1.0, guess=-1.0)

    def test_decision_above_and_below_optimum(self):
        """mincut < 2m iff the guess is below the surrogate optimum."""
        g = complete_bipartite_digraph(2, 3)
        sub = STSubproblem.from_graph(g)
        optimum = math.sqrt(6)  # density of the full bipartite block, ratio 2/3
        ratio = 2.0 / 3.0
        for guess, expect_improving in [(optimum * 0.8, True), (optimum * 1.2, False)]:
            decision = build_decision_network(sub, ratio, guess)
            solver = DinicSolver(decision.network, decision.source, decision.sink)
            cut = solver.max_flow()
            assert decision_cut_is_improving(cut, decision.total_capacity) is expect_improving

    def test_extracted_pair_beats_guess(self):
        g = gnm_random_digraph(9, 30, seed=4)
        sub = STSubproblem.from_graph(g)
        best = brute_force_dds(g)
        ratio = best.s_size / best.t_size
        guess = best.density * 0.9
        decision = build_decision_network(sub, ratio, guess)
        solver = DinicSolver(decision.network, decision.source, decision.sink)
        cut = solver.max_flow()
        assert decision_cut_is_improving(cut, decision.total_capacity)
        s_side, t_side = decision.extract_pair(solver.min_cut_source_side())
        assert s_side and t_side
        density = g.count_edges_between(s_side, t_side) / math.sqrt(len(s_side) * len(t_side))
        assert density > guess


class TestMaximizeFixedRatio:
    def test_exact_value_at_optimal_ratio(self):
        g = complete_bipartite_digraph(2, 3)
        sub = STSubproblem.from_graph(g)
        outcome = maximize_fixed_ratio(
            sub, ratio=2.0 / 3.0, lower=0.0, upper=5.0, tolerance=1e-9
        )
        assert outcome.found_pair
        assert outcome.best_density == pytest.approx(math.sqrt(6))
        assert outcome.lower <= math.sqrt(6) + 1e-9
        assert math.sqrt(6) <= outcome.upper + 1e-9

    def test_upper_bound_certificate(self):
        """The returned bracket always contains the surrogate optimum."""
        g = gnm_random_digraph(9, 30, seed=5)
        sub = STSubproblem.from_graph(g)
        best = brute_force_dds(g)
        ratio = best.s_size / best.t_size
        outcome = maximize_fixed_ratio(
            sub, ratio, lower=0.0, upper=global_density_upper_bound(g), tolerance=1e-9
        )
        # At the optimal ratio the surrogate optimum equals rho_opt.
        assert outcome.lower <= best.density + 1e-9
        assert outcome.upper >= best.density - 1e-9
        assert outcome.best_density == pytest.approx(best.density)

    def test_lower_bound_above_value_extracts_nothing(self):
        g = complete_bipartite_digraph(2, 3)
        sub = STSubproblem.from_graph(g)
        outcome = maximize_fixed_ratio(
            sub, ratio=2.0 / 3.0, lower=10.0, upper=12.0, tolerance=1e-6
        )
        assert not outcome.found_pair
        assert outcome.flow_calls > 0

    def test_empty_subproblem_shortcut(self):
        g = DiGraph.from_edges([(0, 1)])
        sub = STSubproblem.from_graph(g, s_candidates=[g.index_of(1)], t_candidates=[])
        outcome = maximize_fixed_ratio(sub, 1.0, lower=0.0, upper=1.0, tolerance=1e-6)
        assert outcome.flow_calls == 0
        assert not outcome.found_pair

    def test_coarse_gap_stops_early(self):
        g = gnm_random_digraph(12, 50, seed=6)
        sub = STSubproblem.from_graph(g)
        fine = maximize_fixed_ratio(sub, 1.0, 0.0, 10.0, tolerance=exactness_tolerance(g))
        coarse = maximize_fixed_ratio(
            sub, 1.0, 0.0, 10.0, tolerance=exactness_tolerance(g), coarse_gap=0.5
        )
        assert coarse.flow_calls <= fine.flow_calls
        assert coarse.upper - coarse.lower <= 0.5 + 1e-9

    def test_invalid_parameters(self):
        g = complete_bipartite_digraph(2, 2)
        sub = STSubproblem.from_graph(g)
        with pytest.raises(AlgorithmError):
            maximize_fixed_ratio(sub, 1.0, lower=-1.0, upper=1.0, tolerance=1e-6)
        with pytest.raises(AlgorithmError):
            maximize_fixed_ratio(sub, 1.0, lower=0.0, upper=1.0, tolerance=0.0)

    def test_network_observer_called(self):
        g = complete_bipartite_digraph(2, 3)
        sub = STSubproblem.from_graph(g)
        sizes: list[tuple[int, int]] = []
        maximize_fixed_ratio(
            sub,
            1.0,
            0.0,
            5.0,
            tolerance=1e-3,
            network_observer=lambda nodes, arcs: sizes.append((nodes, arcs)),
        )
        assert sizes
        assert all(nodes == 7 for nodes, _ in sizes)

    def test_maximiser_tracking(self):
        g = complete_bipartite_digraph(3, 3)
        sub = STSubproblem.from_graph(g)
        outcome = maximize_fixed_ratio(sub, 1.0, 0.0, 5.0, tolerance=1e-9)
        assert outcome.found_maximiser
        # At ratio 1 the whole 3x3 block is the surrogate maximiser.
        assert len(outcome.last_s) == 3
        assert len(outcome.last_t) == 3
        assert outcome.last_surrogate == pytest.approx(3.0)
