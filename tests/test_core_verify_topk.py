"""Tests for result verification and the greedy top-k extension."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import densest_subgraph
from repro.core.results import DDSResult
from repro.core.topk import top_k_densest
from repro.core.verify import (
    certify_against_bounds,
    check_result,
    is_locally_maximal,
    verify_result,
)
from repro.exceptions import AlgorithmError, EmptyGraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_bipartite_digraph,
    gnm_random_digraph,
    planted_dds_digraph,
)


class TestVerifyResult:
    def test_exact_result_verifies(self):
        g = gnm_random_digraph(12, 45, seed=3)
        result = densest_subgraph(g, method="core-exact")
        report = verify_result(g, result)
        assert report.ok
        assert report.recomputed_density == pytest.approx(result.density)
        assert report.messages == ()

    def test_approx_result_verifies_against_guarantee(self):
        g = gnm_random_digraph(40, 200, seed=4)
        result = densest_subgraph(g, method="core-approx")
        report = verify_result(g, result)
        assert report.consistent
        assert report.within_core_bounds

    def test_tampered_density_detected(self):
        g = complete_bipartite_digraph(2, 3)
        result = densest_subgraph(g, method="core-exact")
        tampered = DDSResult(
            s_nodes=result.s_nodes,
            t_nodes=result.t_nodes,
            density=result.density + 1.0,
            edge_count=result.edge_count,
            method=result.method,
            is_exact=True,
        )
        consistent, _, messages = check_result(g, tampered)
        assert not consistent
        assert any("does not match" in message for message in messages)

    def test_suboptimal_pair_flagged_as_not_locally_maximal(self):
        g = complete_bipartite_digraph(3, 3)
        # Only two of the three S vertices: adding the third improves density.
        bogus = DDSResult(
            s_nodes=["s0", "s1"],
            t_nodes=["t0", "t1", "t2"],
            density=6 / math.sqrt(6),
            edge_count=6,
            method="made-up",
            is_exact=True,
        )
        maximal, messages = is_locally_maximal(g, bogus)
        assert not maximal
        assert any("adding" in message for message in messages)

    def test_wrong_nodes_rejected(self):
        g = complete_bipartite_digraph(2, 2)
        bogus = DDSResult(["ghost"], ["t0"], 1.0, 1, "made-up", True)
        consistent, _, messages = check_result(g, bogus)
        assert not consistent
        assert "not in the graph" in messages[0]

    def test_bounds_certificate_catches_impossible_exact_claim(self):
        g = complete_bipartite_digraph(3, 3)
        # Claim an "exact" density below the core lower bound sqrt(9) = 3.
        bogus = DDSResult(["s0"], ["t0"], 1.0, 1, "made-up", True)
        ok, messages = certify_against_bounds(g, bogus)
        assert not ok
        assert "below the core lower bound" in messages[0]

    def test_empty_graph_rejected(self):
        g = DiGraph.from_edges([], nodes=[1])
        result = DDSResult([1], [1], 0.0, 0, "made-up", False)
        with pytest.raises(AlgorithmError):
            verify_result(g, result)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_exact_results_always_verify(self, seed):
        g = gnm_random_digraph(9, 28, seed=seed)
        if g.num_edges == 0:
            return
        result = densest_subgraph(g, method="core-exact")
        assert verify_result(g, result).ok


class TestTopK:
    def test_first_result_is_the_dds(self):
        g = gnm_random_digraph(15, 60, seed=5)
        single = densest_subgraph(g, method="core-exact")
        ranked = top_k_densest(g, 3, method="core-exact")
        assert ranked[0].density == pytest.approx(single.density)

    def test_densities_non_increasing_and_edge_disjoint(self):
        graph, _, _ = planted_dds_digraph(40, 2.0, 4, 5, 1.0, seed=6)
        ranked = top_k_densest(graph, 4, method="core-exact")
        densities = [result.density for result in ranked]
        assert densities == sorted(densities, reverse=True)
        # Edge-disjointness: the same (u, v) edge never appears in two results.
        seen: set[tuple[str, str]] = set()
        for result in ranked:
            s_idx = graph.indices_of(result.s_nodes)
            t_idx = graph.indices_of(result.t_nodes)
            for u, v in graph.edges_between(s_idx, t_idx):
                edge = (graph.label_of(u), graph.label_of(v))
                assert edge not in seen
                seen.add(edge)

    def test_two_planted_blocks_found_in_order(self):
        g = DiGraph()
        # Block A: 3x4 complete (density sqrt(12)); block B: 2x3 complete (sqrt(6)).
        for i in range(3):
            for j in range(4):
                g.add_edge(f"a_s{i}", f"a_t{j}")
        for i in range(2):
            for j in range(3):
                g.add_edge(f"b_s{i}", f"b_t{j}")
        ranked = top_k_densest(g, 2, method="core-exact")
        assert ranked[0].density == pytest.approx(math.sqrt(12))
        assert ranked[1].density == pytest.approx(math.sqrt(6))
        assert all(label.startswith("a_") for label in ranked[0].s_nodes)
        assert all(label.startswith("b_") for label in ranked[1].s_nodes)

    def test_min_density_cutoff(self):
        g = complete_bipartite_digraph(2, 2)
        ranked = top_k_densest(g, 5, method="core-exact", min_density=10.0)
        assert ranked == []

    def test_k_larger_than_available_structure(self):
        g = DiGraph.from_edges([(0, 1), (2, 3)])
        ranked = top_k_densest(g, 10, method="core-exact")
        assert 1 <= len(ranked) <= 2
        assert sum(result.edge_count for result in ranked) <= 2

    def test_input_graph_not_modified(self):
        g = gnm_random_digraph(12, 40, seed=7)
        edges_before = g.num_edges
        top_k_densest(g, 2, method="core-approx")
        assert g.num_edges == edges_before

    def test_parameter_validation(self):
        g = complete_bipartite_digraph(2, 2)
        with pytest.raises(AlgorithmError):
            top_k_densest(g, 0)
        with pytest.raises(AlgorithmError):
            top_k_densest(g, 2, min_density=-1.0)
        with pytest.raises(EmptyGraphError):
            top_k_densest(DiGraph.from_edges([], nodes=[1]), 2)
