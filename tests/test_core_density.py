"""Unit and property tests for density definitions and bounds helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.density import (
    directed_density,
    directed_density_from_indices,
    edge_count_between,
    exactness_tolerance,
    global_density_upper_bound,
    interval_relaxation_factor,
    surrogate_denominator,
    surrogate_density,
    validate_pair,
)
from repro.exceptions import AlgorithmError
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_bipartite_digraph, gnm_random_digraph


class TestDirectedDensity:
    def test_complete_bipartite_density(self):
        g = complete_bipartite_digraph(2, 3)
        s = [f"s{i}" for i in range(2)]
        t = [f"t{j}" for j in range(3)]
        assert directed_density(g, s, t) == pytest.approx(math.sqrt(6))

    def test_overlapping_sets_allowed(self):
        g = DiGraph.from_edges([(1, 2), (2, 1), (1, 3)])
        density = directed_density(g, [1, 2], [1, 2])
        assert density == pytest.approx(2 / 2)

    def test_empty_side_gives_zero(self):
        g = DiGraph.from_edges([(1, 2)])
        assert directed_density(g, [], [2]) == 0.0
        assert directed_density(g, [1], []) == 0.0

    def test_edge_count_between(self):
        g = DiGraph.from_edges([(1, 2), (2, 3), (1, 3)])
        assert edge_count_between(g, [1], [2, 3]) == 2
        assert edge_count_between(g, [3], [1]) == 0

    def test_index_and_label_views_agree(self):
        g = gnm_random_digraph(10, 30, seed=1)
        labels = g.nodes()[:4]
        indices = g.indices_of(labels)
        assert directed_density(g, labels, labels) == pytest.approx(
            directed_density_from_indices(g, indices, indices)
        )

    def test_validate_pair(self):
        g = DiGraph.from_edges([(1, 2)])
        validate_pair(g, [1], [2])
        with pytest.raises(AlgorithmError):
            validate_pair(g, [], [2])
        with pytest.raises(AlgorithmError):
            validate_pair(g, [1], [99])


class TestSurrogate:
    def test_denominator_at_matching_ratio_equals_geometric_mean(self):
        assert surrogate_denominator(4, 2, ratio=2.0) == pytest.approx(math.sqrt(8))

    def test_denominator_rejects_bad_ratio(self):
        with pytest.raises(AlgorithmError):
            surrogate_denominator(1, 1, ratio=0.0)

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_amgm_lower_bound(self, s_size, t_size, ratio):
        """AM-GM: the surrogate denominator never under-estimates sqrt(|S||T|)."""
        denominator = surrogate_denominator(s_size, t_size, ratio)
        assert denominator >= math.sqrt(s_size * t_size) - 1e-9

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50))
    @settings(max_examples=100, deadline=None)
    def test_property_amgm_tight_at_true_ratio(self, s_size, t_size):
        ratio = s_size / t_size
        denominator = surrogate_denominator(s_size, t_size, ratio)
        assert denominator == pytest.approx(math.sqrt(s_size * t_size))

    def test_surrogate_density_zero_for_empty_sides(self):
        assert surrogate_density(5, 0, 3, 1.0) == 0.0

    def test_surrogate_density_never_exceeds_true_density(self):
        # surrogate <= true density because the denominator is never smaller.
        edges, s_size, t_size = 7, 3, 4
        true_density = edges / math.sqrt(s_size * t_size)
        for ratio in (0.1, 0.5, 1.0, 2.0, 10.0):
            assert surrogate_density(edges, s_size, t_size, ratio) <= true_density + 1e-12


class TestIntervalFactor:
    def test_unit_interval_factor_is_one(self):
        assert interval_relaxation_factor(2.0, 2.0) == pytest.approx(1.0)

    def test_factor_grows_with_interval_width(self):
        assert interval_relaxation_factor(1.0, 4.0) > interval_relaxation_factor(1.0, 2.0) > 1.0

    def test_invalid_interval(self):
        with pytest.raises(AlgorithmError):
            interval_relaxation_factor(2.0, 1.0)
        with pytest.raises(AlgorithmError):
            interval_relaxation_factor(0.0, 1.0)

    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.01, max_value=10.0),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=900),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_interval_bound(self, a, b, s_size, t_size, edges):
        """rho(S,T) <= f(a,b) * surrogate at sqrt(ab) whenever |S|/|T| is in [a, b]."""
        low, high = min(a, b), max(a, b)
        ratio = s_size / t_size
        if not low <= ratio <= high:
            return
        probe = math.sqrt(low * high)
        factor = interval_relaxation_factor(low, high)
        true_density = edges / math.sqrt(s_size * t_size)
        surrogate = surrogate_density(edges, s_size, t_size, probe)
        assert true_density <= factor * surrogate + 1e-9


class TestGlobalBounds:
    def test_upper_bound_dominates_every_pair(self):
        g = gnm_random_digraph(12, 40, seed=6)
        upper = global_density_upper_bound(g)
        nodes = list(range(g.num_nodes))
        # Spot-check a family of pairs, including the whole graph.
        for size in (1, 3, 6, len(nodes)):
            s, t = nodes[:size], nodes[-size:]
            assert directed_density_from_indices(g, s, t) <= upper + 1e-9

    def test_upper_bound_empty_graph(self):
        assert global_density_upper_bound(DiGraph()) == 0.0

    def test_exactness_tolerance_positive_and_small(self):
        g = gnm_random_digraph(10, 30, seed=1)
        tol = exactness_tolerance(g)
        assert 0 < tol <= 1.0 / (2 * 30 * 10**3) + 1e-15

    def test_exactness_tolerance_floor(self):
        g = gnm_random_digraph(200, 3000, seed=1)
        assert exactness_tolerance(g) >= 1e-12
