"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.digraph import DiGraph
from repro.graph.io import write_edge_list


@pytest.fixture
def edge_list_file(tmp_path):
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 2), (3, 0)])
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_find_defaults(self):
        args = build_parser().parse_args(["find", "--dataset", "foodweb-tiny"])
        assert args.method == "auto"

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["find", "--dataset", "x", "--method", "nope"])


class TestCommands:
    def test_find_on_edge_list(self, edge_list_file, capsys):
        exit_code = main(["find", "--edge-list", str(edge_list_file), "--method", "core-exact"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["is_exact"] is True
        assert payload["density"] > 0

    def test_find_with_flow_solver(self, edge_list_file, capsys):
        exit_code = main(
            [
                "find",
                "--edge-list",
                str(edge_list_file),
                "--method",
                "dc-exact",
                "--flow-solver",
                "push-relabel",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flow_solver"] == "push-relabel"
        assert payload["is_exact"] is True

    def test_find_rejects_unknown_flow_solver(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "find",
                    "--edge-list",
                    str(edge_list_file),
                    "--flow-solver",
                    "nope",
                ]
            )

    def test_find_on_dataset_with_nodes(self, capsys):
        exit_code = main(
            ["find", "--dataset", "foodweb-tiny", "--method", "core-approx", "--show-nodes"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["s_nodes"]
        assert payload["t_nodes"]

    def test_find_without_source_errors(self):
        with pytest.raises(SystemExit):
            main(["find", "--method", "core-approx"])

    def test_core_command_max_core(self, edge_list_file, capsys):
        exit_code = main(["core", "--edge-list", str(edge_list_file)])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["x"] >= 1
        assert payload["y"] >= 1

    def test_core_command_specific_orders(self, edge_list_file, capsys):
        exit_code = main(["core", "--edge-list", str(edge_list_file), "--x", "1", "--y", "1"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["x"] == 1 and payload["y"] == 1

    def test_topk_command(self, edge_list_file, capsys):
        exit_code = main(
            ["top-k", "--edge-list", str(edge_list_file), "--k", "2", "--method", "core-exact"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert 1 <= len(payload) <= 2
        assert payload[0]["rank"] == 1
        assert payload[0]["density"] >= payload[-1]["density"]

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "foodweb-tiny" in out
        assert "web-large" in out

    def test_summary_command(self, edge_list_file, capsys):
        assert main(["summary", "--edge-list", str(edge_list_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == 4
        assert payload["edges"] == 4


class TestQualityFlags:
    """--tolerance / --epsilon are validated through the config dataclasses."""

    def test_find_with_tolerance(self, edge_list_file, capsys):
        exit_code = main(
            [
                "find",
                "--edge-list",
                str(edge_list_file),
                "--method",
                "dc-exact",
                "--tolerance",
                "0.001",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["is_exact"] is True

    def test_find_with_epsilon(self, edge_list_file, capsys):
        exit_code = main(
            [
                "find",
                "--edge-list",
                str(edge_list_file),
                "--method",
                "peel-approx",
                "--epsilon",
                "0.25",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "peel-approx"

    def test_epsilon_rejected_for_exact_method(self, edge_list_file):
        with pytest.raises(SystemExit, match="invalid configuration"):
            main(
                [
                    "find",
                    "--edge-list",
                    str(edge_list_file),
                    "--method",
                    "core-exact",
                    "--epsilon",
                    "0.5",
                ]
            )

    def test_tolerance_rejected_for_approx_method(self, edge_list_file):
        with pytest.raises(SystemExit, match="invalid configuration"):
            main(
                [
                    "find",
                    "--edge-list",
                    str(edge_list_file),
                    "--method",
                    "core-approx",
                    "--tolerance",
                    "0.1",
                ]
            )

    def test_negative_tolerance_rejected(self, edge_list_file):
        with pytest.raises(SystemExit, match="invalid configuration"):
            main(
                [
                    "find",
                    "--edge-list",
                    str(edge_list_file),
                    "--method",
                    "dc-exact",
                    "--tolerance",
                    "-0.5",
                ]
            )


class TestCleanErrors:
    def test_unknown_dataset_is_clean_error(self):
        with pytest.raises(SystemExit, match="error: unknown dataset"):
            main(["find", "--dataset", "nope"])

    def test_node_limit_refusal_is_clean_error(self):
        with pytest.raises(SystemExit, match="error: flow_exact enumerates"):
            main(["find", "--dataset", "amazon-medium", "--method", "flow-exact"])


class TestBatchCommand:
    def _write_queries(self, tmp_path, queries):
        path = tmp_path / "queries.json"
        path.write_text(json.dumps(queries))
        return path

    def test_batch_runs_many_queries_on_one_session(self, edge_list_file, tmp_path, capsys):
        queries = [
            {"query": "densest", "method": "core-exact"},
            {"query": "densest", "method": "core-exact"},
            {"query": "top-k", "k": 2, "method": "core-exact"},
            {"query": "xy-core", "x": 1, "y": 1},
            {"query": "max-core"},
            {"query": "fixed-ratio", "ratio": 1.0},
            {"query": "summary"},
        ]
        path = self._write_queries(tmp_path, queries)
        assert main(["batch", "--edge-list", str(edge_list_file), str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == len(queries)
        # The repeated densest query must be a session result-cache hit.
        assert payload["session"]["result_cache_hits"] >= 2
        assert payload["results"][0] == payload["results"][1]
        assert payload["results"][6]["nodes"] == 4

    def test_batch_remote_routes_lanes_to_a_daemon(self, edge_list_file, tmp_path, capsys):
        from repro.net import ShardDaemon

        queries = [
            {"query": "densest", "method": "core-exact"},
            {"query": "top-k", "k": 2, "method": "core-exact"},
        ]
        path = self._write_queries(tmp_path, queries)
        with ShardDaemon() as daemon:
            exit_code = main(
                [
                    "batch",
                    "--edge-list",
                    str(edge_list_file),
                    "--remote",
                    daemon.address,
                    str(path),
                ]
            )
            assert exit_code == 0
            payload = json.loads(capsys.readouterr().out)
            assert len(payload["results"]) == len(queries)
            assert payload["executor"]["mode"] == "remote"
            assert payload["executor"]["lanes_remote"] == 1
            assert payload["executor"]["remote_failures"] == 0
            assert daemon.daemon_stats()["requests"] == {"solve": 1}
        # Parity with the plain local run.
        assert main(["batch", "--edge-list", str(edge_list_file), str(path)]) == 0
        local = json.loads(capsys.readouterr().out)
        assert local["results"] == payload["results"]

    def test_batch_remote_excludes_process_pool(self, edge_list_file, tmp_path):
        path = self._write_queries(tmp_path, [{"query": "summary"}])
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "batch",
                    "--edge-list",
                    str(edge_list_file),
                    "--remote",
                    "localhost:1",
                    "--process-pool",
                    str(path),
                ]
            )

    def test_batch_remote_rejects_malformed_hosts(self, edge_list_file, tmp_path):
        path = self._write_queries(tmp_path, [{"query": "summary"}])
        with pytest.raises(SystemExit, match="invalid configuration"):
            main(
                [
                    "batch",
                    "--edge-list",
                    str(edge_list_file),
                    "--remote",
                    "no-port-here",
                    str(path),
                ]
            )

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.max_sessions == 8
        assert args.jobs == 4
        assert args.store is None

    def test_batch_rejects_unknown_query(self, edge_list_file, tmp_path):
        path = self._write_queries(tmp_path, [{"query": "frobnicate"}])
        with pytest.raises(SystemExit, match="unknown batch query"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])

    def test_batch_rejects_invalid_config(self, edge_list_file, tmp_path):
        path = self._write_queries(
            tmp_path, [{"query": "densest", "method": "core-approx", "tolerance": 0.1}]
        )
        with pytest.raises(SystemExit, match="invalid configuration"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])

    def test_batch_rejects_non_list_payload(self, edge_list_file, tmp_path):
        path = self._write_queries(tmp_path, {"query": "densest"})
        with pytest.raises(SystemExit, match="JSON list"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])

    def test_batch_missing_file(self, edge_list_file, tmp_path):
        with pytest.raises(SystemExit, match="cannot read batch queries"):
            main(["batch", "--edge-list", str(edge_list_file), str(tmp_path / "missing.json")])

    def test_batch_missing_required_field(self, edge_list_file, tmp_path):
        path = self._write_queries(tmp_path, [{"query": "xy-core", "x": 1}])
        with pytest.raises(SystemExit, match="requires a 'y' field"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])
        path = self._write_queries(tmp_path, [{"query": "fixed-ratio"}])
        with pytest.raises(SystemExit, match="requires a 'ratio' field"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])

    def test_batch_unknown_method_is_clean_error(self, edge_list_file, tmp_path):
        path = self._write_queries(tmp_path, [{"query": "densest", "method": "nope"}])
        with pytest.raises(SystemExit, match="batch query failed: unknown method"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])

    def test_batch_rejects_non_numeric_values(self, edge_list_file, tmp_path):
        path = self._write_queries(tmp_path, [{"query": "fixed-ratio", "ratio": "abc"}])
        with pytest.raises(SystemExit, match="'ratio' must be a number"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])
        path = self._write_queries(
            tmp_path, [{"query": "fixed-ratio", "ratio": 1.0, "tolerance": "0.5"}]
        )
        with pytest.raises(SystemExit, match="'tolerance' must be a number"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])

    def test_batch_rejects_typoed_fields(self, edge_list_file, tmp_path):
        path = self._write_queries(
            tmp_path, [{"query": "fixed-ratio", "ratio": 1.0, "tolernce": 0.5}]
        )
        with pytest.raises(SystemExit, match="unexpected fields: tolernce"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])
        path = self._write_queries(tmp_path, [{"query": "summary", "x": 1}])
        with pytest.raises(SystemExit, match="unexpected fields: x"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])


class TestBatchPlanning:
    """The batch command drives the service tier: planner + executor + store."""

    def _write_queries(self, tmp_path, queries):
        path = tmp_path / "queries.json"
        path.write_text(json.dumps(queries))
        return path

    MIXED = [
        {"query": "densest", "method": "core-exact"},
        {"query": "fixed-ratio", "ratio": 1.0},
        {"query": "densest", "method": "core-approx"},
        {"query": "densest", "method": "core-exact"},
        {"query": "fixed-ratio", "ratio": 1.0},
    ]

    def test_planned_and_no_plan_agree_on_answers(self, edge_list_file, tmp_path, capsys):
        path = self._write_queries(tmp_path, self.MIXED)
        assert main(["batch", "--edge-list", str(edge_list_file), str(path)]) == 0
        planned = json.loads(capsys.readouterr().out)
        assert main(["batch", "--edge-list", str(edge_list_file), str(path), "--no-plan"]) == 0
        unplanned = json.loads(capsys.readouterr().out)
        # densest payloads carry no order-dependent counters: exact equality.
        assert planned["results"][0] == unplanned["results"][0]
        assert planned["results"][0] == planned["results"][3]
        assert len(planned["results"]) == len(self.MIXED)

    def test_explain_reports_plan_and_realized_hits(self, edge_list_file, tmp_path, capsys):
        path = self._write_queries(tmp_path, self.MIXED)
        assert main(["batch", "--edge-list", str(edge_list_file), str(path), "--explain"]) == 0
        payload = json.loads(capsys.readouterr().out)
        plan = payload["plan"]
        assert plan["planned"] is True
        assert sorted(plan["execution_order"]) == list(range(len(self.MIXED)))
        assert plan["predicted"]["result_cache_hits"] >= 1
        assert plan["realized"]["result_cache_hits"] >= 1
        assert len(plan["timings"]) == len(self.MIXED)

    def test_per_query_dataset_routes_to_own_session(self, tmp_path, capsys):
        queries = [
            {"query": "densest", "method": "core-approx"},
            {"query": "densest", "method": "core-approx", "dataset": "social-tiny"},
        ]
        path = self._write_queries(tmp_path, queries)
        assert main(["batch", "--dataset", "foodweb-tiny", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["density"] != payload["results"][1]["density"]

    def test_batch_store_round_trip_serves_second_run_from_cache(
        self, edge_list_file, tmp_path, capsys
    ):
        path = self._write_queries(tmp_path, [{"query": "densest", "method": "core-exact"}])
        store_dir = str(tmp_path / "store")
        argv = ["batch", "--edge-list", str(edge_list_file), str(path), "--store", store_dir]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert sum(row["results_saved"] for row in first["store"].values()) == 1
        assert first["session"]["result_cache_hits"] == 0
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert sum(row["results_loaded"] for row in second["store"].values()) == 1
        # The only query is answered straight from the persistent store.
        assert second["session"]["result_cache_hits"] == 1
        assert second["session"]["flow_calls"] == 0
        assert second["results"] == first["results"]

    def test_unknown_per_query_dataset_is_clean_error(self, edge_list_file, tmp_path):
        path = self._write_queries(
            tmp_path, [{"query": "summary", "dataset": "not-a-dataset"}]
        )
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["batch", "--edge-list", str(edge_list_file), str(path)])


class TestWarmAndStoreCommands:
    def test_warm_then_store_inventory_and_clear(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert (
            main(["warm", "--dataset", "foodweb-tiny", "--store", store_dir, "--max-core"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["saved"]["results_saved"] == 1
        assert "max-core" in payload["computed"]
        assert len(payload["fingerprint"]) == 64

        assert main(["store", store_dir]) == 0
        inventory = json.loads(capsys.readouterr().out)
        assert len(inventory["graphs"]) == 1
        assert inventory["graphs"][0]["results"] == 1

        assert main(["store", store_dir, "--verify"]) == 0
        assert json.loads(capsys.readouterr().out)["problems"] == []

        assert main(["store", store_dir, "--clear"]) == 0
        assert json.loads(capsys.readouterr().out)["cleared_graphs"] == 1

    def test_warm_with_explicit_methods(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        argv = [
            "warm", "--dataset", "foodweb-tiny", "--store", store_dir,
            "--method", "core-approx", "--method", "core-exact",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["saved"]["results_saved"] == 2

    def test_store_verify_fails_on_tampering(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["warm", "--dataset", "foodweb-tiny", "--store", str(store_dir)]) == 0
        capsys.readouterr()
        [entry] = (store_dir / "graphs").glob("*/results/*.json")
        document = json.loads(entry.read_text())
        document["payload"]["result"]["density"] = 123.0
        entry.write_text(json.dumps(document))
        assert main(["store", str(store_dir), "--verify"]) == 1
        assert json.loads(capsys.readouterr().out)["problems"]

    def test_store_evict_older_than(self, tmp_path, capsys):
        import os
        import time

        store_dir = tmp_path / "store"
        assert main(["warm", "--dataset", "foodweb-tiny", "--store", str(store_dir)]) == 0
        capsys.readouterr()
        [entry] = (store_dir / "graphs").glob("*/results/*.json")
        past = time.time() - 30 * 86400
        os.utime(entry, (past, past))
        assert main(["store", str(store_dir), "--evict-older-than", "7"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evicted"]["results_evicted"] == 1
        assert not entry.exists()
        assert payload["graphs"][0]["results"] == 0

    def test_store_evict_max_bytes(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["warm", "--dataset", "foodweb-tiny", "--store", str(store_dir)]) == 0
        capsys.readouterr()
        assert main(["store", str(store_dir), "--max-bytes", "0"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evicted"]["graphs_evicted"] == 1
        assert payload["evicted"]["bytes_remaining"] == 0
        assert payload["graphs"] == []

    def test_store_evict_composes_with_verify(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(["warm", "--dataset", "foodweb-tiny", "--store", str(store_dir)]) == 0
        capsys.readouterr()
        # Clean store: evict-then-verify reports no problems and exits 0.
        assert main(["store", str(store_dir), "--evict-older-than", "7", "--verify"]) == 0
        assert json.loads(capsys.readouterr().out)["problems"] == []
        # Tampered store: the combined invocation must still exit 1.
        [entry] = (store_dir / "graphs").glob("*/results/*.json")
        document = json.loads(entry.read_text())
        document["payload"]["result"]["density"] = 99.0
        entry.write_text(json.dumps(document))
        assert main(["store", str(store_dir), "--evict-older-than", "7", "--verify"]) == 1
        assert json.loads(capsys.readouterr().out)["problems"]


class TestFlowSolverFlags:
    def test_find_accepts_auto(self, capsys):
        assert main(
            ["find", "--dataset", "foodweb-tiny", "--method", "core-exact",
             "--flow-solver", "auto"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flow_solver"] == "auto"
        assert payload["is_exact"] is True

    def test_batch_accepts_flow_solver(self, tmp_path, capsys):
        queries = tmp_path / "queries.json"
        queries.write_text(json.dumps([{"query": "densest", "method": "dc-exact"}]))
        baseline = main(["batch", "--dataset", "foodweb-tiny", str(queries)])
        assert baseline == 0
        plain = json.loads(capsys.readouterr().out)
        assert (
            main(
                ["batch", "--dataset", "foodweb-tiny", str(queries),
                 "--flow-solver", "auto", "--jobs", "2"]
            )
            == 0
        )
        routed = json.loads(capsys.readouterr().out)
        assert routed["results"][0]["density"] == plain["results"][0]["density"]
        assert routed["session"]["backend_selections"] == routed["session"]["flow_calls"]
