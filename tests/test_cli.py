"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.digraph import DiGraph
from repro.graph.io import write_edge_list


@pytest.fixture
def edge_list_file(tmp_path):
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 2), (3, 0)])
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_find_defaults(self):
        args = build_parser().parse_args(["find", "--dataset", "foodweb-tiny"])
        assert args.method == "auto"

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["find", "--dataset", "x", "--method", "nope"])


class TestCommands:
    def test_find_on_edge_list(self, edge_list_file, capsys):
        exit_code = main(["find", "--edge-list", str(edge_list_file), "--method", "core-exact"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["is_exact"] is True
        assert payload["density"] > 0

    def test_find_with_flow_solver(self, edge_list_file, capsys):
        exit_code = main(
            [
                "find",
                "--edge-list",
                str(edge_list_file),
                "--method",
                "dc-exact",
                "--flow-solver",
                "push-relabel",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flow_solver"] == "push-relabel"
        assert payload["is_exact"] is True

    def test_find_rejects_unknown_flow_solver(self, edge_list_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "find",
                    "--edge-list",
                    str(edge_list_file),
                    "--flow-solver",
                    "nope",
                ]
            )

    def test_find_on_dataset_with_nodes(self, capsys):
        exit_code = main(
            ["find", "--dataset", "foodweb-tiny", "--method", "core-approx", "--show-nodes"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["s_nodes"]
        assert payload["t_nodes"]

    def test_find_without_source_errors(self):
        with pytest.raises(SystemExit):
            main(["find", "--method", "core-approx"])

    def test_core_command_max_core(self, edge_list_file, capsys):
        exit_code = main(["core", "--edge-list", str(edge_list_file)])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["x"] >= 1
        assert payload["y"] >= 1

    def test_core_command_specific_orders(self, edge_list_file, capsys):
        exit_code = main(["core", "--edge-list", str(edge_list_file), "--x", "1", "--y", "1"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["x"] == 1 and payload["y"] == 1

    def test_topk_command(self, edge_list_file, capsys):
        exit_code = main(
            ["top-k", "--edge-list", str(edge_list_file), "--k", "2", "--method", "core-exact"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert 1 <= len(payload) <= 2
        assert payload[0]["rank"] == 1
        assert payload[0]["density"] >= payload[-1]["density"]

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "foodweb-tiny" in out
        assert "web-large" in out

    def test_summary_command(self, edge_list_file, capsys):
        assert main(["summary", "--edge-list", str(edge_list_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == 4
        assert payload["edges"] == 4
