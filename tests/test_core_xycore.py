"""Unit and property tests for [x, y]-cores."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.density import directed_density_from_indices
from repro.core.xycore import max_xy_core, max_y_for_x, xy_core, xy_core_skyline
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_bipartite_digraph,
    cycle_digraph,
    gnm_random_digraph,
    planted_dds_digraph,
)


def _assert_core_degrees(graph: DiGraph, core) -> None:
    """Every S vertex has >= x out-edges into T and every T vertex >= y in-edges from S."""
    t_set = set(core.t_nodes)
    s_set = set(core.s_nodes)
    for u in core.s_nodes:
        assert sum(1 for v in graph.out_adj[u] if v in t_set) >= core.x
    for v in core.t_nodes:
        assert sum(1 for u in graph.in_adj[v] if u in s_set) >= core.y


class TestXYCoreBasics:
    def test_complete_bipartite_core(self):
        g = complete_bipartite_digraph(3, 4)
        core = xy_core(g, 4, 3)
        assert len(core.s_nodes) == 3
        assert len(core.t_nodes) == 4
        assert xy_core(g, 5, 3).is_empty
        assert xy_core(g, 4, 4).is_empty

    def test_cycle_core(self):
        g = cycle_digraph(5)
        core = xy_core(g, 1, 1)
        assert len(core.s_nodes) == 5
        assert len(core.t_nodes) == 5
        assert xy_core(g, 2, 1).is_empty

    def test_zero_orders_keep_everything(self):
        g = gnm_random_digraph(10, 20, seed=1)
        core = xy_core(g, 0, 0)
        assert len(core.s_nodes) == 10
        assert len(core.t_nodes) == 10

    def test_core_degree_constraints(self):
        g = gnm_random_digraph(25, 120, seed=3)
        core = xy_core(g, 2, 3)
        if not core.is_empty:
            _assert_core_degrees(g, core)

    def test_core_with_candidate_restriction(self):
        g = complete_bipartite_digraph(3, 4)
        s_indices = g.indices_of(["s0", "s1"])
        t_indices = g.indices_of([f"t{j}" for j in range(4)])
        core = xy_core(g, 4, 2, s_candidates=s_indices, t_candidates=t_indices)
        assert sorted(core.s_nodes) == sorted(s_indices)
        assert sorted(core.t_nodes) == sorted(t_indices)

    def test_core_maximality(self):
        """No vertex outside the core could be added back (on a concrete graph)."""
        g = gnm_random_digraph(15, 60, seed=7)
        core = xy_core(g, 2, 2)
        if core.is_empty:
            pytest.skip("core empty for this seed")
        t_set = set(core.t_nodes)
        s_set = set(core.s_nodes)
        # Adding any single outside vertex to S keeps its out-degree into T
        # below x (otherwise peeling would not have removed it last); verify
        # the weaker but checkable statement that the returned pair is a
        # fixpoint: recomputing the core inside itself changes nothing.
        again = xy_core(g, 2, 2, s_candidates=core.s_nodes, t_candidates=core.t_nodes)
        assert set(again.s_nodes) == s_set
        assert set(again.t_nodes) == t_set


class TestNestednessAndDensity:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_nestedness(self, seed):
        g = gnm_random_digraph(12, 40, seed=seed)
        base = xy_core(g, 1, 1)
        tighter = xy_core(g, 2, 2)
        assert set(tighter.s_nodes) <= set(base.s_nodes)
        assert set(tighter.t_nodes) <= set(base.t_nodes)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_degree_constraints_hold(self, seed):
        g = gnm_random_digraph(12, 45, seed=seed)
        core = xy_core(g, 2, 3)
        if not core.is_empty:
            _assert_core_degrees(g, core)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_density_lower_bound(self, seed, x, y):
        """A non-empty [x, y]-core has directed density at least sqrt(x*y)."""
        g = gnm_random_digraph(14, 60, seed=seed)
        core = xy_core(g, x, y)
        if core.is_empty:
            return
        density = directed_density_from_indices(g, core.s_nodes, core.t_nodes)
        assert density >= math.sqrt(x * y) - 1e-9


class TestSkylineAndMaxCore:
    def test_max_y_for_x_monotone(self):
        g = gnm_random_digraph(30, 200, seed=5)
        previous = None
        for x in range(1, 6):
            y_best, _ = max_y_for_x(g, x)
            if previous is not None:
                assert y_best <= previous
            previous = y_best

    def test_skyline_monotone_decreasing(self):
        g, _, _ = planted_dds_digraph(40, 2.0, 5, 6, 1.0, seed=2)
        skyline = xy_core_skyline(g)
        assert skyline, "planted graph must have a non-trivial skyline"
        ys = [y for _, y in skyline]
        assert ys == sorted(ys, reverse=True)
        xs = [x for x, _ in skyline]
        assert xs == list(range(1, len(xs) + 1))

    def test_max_xy_core_matches_skyline(self):
        g, _, _ = planted_dds_digraph(40, 2.0, 5, 6, 1.0, seed=3)
        best = max_xy_core(g)
        skyline = xy_core_skyline(g)
        assert best.product == max(x * y for x, y in skyline)

    def test_max_xy_core_on_planted_block(self):
        g, planted_s, planted_t = planted_dds_digraph(60, 1.0, 5, 7, 1.0, seed=4)
        best = max_xy_core(g)
        # The planted complete 5x7 block supports x=7, y=5.
        assert best.product >= 35
        assert set(g.indices_of(planted_s)) <= set(best.s_nodes)
        assert set(g.indices_of(planted_t)) <= set(best.t_nodes)

    def test_empty_graph_core(self):
        g = DiGraph()
        best = max_xy_core(g)
        assert best.is_empty
        assert xy_core_skyline(g) == []

    def test_edgeless_graph_max_y(self):
        g = DiGraph.from_edges([], nodes=[1, 2, 3])
        assert max_y_for_x(g, 1) == (0, None)
