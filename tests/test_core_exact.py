"""Correctness tests for the exact DDS algorithms (FlowExact, DCExact, CoreExact).

The central property: every exact algorithm returns the same optimal density
as brute-force enumeration on random digraphs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force_dds
from repro.core.density import directed_density
from repro.core.exact_core import core_exact
from repro.core.exact_dc import dc_exact
from repro.core.exact_flow import flow_exact
from repro.exceptions import AlgorithmError, EmptyGraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_bipartite_digraph,
    cycle_digraph,
    gnm_random_digraph,
    planted_dds_digraph,
    star_digraph,
)

EXACT_SOLVERS = [flow_exact, dc_exact, core_exact]


@pytest.mark.parametrize("solver", EXACT_SOLVERS)
class TestExactSolversOnKnownGraphs:
    def test_single_edge(self, solver):
        g = DiGraph.from_edges([("a", "b")])
        result = solver(g)
        assert result.density == pytest.approx(1.0)
        assert result.is_exact

    def test_complete_bipartite(self, solver):
        g = complete_bipartite_digraph(3, 4)
        result = solver(g)
        assert result.density == pytest.approx(math.sqrt(12))
        assert result.s_size == 3
        assert result.t_size == 4

    def test_star(self, solver):
        g = star_digraph(7, outward=True)
        result = solver(g)
        assert result.density == pytest.approx(math.sqrt(7))

    def test_cycle(self, solver):
        g = cycle_digraph(6)
        result = solver(g)
        assert result.density == pytest.approx(1.0)

    def test_reported_density_matches_reported_pair(self, solver):
        g = gnm_random_digraph(12, 45, seed=11)
        result = solver(g)
        recomputed = directed_density(g, result.s_nodes, result.t_nodes)
        assert result.density == pytest.approx(recomputed)
        assert result.edge_count == round(result.density * math.sqrt(result.s_size * result.t_size))

    def test_rejects_edgeless_graph(self, solver):
        g = DiGraph.from_edges([], nodes=[1, 2])
        with pytest.raises(EmptyGraphError):
            solver(g)


@pytest.mark.parametrize("solver", EXACT_SOLVERS)
@pytest.mark.parametrize("seed", range(12))
def test_exact_matches_bruteforce_random(solver, seed):
    g = gnm_random_digraph(8, 22, seed=seed)
    if g.num_edges == 0:
        pytest.skip("empty random draw")
    expected = brute_force_dds(g).density
    assert solver(g).density == pytest.approx(expected, abs=1e-9)


class TestExactHypothesis:
    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_dc_and_core_match_bruteforce(self, n, m, seed):
        g = gnm_random_digraph(n, m, seed=seed)
        if g.num_edges == 0:
            return
        expected = brute_force_dds(g).density
        assert dc_exact(g).density == pytest.approx(expected, abs=1e-9)
        assert core_exact(g).density == pytest.approx(expected, abs=1e-9)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_property_flow_exact_matches_bruteforce(self, seed):
        g = gnm_random_digraph(7, 18, seed=seed)
        if g.num_edges == 0:
            return
        expected = brute_force_dds(g).density
        assert flow_exact(g).density == pytest.approx(expected, abs=1e-9)


class TestExactOnPlantedGraphs:
    def test_planted_block_recovered_exactly(self):
        graph, planted_s, planted_t = planted_dds_digraph(
            n_background=60, background_degree=1.5, s_size=4, t_size=6, p_dense=1.0, seed=8
        )
        result = core_exact(graph)
        assert set(result.s_nodes) == set(planted_s)
        assert set(result.t_nodes) == set(planted_t)
        assert result.density == pytest.approx(24 / math.sqrt(24))

    def test_dc_and_core_agree_on_medium_planted(self):
        graph, _, _ = planted_dds_digraph(
            n_background=120, background_degree=2.0, s_size=6, t_size=9, p_dense=0.9, seed=21
        )
        dc_result = dc_exact(graph)
        core_result = core_exact(graph)
        assert dc_result.density == pytest.approx(core_result.density, abs=1e-9)


class TestExactInstrumentation:
    def test_flow_exact_examines_all_ratios(self):
        g = gnm_random_digraph(6, 15, seed=2)
        result = flow_exact(g)
        # n=6 has at most 36 (i, j) pairs and 23 distinct ratios.
        assert result.stats["ratios_examined"] == 23

    def test_core_exact_makes_fewer_flow_calls_than_flow_exact(self):
        g = gnm_random_digraph(12, 45, seed=7)
        baseline = flow_exact(g)
        fast = core_exact(g)
        assert fast.stats["flow_calls"] < baseline.stats["flow_calls"]
        assert fast.density == pytest.approx(baseline.density)

    def test_flow_exact_node_limit(self):
        g = gnm_random_digraph(40, 100, seed=1)
        with pytest.raises(AlgorithmError):
            flow_exact(g, node_limit=30)

    def test_core_exact_records_network_sizes(self):
        g = gnm_random_digraph(12, 45, seed=7)
        result = core_exact(g)
        assert result.stats["network_nodes"]
        assert len(result.stats["network_nodes"]) == result.stats["flow_calls"]
        assert result.stats["use_core_restriction"] is True

    def test_dc_exact_core_seed_ablation_same_answer(self):
        g = gnm_random_digraph(10, 35, seed=13)
        plain = dc_exact(g, seed_with_core=False)
        seeded = dc_exact(g, seed_with_core=True)
        assert plain.density == pytest.approx(seeded.density)
