"""Unit tests for the brute-force oracle itself."""

from __future__ import annotations

import math

import pytest

from repro.core.bruteforce import brute_force_dds
from repro.exceptions import AlgorithmError
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_bipartite_digraph, cycle_digraph, star_digraph


def test_single_edge():
    g = DiGraph.from_edges([("a", "b")])
    result = brute_force_dds(g)
    assert result.density == pytest.approx(1.0)
    assert result.s_nodes == ["a"]
    assert result.t_nodes == ["b"]


def test_complete_bipartite():
    g = complete_bipartite_digraph(2, 3)
    result = brute_force_dds(g)
    assert result.density == pytest.approx(math.sqrt(6))
    assert result.s_size == 2
    assert result.t_size == 3
    assert result.edge_count == 6


def test_outward_star_prefers_full_fan():
    # hub -> k leaves: best is S={hub}, T=all leaves, density sqrt(k).
    g = star_digraph(6, outward=True)
    result = brute_force_dds(g)
    assert result.density == pytest.approx(math.sqrt(6))
    assert result.s_nodes == ["hub"]
    assert result.t_size == 6


def test_cycle_density_is_one():
    g = cycle_digraph(5)
    result = brute_force_dds(g)
    assert result.density == pytest.approx(1.0)


def test_overlapping_sides_used_when_beneficial():
    # Two mutual edges: S = T = {a, b} has density 2/2 = 1; any single edge
    # pair also gives 1 — the optimum must be exactly 1.
    g = DiGraph.from_edges([("a", "b"), ("b", "a")])
    result = brute_force_dds(g)
    assert result.density == pytest.approx(1.0)


def test_rejects_large_graph():
    g = complete_bipartite_digraph(8, 8)
    with pytest.raises(AlgorithmError):
        brute_force_dds(g, max_nodes=10)


def test_rejects_edgeless_graph():
    g = DiGraph.from_edges([], nodes=[1, 2, 3])
    with pytest.raises(AlgorithmError):
        brute_force_dds(g)


def test_result_metadata():
    g = complete_bipartite_digraph(2, 2)
    result = brute_force_dds(g)
    assert result.method == "brute-force"
    assert result.is_exact
    assert result.stats["pairs_examined"] > 0
    assert result.ratio == pytest.approx(1.0)
    assert result.summary()["density"] == pytest.approx(2.0)
