"""Unit tests for the timekeeping layer: Deadline/Budget and AnytimeResult.

Everything here drives an *injected* clock — no sleeps.  The monotonic
pin matters: retry/backoff and budget enforcement must be immune to
wall-clock jumps (NTP steps, suspend/resume), so ``Deadline`` and the
client's circuit breaker read time only through their injectable
monotonic clocks, never ``time.time()``.
"""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigError, DeadlineExceeded
from repro.runtime import AnytimeResult, Budget, Deadline


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_budget_validation(self):
        for bad in (0, -1, float("inf"), float("nan"), "soon", None):
            with pytest.raises(ConfigError):
                Deadline(bad)

    def test_bool_budget_is_rejected(self):
        # bool is an int subclass; True must not mean "1 ms".
        with pytest.raises(ConfigError):
            Deadline(True)

    def test_budget_is_an_alias(self):
        assert Budget is Deadline

    def test_elapsed_and_remaining_track_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(250.0, clock=clock)
        assert deadline.elapsed_ms() == 0.0
        assert deadline.remaining_ms() == 250.0
        assert not deadline.expired
        clock.advance(0.1)
        assert deadline.elapsed_ms() == pytest.approx(100.0)
        assert deadline.remaining_ms() == pytest.approx(150.0)
        clock.advance(0.2)
        assert deadline.expired
        assert deadline.remaining_ms() == 0.0  # clamped, never negative

    def test_check_raises_only_after_expiry(self):
        clock = FakeClock()
        deadline = Deadline(50.0, clock=clock)
        deadline.check("early")  # no-op
        clock.advance(0.05)
        with pytest.raises(DeadlineExceeded, match="at dinic BFS round"):
            deadline.check("dinic BFS round")

    def test_after_ms_constructor(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(10.0, clock=clock)
        clock.advance(0.009)
        assert not deadline.expired
        clock.advance(0.002)
        assert deadline.expired

    def test_wall_clock_jumps_cannot_extend_or_skip_a_budget(self):
        """The monotonic pin (satellite: no ``time.time()`` arithmetic).

        A Deadline's view of time is exactly its injected clock.  Simulate
        a wall-clock step by *not* moving the injected clock: the budget
        must be unaffected, proving expiry depends on nothing but the
        monotonic source.  Conversely a monotonic advance expires it even
        if the wall clock were stepped backwards.
        """
        clock = FakeClock()
        deadline = Deadline(100.0, clock=clock)
        # However the wall clock jumps, an unmoved monotonic clock means
        # an untouched budget.
        assert deadline.remaining_ms() == pytest.approx(100.0)
        clock.advance(0.2)
        assert deadline.expired

    def test_deadline_exceeded_carries_partial(self):
        partial = AnytimeResult(density=1.5)
        error = DeadlineExceeded("boom", partial=partial)
        assert error.partial is partial
        assert DeadlineExceeded("bare").partial is None


class TestAnytimeResult:
    def test_defaults_are_the_vacuous_bounds(self):
        partial = AnytimeResult()
        assert partial.density == 0.0
        assert partial.upper_bound == math.inf
        assert partial.gap == math.inf
        assert not partial.found_pair

    def test_gap_and_found_pair(self):
        partial = AnytimeResult(
            s_nodes=["a", "b"], t_nodes=["c"], density=2.0, upper_bound=3.5
        )
        assert partial.gap == pytest.approx(1.5)
        assert partial.found_pair

    def test_to_payload_shape(self):
        payload = AnytimeResult(
            s_nodes=["a"], t_nodes=["b"], density=1.0, upper_bound=2.0, method="dc-exact"
        ).to_payload()
        assert payload == {
            "deadline_exceeded": True,
            "method": "dc-exact",
            "density": 1.0,
            "upper_bound": 2.0,
            "gap": 1.0,
            "s_size": 1,
            "t_size": 1,
            "is_exact": False,
        }

    def test_to_payload_with_infinite_upper_uses_none(self):
        payload = AnytimeResult().to_payload()
        assert payload["upper_bound"] is None
        assert payload["gap"] is None
