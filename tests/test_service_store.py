"""The persistent session store: lossless round trips and integrity checks.

Acceptance criteria of the service tier (ISSUE 4): a result loaded from
disk compares equal — subgraph, density, stats — to the freshly computed
one; corruption (tampered payloads, wrong schema versions, mismatched
graphs) is detected and counted, never silently served.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import ApproxConfig, ExactConfig, FlowConfig
from repro.datasets.registry import load_dataset
from repro.exceptions import StoreError
from repro.graph.digraph import DiGraph
from repro.service import STORE_SCHEMA_VERSION, SessionStore
from repro.session import DDSSession


@pytest.fixture
def graph():
    return load_dataset("foodweb-tiny")


def _strip_hit_marker(result):
    stats = dict(result.stats)
    stats.pop("result_cache_hit", None)
    return stats


class TestFingerprint:
    def test_stable_across_instances(self):
        a = DiGraph.from_edges([("a", "b"), ("b", "c")])
        b = DiGraph.from_edges([("a", "b"), ("b", "c")])
        assert a.content_fingerprint() == b.content_fingerprint()
        assert a.state_token != b.state_token

    def test_changes_with_structure_and_node_order(self):
        base = DiGraph.from_edges([("a", "b"), ("b", "c")])
        more = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        reordered = DiGraph.from_edges([("b", "c"), ("a", "b")])
        assert base.content_fingerprint() != more.content_fingerprint()
        # Node insertion order is part of the identity (index tie-breaking).
        assert base.content_fingerprint() != reordered.content_fingerprint()

    def test_cache_invalidated_on_mutation(self):
        graph = DiGraph.from_edges([("a", "b")])
        before = graph.content_fingerprint()
        graph.add_edge("b", "a")
        assert graph.content_fingerprint() != before


class TestRoundTrip:
    def test_result_round_trip_is_lossless(self, graph, tmp_path):
        store = SessionStore(tmp_path)
        warm = DDSSession(graph)
        fresh = warm.densest_subgraph("core-exact")
        warm.xy_core(2, 2)
        warm.max_xy_core()
        counters = store.save_session(warm)
        assert counters["results_saved"] == 1
        assert counters["derived_saved"] == 1

        cold = DDSSession(load_dataset("foodweb-tiny"))
        loaded = store.warm_session(cold)
        assert loaded["results_loaded"] == 1
        assert loaded["derived_loaded"] == 1
        assert loaded["results_corrupt"] == 0
        served = cold.densest_subgraph("core-exact")
        # Served straight from the store: no recomputation happened ...
        assert served.stats["result_cache_hit"] is True
        assert cold.cache_stats()["flow_calls"] == 0
        # ... and the answer is bit-identical to the freshly computed one.
        assert served.s_nodes == fresh.s_nodes
        assert served.t_nodes == fresh.t_nodes
        assert served.density == fresh.density
        assert served.edge_count == fresh.edge_count
        assert served.is_exact == fresh.is_exact
        assert _strip_hit_marker(served) == _strip_hit_marker(fresh)

    def test_derived_state_round_trips(self, graph, tmp_path):
        store = SessionStore(tmp_path)
        warm = DDSSession(graph)
        core = warm.max_xy_core()
        store.save_session(warm)

        cold = DDSSession(load_dataset("foodweb-tiny"))
        store.warm_session(cold)
        assert cold.out_degrees() == warm.out_degrees()
        assert cold.in_degrees() == warm.in_degrees()
        assert cold.density_upper_bound() == warm.density_upper_bound()
        restored = cold.cached_max_core()
        assert restored is not None
        assert (restored.x, restored.y) == (core.x, core.y)
        assert restored.s_nodes == core.s_nodes

    def test_distinct_configs_stored_separately(self, graph, tmp_path):
        store = SessionStore(tmp_path)
        session = DDSSession(graph)
        session.densest_subgraph("core-exact")
        session.densest_subgraph("core-exact", config=ExactConfig(tolerance=0.5))
        session.densest_subgraph("core-approx", config=ApproxConfig())
        assert store.save_session(session)["results_saved"] == 3
        cold = DDSSession(load_dataset("foodweb-tiny"))
        assert store.warm_session(cold)["results_loaded"] == 3
        hit = cold.densest_subgraph("core-exact", config=ExactConfig(tolerance=0.5))
        assert hit.stats["result_cache_hit"] is True

    def test_non_json_native_labels_are_skipped_not_mangled(self, tmp_path):
        graph = DiGraph.from_edges([((1, "a"), (2, "b")), ((1, "a"), (3, "c"))])
        session = DDSSession(graph)
        session.densest_subgraph("core-approx")
        counters = SessionStore(tmp_path).save_session(session)
        assert counters["results_saved"] == 0
        assert counters["results_skipped"] == 1

    def test_unknown_graph_warms_nothing(self, graph, tmp_path):
        store = SessionStore(tmp_path)
        counters = store.warm_session(DDSSession(graph))
        assert counters == {
            "results_loaded": 0,
            "results_corrupt": 0,
            "results_incompatible": 0,
            "derived_loaded": 0,
            "derived_corrupt": 0,
            "manifest_corrupt": 0,
        }


class TestIntegrity:
    def _populated_store(self, graph, root) -> SessionStore:
        store = SessionStore(root)
        session = DDSSession(graph)
        session.densest_subgraph("core-exact")
        store.save_session(session)
        return store

    def test_tampered_result_is_counted_and_skipped(self, graph, tmp_path):
        store = self._populated_store(graph, tmp_path)
        [entry] = (tmp_path / "graphs").glob("*/results/*.json")
        document = json.loads(entry.read_text())
        document["payload"]["result"]["density"] = 999.0  # checksum now lies
        entry.write_text(json.dumps(document))
        cold = DDSSession(load_dataset("foodweb-tiny"))
        counters = store.warm_session(cold)
        assert counters["results_corrupt"] == 1
        assert counters["results_loaded"] == 0
        # The poisoned entry is never served: the query recomputes.
        assert cold.densest_subgraph("core-exact").stats["result_cache_hit"] is False

    def test_verify_reports_tampering(self, graph, tmp_path):
        store = self._populated_store(graph, tmp_path)
        assert store.verify() == []
        [entry] = (tmp_path / "graphs").glob("*/results/*.json")
        document = json.loads(entry.read_text())
        document["payload"]["result"]["density"] = 999.0
        entry.write_text(json.dumps(document))
        problems = store.verify()
        assert len(problems) == 1 and "checksum" in problems[0]

    def test_wrong_store_schema_version_is_refused(self, tmp_path):
        (tmp_path / "store.json").write_text(
            json.dumps({"store_schema_version": STORE_SCHEMA_VERSION + 1})
        )
        with pytest.raises(StoreError, match="schema version"):
            SessionStore(tmp_path)

    def test_corrupt_manifest_loads_nothing_but_never_raises(self, graph, tmp_path):
        """Serving must not die because a cache entry rotted: a bad manifest
        distrusts the whole graph directory, counted, and the query recomputes."""
        store = self._populated_store(graph, tmp_path)
        [manifest] = (tmp_path / "graphs").glob("*/manifest.json")
        document = json.loads(manifest.read_text())
        document["payload"]["num_edges"] += 1
        manifest.write_text(json.dumps(document))
        # The tamper is visible to the operator tool ...
        assert any("manifest.json" in problem for problem in store.verify())
        # ... and to the serving path, which distrusts the directory.
        session = DDSSession(load_dataset("foodweb-tiny"))
        counters = store.warm_session(session)
        assert counters["manifest_corrupt"] == 1
        assert counters["results_loaded"] == 0
        assert session.densest_subgraph("core-exact").stats["result_cache_hit"] is False
        # Saving self-heals the manifest from the live graph ...
        store.save_session(session)
        healed = store.warm_session(DDSSession(load_dataset("foodweb-tiny")))
        # ... so the next warm start trusts the directory again.
        assert healed["manifest_corrupt"] == 0
        assert healed["results_loaded"] == 1

    def test_incompatible_method_is_counted_not_fatal(self, graph, tmp_path):
        store = self._populated_store(graph, tmp_path)
        [entry] = (tmp_path / "graphs").glob("*/results/*.json")
        document = json.loads(entry.read_text())
        document["payload"]["method"] = "not-a-registered-method"
        # Re-checksum so only the method name is "wrong", not the envelope.
        import hashlib

        canonical = json.dumps(document["payload"], sort_keys=True, separators=(",", ":"))
        document["checksum"] = hashlib.sha256(canonical.encode()).hexdigest()
        entry.write_text(json.dumps(document))
        counters = store.warm_session(DDSSession(load_dataset("foodweb-tiny")))
        assert counters["results_incompatible"] == 1
        assert counters["results_corrupt"] == 0


class TestManagement:
    def test_inventory_and_clear(self, graph, tmp_path):
        store = SessionStore(tmp_path)
        assert store.inventory() == []
        session = DDSSession(graph)
        session.densest_subgraph("core-approx")
        store.save_session(session)
        other = DDSSession(load_dataset("social-tiny"))
        other.densest_subgraph("core-approx")
        store.save_session(other)
        rows = store.inventory()
        assert len(rows) == 2
        assert all(row["results"] == 1 and row["derived"] for row in rows)
        assert {row["num_nodes"] for row in rows} == {
            graph.num_nodes,
            other.graph.num_nodes,
        }
        assert store.clear() == 2
        assert store.inventory() == []

    def test_save_is_idempotent_and_skips_unchanged_entries(self, graph, tmp_path):
        store = SessionStore(tmp_path)
        session = DDSSession(graph)
        session.densest_subgraph("core-exact")
        first = store.save_session(session)
        assert first["results_saved"] == 1 and first["derived_saved"] == 1
        # Re-saving identical state rewrites nothing (no write churn on the
        # warm->serve->save loop of a store-backed batch).
        second = store.save_session(session)
        assert second["results_saved"] == 0
        assert second["results_unchanged"] == 1
        assert second["derived_saved"] == 0
        [graph_dir] = (tmp_path / "graphs").iterdir()
        assert len(list((graph_dir / "results").glob("*.json"))) == 1


class TestEviction:
    def _store_with_entries(self, tmp_path, datasets=("foodweb-tiny", "social-tiny")):
        """A store holding one exact + one approx result per dataset."""
        store = SessionStore(tmp_path)
        for name in datasets:
            session = DDSSession(load_dataset(name))
            session.densest_subgraph("core-approx")
            session.densest_subgraph("core-exact")
            store.save_session(session)
        return store

    def test_evict_requires_a_policy(self, tmp_path):
        with pytest.raises(StoreError, match="older_than_days and/or max_bytes"):
            SessionStore(tmp_path).evict()
        with pytest.raises(StoreError, match="older_than_days"):
            SessionStore(tmp_path).evict(older_than_days=-1)
        with pytest.raises(StoreError, match="max_bytes"):
            SessionStore(tmp_path).evict(max_bytes=-5)

    def test_age_sweep_removes_only_stale_entries(self, tmp_path):
        import os
        import time as time_module

        store = self._store_with_entries(tmp_path)
        entries = sorted((tmp_path / "graphs").glob("*/results/*.json"))
        assert len(entries) == 4
        now = time_module.time()
        stale = entries[:2]
        for path in stale:
            os.utime(path, (now - 10 * 86400, now - 10 * 86400))
        counters = store.evict(older_than_days=7, now=now)
        assert counters["results_evicted"] == 2
        assert counters["bytes_freed"] > 0
        remaining = sorted((tmp_path / "graphs").glob("*/results/*.json"))
        assert remaining == sorted(set(entries) - set(stale))
        # The surviving store is still fully loadable.
        session = DDSSession(load_dataset("foodweb-tiny"))
        counters = store.warm_session(session)
        assert counters["results_corrupt"] == 0

    def test_max_bytes_evicts_lru_first(self, tmp_path):
        import os
        import time as time_module

        store = self._store_with_entries(tmp_path)
        entries = sorted((tmp_path / "graphs").glob("*/results/*.json"))
        now = time_module.time()
        # Make one entry clearly the oldest.
        oldest = entries[0]
        os.utime(oldest, (now - 100, now - 100))
        total = sum(
            p.stat().st_size for p in (tmp_path / "graphs").rglob("*") if p.is_file()
        )
        counters = store.evict(max_bytes=total - 1, now=now)
        assert counters["results_evicted"] >= 1
        assert not oldest.exists()
        assert counters["bytes_remaining"] <= total - 1

    def test_max_bytes_zero_drops_whole_graphs(self, tmp_path):
        store = self._store_with_entries(tmp_path)
        counters = store.evict(max_bytes=0)
        assert counters["graphs_evicted"] == 2
        assert counters["bytes_remaining"] == 0
        assert store.inventory() == []
        # An evicted store warms nothing but never raises.
        session = DDSSession(load_dataset("foodweb-tiny"))
        assert store.warm_session(session)["results_loaded"] == 0

    def test_max_bytes_ties_break_deterministically_by_path(self, tmp_path):
        """Equal-mtime entries sweep in path order — eviction is reproducible.

        The LRU sweep sorts by ``(mtime, path)``; with every mtime forced
        equal, the path tie-break alone decides, so the same two
        lexicographically-first entries must go on every run regardless of
        filesystem enumeration order.
        """
        import os
        import time as time_module

        store = self._store_with_entries(tmp_path)
        entries = sorted((tmp_path / "graphs").glob("*/results/*.json"))
        assert len(entries) == 4
        now = time_module.time()
        stamp = now - 50
        for path in entries:
            os.utime(path, (stamp, stamp))
        total = sum(
            p.stat().st_size for p in (tmp_path / "graphs").rglob("*") if p.is_file()
        )
        budget = total - entries[0].stat().st_size - entries[1].stat().st_size
        counters = store.evict(max_bytes=budget, now=now)
        assert counters["results_evicted"] == 2
        assert not entries[0].exists()
        assert not entries[1].exists()
        assert entries[2].exists()
        assert entries[3].exists()

    def test_age_sweep_keeps_fresh_store_intact(self, tmp_path):
        store = self._store_with_entries(tmp_path)
        counters = store.evict(older_than_days=7)
        assert counters["results_evicted"] == 0
        assert counters["graphs_evicted"] == 0
        assert counters["skipped_locked"] == 0
        assert len(store.inventory()) == 2

    def test_age_sweep_skips_directories_whose_lock_is_held(self, tmp_path):
        """A directory a writer currently holds is skipped, never raced.

        ``flock`` locks belong to the open file description, so a second
        open of the lock file — even in the same process — contends for
        real: holding ``_locked`` here exercises exactly what a concurrent
        warmer's lock does to the sweep.
        """
        import os
        import time as time_module

        pytest.importorskip("fcntl")
        store = self._store_with_entries(tmp_path)
        entries = sorted((tmp_path / "graphs").glob("*/results/*.json"))
        now = time_module.time()
        for path in entries:
            os.utime(path, (now - 10 * 86400, now - 10 * 86400))
        held_dir, other_dir = sorted(
            path for path in (tmp_path / "graphs").iterdir() if path.is_dir()
        )
        with store._locked(held_dir):
            counters = store.evict(older_than_days=7, now=now)
        assert counters["skipped_locked"] == 1
        assert counters["results_evicted"] == 2  # the unlocked graph's
        assert len(list((held_dir / "results").glob("*.json"))) == 2
        assert list((other_dir / "results").glob("*.json")) == []
        # Lock released: the next sweep finishes the job.
        counters = store.evict(older_than_days=7, now=now)
        assert counters["skipped_locked"] == 0
        assert counters["results_evicted"] == 2

    def test_max_bytes_sweep_skips_locked_graphs_entirely(self, tmp_path):
        """Neither entry deletion nor the whole-graph drop touches a held dir."""
        pytest.importorskip("fcntl")
        store = self._store_with_entries(tmp_path)
        held_dir = sorted(
            path for path in (tmp_path / "graphs").iterdir() if path.is_dir()
        )[0]
        before = sorted(held_dir.rglob("*"))
        with store._locked(held_dir):
            counters = store.evict(max_bytes=0)
        assert counters["skipped_locked"] >= 1
        assert counters["graphs_evicted"] == 1  # only the unlocked graph
        assert sorted(held_dir.rglob("*")) == before
        assert len(store.inventory()) == 1
        # Released: the budget is now enforceable.
        counters = store.evict(max_bytes=0)
        assert counters["graphs_evicted"] == 1
        assert store.inventory() == []


class TestConcurrentWriters:
    def test_parallel_saves_leave_a_consistent_store(self, graph, tmp_path):
        """Two warmers racing on one graph dir must not corrupt anything."""
        import threading

        sessions = []
        for _ in range(4):
            session = DDSSession(graph.copy())
            session.densest_subgraph("core-exact")
            session.densest_subgraph("core-approx")
            sessions.append(session)
        store = SessionStore(tmp_path)
        errors = []

        def save(session):
            try:
                store.save_session(session)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=save, args=(s,)) for s in sessions]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.verify() == []
        [row] = store.inventory()
        assert row["results"] == 2
        fresh = DDSSession(graph.copy())
        counters = store.warm_session(fresh)
        assert counters["results_loaded"] == 2
        assert counters["results_corrupt"] == 0

    def test_lock_serialises_writers(self, graph, tmp_path):
        """The advisory lock really excludes a second writer while held."""
        fcntl = pytest.importorskip("fcntl")
        import multiprocessing

        store = SessionStore(tmp_path)
        session = DDSSession(graph)
        session.densest_subgraph("core-approx")
        store.save_session(session)
        [graph_dir] = (tmp_path / "graphs").iterdir()
        lock_path = graph_dir / ".lock"
        assert lock_path.exists()
        with store._locked(graph_dir):
            # A second process cannot take the lock while we hold it.
            def try_lock(path, queue):
                with open(path, "a+") as handle:
                    try:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                    except OSError:
                        queue.put("blocked")
                    else:
                        queue.put("acquired")

            queue = multiprocessing.Queue()
            process = multiprocessing.Process(target=try_lock, args=(lock_path, queue))
            process.start()
            process.join(timeout=10)
            assert queue.get(timeout=10) == "blocked"
        # Released: the same probe now succeeds.
        with open(lock_path, "a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class TestSessionSeedHooks:
    def test_seed_result_respects_disabled_cache(self, graph):
        donor = DDSSession(graph)
        donor.densest_subgraph("core-approx")
        [(method, config, cached)] = donor.cached_results()
        disabled = DDSSession(load_dataset("foodweb-tiny"), result_cache_size=0)
        assert disabled.seed_result(method, config, cached) is False

    def test_seed_derived_validates_degree_lengths(self, graph):
        from repro.exceptions import GraphError

        session = DDSSession(graph)
        with pytest.raises(GraphError, match="seeded out_degrees"):
            session.seed_derived(out_degrees=[1, 2, 3])

    def test_seed_derived_rejects_foreign_core_indices(self, graph):
        from repro.core.xycore import XYCore
        from repro.exceptions import GraphError

        session = DDSSession(graph)
        alien = XYCore(x=1, y=1, s_nodes=[graph.num_nodes + 5], t_nodes=[0])
        with pytest.raises(GraphError, match="different graph"):
            session.seed_derived(xy_cores=[alien])
        with pytest.raises(GraphError, match="different graph"):
            session.seed_derived(max_core=alien)

    def test_session_flow_config_is_independent_of_store(self, graph, tmp_path):
        # A store written under one solver warms sessions using another: the
        # cached *results* are solver-independent facts about the graph.
        store = SessionStore(tmp_path)
        donor = DDSSession(graph, flow=FlowConfig(solver="push-relabel"))
        donor.densest_subgraph("core-approx")
        store.save_session(donor)
        receiver = DDSSession(load_dataset("foodweb-tiny"))
        assert store.warm_session(receiver)["results_loaded"] == 1
