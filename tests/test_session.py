"""Tests for the session-oriented public API (:class:`repro.session.DDSSession`).

Covers the acceptance criteria of the session redesign:

* repeated queries hit the session result cache (counters exposed via
  ``cache_stats()`` and ``stats["result_cache_hit"]``);
* the session serves top-k and coarse→refine DC query sequences with
  **strictly fewer** ``networks_built`` than the equivalent sequence of
  one-shot ``densest_subgraph`` calls (regression-pinned);
* the legacy one-shot API remains a deprecation shim with identical results;
* ``"auto"`` method selection switches exactly at ``AUTO_EXACT_NODE_LIMIT``;
* invalid configurations fail fast with :class:`ConfigError`;
* a structurally mutated graph is refused instead of served stale answers.
"""

from __future__ import annotations

import json
import warnings

import pytest

import repro.core.api as api_module
from repro.core.api import densest_subgraph
from repro.core.config import ExactConfig
from repro.core.results import DDSResult
from repro.core.topk import top_k_densest
from repro.datasets.registry import load_dataset
from repro.exceptions import AlgorithmError, EmptyGraphError, GraphError, StoreError
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_bipartite_digraph, gnm_random_digraph
from repro.session import DDSSession


def _shim(*args, **kwargs):
    """Call the deprecated one-shot API with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return densest_subgraph(*args, **kwargs)


class TestSessionBasics:
    def test_requires_digraph(self):
        with pytest.raises(GraphError):
            DDSSession([("a", "b")])

    def test_empty_graph_rejected_at_query_time(self):
        session = DDSSession(DiGraph.from_edges([], nodes=[1, 2]))
        with pytest.raises(EmptyGraphError):
            session.densest_subgraph()
        with pytest.raises(EmptyGraphError):
            session.top_k(2)

    def test_unknown_method(self):
        session = DDSSession(complete_bipartite_digraph(2, 2))
        with pytest.raises(AlgorithmError, match="unknown method"):
            session.densest_subgraph("magic")

    def test_summary_and_cores_are_cached(self):
        session = DDSSession(gnm_random_digraph(20, 60, seed=3))
        assert session.summary() == session.summary()
        assert session.max_xy_core() == session.max_xy_core()
        assert session.xy_core(1, 1) == session.xy_core(1, 1)
        assert session.cache_stats()["xy_cores_cached"] == 2

    def test_returned_cores_are_defensive_copies(self):
        session = DDSSession(gnm_random_digraph(20, 60, seed=3))
        core = session.max_xy_core()
        assert core.s_nodes
        core.s_nodes.clear()  # must not poison the session cache
        assert session.max_xy_core().s_nodes
        sub_core = session.xy_core(1, 1)
        sub_core.t_nodes.clear()
        assert session.xy_core(1, 1).t_nodes

    def test_degree_arrays_cached_and_copied(self):
        graph = gnm_random_digraph(15, 40, seed=4)
        session = DDSSession(graph)
        degrees = session.out_degrees()
        degrees[0] = -99  # mutating the returned copy must not poison the cache
        assert session.out_degrees() == graph.out_degrees()
        assert session.in_degrees() == graph.in_degrees()

    def test_mutated_graph_is_refused(self):
        graph = complete_bipartite_digraph(2, 3)
        session = DDSSession(graph)
        session.densest_subgraph("core-approx")
        graph.add_edge("s0", "s1")
        with pytest.raises(GraphError, match="mutated"):
            session.densest_subgraph("core-approx")


class TestResultCache:
    def test_repeated_query_hits_cache(self):
        session = DDSSession(load_dataset("foodweb-tiny"))
        first = session.densest_subgraph("core-exact")
        built_after_first = session.cache_stats()["networks_built"]
        second = session.densest_subgraph("core-exact")

        assert first.stats["result_cache_hit"] is False
        assert second.stats["result_cache_hit"] is True
        assert session.cache_stats()["result_cache_hits"] == 1
        # The cached answer is identical and costs zero additional networks.
        assert second.density == first.density
        assert second.s_nodes == first.s_nodes and second.t_nodes == first.t_nodes
        assert session.cache_stats()["networks_built"] == built_after_first

    def test_distinct_configs_are_distinct_entries(self):
        session = DDSSession(load_dataset("foodweb-tiny"))
        session.densest_subgraph("dc-exact", tolerance=0.05)
        session.densest_subgraph("dc-exact", tolerance=0.01)
        assert session.cache_stats()["result_cache_hits"] == 0
        assert session.cache_stats()["result_cache_entries"] == 2

    def test_returned_results_are_defensive_copies(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        first = session.densest_subgraph("core-exact")
        first.s_nodes.clear()
        first.stats.clear()
        second = session.densest_subgraph("core-exact")
        assert second.s_nodes and second.stats["result_cache_hit"] is True

    def test_nested_stats_containers_are_copies_too(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        first = session.densest_subgraph("core-exact")
        assert first.stats["network_nodes"]
        first.stats["network_nodes"].clear()  # must not reach the cache
        second = session.densest_subgraph("core-exact")
        assert second.stats["result_cache_hit"] is True
        assert second.stats["network_nodes"]


class TestNetworkReuseRegressions:
    """The acceptance pins: sessions build strictly fewer networks."""

    def test_topk_after_densest_builds_strictly_fewer_networks(self):
        graph = load_dataset("foodweb-tiny")

        # One-shot sequence: a standalone query plus an independent top-k.
        one_shot = _shim(graph, method="dc-exact")
        one_shot_topk = top_k_densest(graph, 2, method="dc-exact")
        one_shot_networks = one_shot.stats["networks_built"] + sum(
            result.stats["networks_built"] for result in one_shot_topk
        )

        # Session: the top-k's first round is served from the result cache.
        session = DDSSession(graph)
        served = session.densest_subgraph("dc-exact")
        served_topk = session.top_k(2, method="dc-exact")
        session_networks = session.cache_stats()["networks_built"]

        assert session_networks < one_shot_networks
        # ... with identical answers.
        assert served.density == one_shot.density
        assert [r.density for r in served_topk] == [r.density for r in one_shot_topk]

    def test_coarse_refine_dc_probes_hit_session_cache(self):
        graph = load_dataset("foodweb-tiny")

        coarse_cfg = ExactConfig(tolerance=0.05)
        one_shot_networks = (
            _shim(graph, method="dc-exact", config=coarse_cfg).stats["networks_built"]
            + _shim(graph, method="dc-exact").stats["networks_built"]
        )

        session = DDSSession(graph)
        coarse = session.densest_subgraph("dc-exact", config=coarse_cfg)
        refined = session.densest_subgraph("dc-exact")
        session_networks = session.cache_stats()["networks_built"]

        assert session_networks < one_shot_networks
        assert session.cache_stats()["network_cache_hits"] > 0
        assert refined.stats["networks_reused"] > 0
        assert refined.density == pytest.approx(coarse.density, abs=0.05)

    def test_within_run_probe_reuse(self):
        # Even a single one-shot DC run reuses the coarse-stage network in
        # its refine stage (the ROADMAP open item).
        result = _shim(load_dataset("foodweb-tiny"), method="dc-exact")
        stats = result.stats
        assert stats["networks_reused"] >= 1
        assert stats["networks_built"] < stats["fixed_ratio_searches"]
        assert stats["networks_built"] + stats["networks_reused"] == stats["fixed_ratio_searches"]

    def test_per_query_cache_disable_is_honoured(self):
        from repro.core.config import FlowConfig

        session = DDSSession(load_dataset("foodweb-tiny"))
        cfg = ExactConfig(flow=FlowConfig(network_cache_size=0))
        result = session.densest_subgraph("dc-exact", config=cfg)
        # The query ran uncached: nothing deposited in the session cache and
        # no within-run probe reuse either.
        assert session.cache_stats()["network_cache_entries"] == 0
        assert result.stats["networks_reused"] == 0
        assert result.stats["networks_built"] == result.stats["fixed_ratio_searches"]

    def test_flow_exact_does_not_flood_session_network_cache(self):
        session = DDSSession(load_dataset("foodweb-tiny"))
        session.densest_subgraph("core-exact")
        entries_before = session.cache_stats()["network_cache_entries"]
        assert entries_before > 0
        # flow-exact's O(n^2) single-use networks run on a private cache, so
        # the session's reusable dc/core networks survive.
        session.densest_subgraph("flow-exact")
        assert session.cache_stats()["network_cache_entries"] == entries_before
        repeat = session.densest_subgraph("core-exact", tolerance=1e-7)
        assert repeat.stats["networks_reused"] > 0

    def test_per_query_cache_disable_covers_all_topk_rounds(self):
        from repro.core.config import FlowConfig

        session = DDSSession(load_dataset("foodweb-tiny"))
        cfg = ExactConfig(flow=FlowConfig(network_cache_size=0))
        results = session.top_k(3, method="dc-exact", config=cfg)
        assert len(results) >= 2
        for result in results:
            assert result.stats["networks_reused"] == 0
        assert session.cache_stats()["network_cache_entries"] == 0

    def test_network_observer_fires_on_cache_hits_too(self):
        from repro.core.fixed_ratio import maximize_fixed_ratio
        from repro.core.network_cache import NetworkCache
        from repro.core.subproblem import STSubproblem

        subproblem = STSubproblem.from_graph(gnm_random_digraph(10, 40, seed=5))
        cache = NetworkCache()
        sizes: list[tuple[int, int]] = []
        for _ in range(2):
            maximize_fixed_ratio(
                subproblem,
                1.0,
                lower=0.0,
                upper=10.0,
                tolerance=0.5,
                network_cache=cache,
                network_observer=lambda nodes, arcs: sizes.append((nodes, arcs)),
            )
        # One observation per search — the second search reused the cached
        # network but must still be observed.
        assert len(sizes) == 2
        assert sizes[0] == sizes[1]

    def test_subproblem_token_is_captured_at_construction(self):
        from repro.core.subproblem import STSubproblem

        graph = complete_bipartite_digraph(2, 3)
        subproblem = STSubproblem.from_graph(graph)
        token_before = subproblem.cache_token()
        graph.add_edge("t0", "s0")
        # The token must keep describing the state the edges were carved
        # from, not the mutated graph.
        assert subproblem.cache_token() == token_before
        assert STSubproblem.from_graph(graph).cache_token() != token_before

    def test_topk_rounds_do_not_pollute_session_network_cache(self):
        session = DDSSession(load_dataset("foodweb-tiny"))
        session.densest_subgraph("core-exact")
        entries_before = session.cache_stats()["network_cache_entries"]
        # Rounds >= 2 run on throwaway peeled copies; their networks must not
        # land in (and eventually evict) the session graph's cache.
        session.top_k(3, method="core-exact")
        assert session.cache_stats()["network_cache_entries"] == entries_before

    def test_fixed_ratio_coarse_refine_reuses_network(self):
        session = DDSSession(gnm_random_digraph(12, 50, seed=7))
        coarse = session.fixed_ratio(1.0, tolerance=0.2)
        refined = session.fixed_ratio(1.0, tolerance=1e-6)
        assert coarse.networks_built + coarse.networks_reused == 1
        assert refined.networks_built == 0 and refined.networks_reused == 1
        assert refined.upper - refined.lower <= coarse.upper - coarse.lower


class TestShimEquivalence:
    @pytest.mark.parametrize(
        "method", ["flow-exact", "dc-exact", "core-exact", "core-approx", "peel-approx"]
    )
    def test_shim_is_bit_identical_to_fresh_session(self, method):
        graph = load_dataset("foodweb-tiny")
        shim = _shim(graph, method=method)
        fresh = DDSSession(graph).densest_subgraph(method)
        assert shim.density == fresh.density  # bit-identical, not approx
        assert shim.s_nodes == fresh.s_nodes
        assert shim.t_nodes == fresh.t_nodes
        assert shim.stats == fresh.stats

    def test_shim_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="DDSSession"):
            densest_subgraph(complete_bipartite_digraph(2, 2), method="core-approx")

    def test_topk_shim_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="DDSSession.top_k"):
            top_k_densest(complete_bipartite_digraph(2, 2), 1, method="core-approx")

    def test_legacy_max_nodes_kwarg_still_works(self):
        graph = gnm_random_digraph(8, 20, seed=2)
        result = _shim(graph, method="brute-force", max_nodes=10)
        assert result.is_exact and result.method == "brute-force"

    def test_topk_delegate_matches_session(self):
        graph = gnm_random_digraph(18, 70, seed=11)
        legacy = top_k_densest(graph, 3, method="core-approx")
        session = DDSSession(graph).top_k(3, method="core-approx")
        assert [r.density for r in legacy] == [r.density for r in session]
        assert [sorted(map(str, r.s_nodes)) for r in legacy] == [
            sorted(map(str, r.s_nodes)) for r in session
        ]


class TestAutoSelection:
    def test_boundary_at_limit(self, monkeypatch):
        graph = gnm_random_digraph(10, 30, seed=1)
        # Exactly at the limit: exact method.
        monkeypatch.setattr(api_module, "AUTO_EXACT_NODE_LIMIT", graph.num_nodes)
        at_limit = DDSSession(graph).densest_subgraph("auto")
        assert at_limit.stats["auto_selected"] == "core-exact"
        assert at_limit.is_exact
        # One node above the limit: approximate method.
        monkeypatch.setattr(api_module, "AUTO_EXACT_NODE_LIMIT", graph.num_nodes - 1)
        above_limit = DDSSession(graph).densest_subgraph("auto")
        assert above_limit.stats["auto_selected"] == "core-approx"
        assert not above_limit.is_exact

    def test_explicit_method_has_no_auto_stamp(self):
        result = DDSSession(complete_bipartite_digraph(2, 2)).densest_subgraph("core-approx")
        assert "auto_selected" not in result.stats


class TestFlowSolverIgnored:
    def test_records_method_and_warns_once(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        with pytest.warns(UserWarning, match="performs no min-cuts"):
            result = session.densest_subgraph("core-approx", flow_solver="push-relabel")
        assert result.stats["flow_solver_ignored"] == {
            "flow_solver": "push-relabel",
            "method": "core-approx",
        }
        # Second occurrence on the same session: recorded, but not re-warned.
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            repeat = session.densest_subgraph("core-approx", flow_solver="push-relabel")
        assert repeat.stats["flow_solver_ignored"]["method"] == "core-approx"

    def test_flow_backed_method_keeps_solver(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        result = session.densest_subgraph("dc-exact", flow_solver="push-relabel")
        assert result.stats["flow_solver"] == "push-relabel"
        assert "flow_solver_ignored" not in result.stats


class TestToJson:
    def test_stable_schema_roundtrip(self):
        session = DDSSession(load_dataset("foodweb-tiny"))
        result = session.densest_subgraph("core-exact")
        document = json.loads(result.to_json())
        assert document["schema_version"] == 2
        for key in (
            "method",
            "density",
            "edge_count",
            "s_size",
            "t_size",
            "s_nodes",
            "t_nodes",
            "is_exact",
            "approximation_ratio",
            "stats",
        ):
            assert key in document
        # Cache-hit stats ride along in the stats block.
        assert document["stats"]["result_cache_hit"] is False
        assert "networks_built" in document["stats"]
        assert "networks_reused" in document["stats"]

    def test_non_json_labels_are_stringified(self):
        graph = DiGraph.from_edges([((1, "a"), (2, "b"))])
        result = DDSSession(graph).densest_subgraph("core-approx")
        document = json.loads(result.to_json())
        assert document["s_nodes"] == [str((1, "a"))]

    def test_from_json_roundtrip_is_lossless(self):
        # The schema-2 contract: to_dict emits JSON-native values only, so a
        # dump/parse/rebuild cycle reproduces the result exactly (the
        # invariant the persistent session store rests on).
        session = DDSSession(load_dataset("foodweb-tiny"))
        result = session.densest_subgraph("core-exact")
        rebuilt = DDSResult.from_json(result.to_json())
        assert rebuilt == result

    def test_from_dict_rejects_unknown_schema_and_corruption(self):
        result = DDSSession(load_dataset("foodweb-tiny")).densest_subgraph("core-approx")
        document = result.to_dict()
        bad_version = dict(document, schema_version=99)
        with pytest.raises(StoreError, match="schema_version"):
            DDSResult.from_dict(bad_version)
        inconsistent = dict(document, s_size=document["s_size"] + 1)
        with pytest.raises(StoreError, match="inconsistent"):
            DDSResult.from_dict(inconsistent)
        missing = dict(document)
        del missing["s_size"]
        with pytest.raises(StoreError, match="malformed"):
            DDSResult.from_dict(missing)
        with pytest.raises(StoreError):
            DDSResult.from_json("{not json")
