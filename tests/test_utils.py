"""Tests for the shared utility helpers."""

from __future__ import annotations

import random
import time

import pytest

from repro.exceptions import AlgorithmError
from repro.utils.rng import make_rng
from repro.utils.timer import Timer, time_call, timed
from repro.utils.validation import (
    require,
    require_non_negative_int,
    require_positive,
    require_positive_int,
    require_probability,
)


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            pass
        assert timer.elapsed >= 0.01
        assert len(timer.laps) == 2

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.laps == []

    def test_timed_records_into_sink(self):
        sink: dict[str, float] = {}
        with timed("block", sink):
            pass
        assert "block" in sink
        assert sink["block"] >= 0.0

    def test_time_call(self):
        value, seconds = time_call(lambda: 41 + 1)
        assert value == 42
        assert seconds >= 0.0


class TestRng:
    def test_seed_reproducibility(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_existing_rng_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_none_gives_rng(self):
        assert isinstance(make_rng(None), random.Random)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(AlgorithmError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        assert require_positive(2.5, "x") == 2.5
        with pytest.raises(AlgorithmError):
            require_positive(0, "x")
        with pytest.raises(AlgorithmError):
            require_positive("nope", "x")

    def test_require_positive_int(self):
        assert require_positive_int(3, "x") == 3
        with pytest.raises(AlgorithmError):
            require_positive_int(0, "x")
        with pytest.raises(AlgorithmError):
            require_positive_int(2.5, "x")
        with pytest.raises(AlgorithmError):
            require_positive_int(True, "x")

    def test_require_non_negative_int(self):
        assert require_non_negative_int(0, "x") == 0
        with pytest.raises(AlgorithmError):
            require_non_negative_int(-1, "x")

    def test_require_probability(self):
        assert require_probability(0.5, "p") == 0.5
        assert require_probability(0, "p") == 0.0
        with pytest.raises(AlgorithmError):
            require_probability(1.5, "p")
