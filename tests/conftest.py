"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_bipartite_digraph,
    gnm_random_digraph,
    planted_dds_digraph,
)


@pytest.fixture
def triangle_cycle() -> DiGraph:
    """A directed 3-cycle: every vertex has out-degree 1 and in-degree 1."""
    return DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def two_by_three() -> DiGraph:
    """Complete bipartite 2 -> 3 digraph; the DDS is the whole graph (density sqrt(6))."""
    return complete_bipartite_digraph(2, 3)


@pytest.fixture
def planted_graph() -> tuple[DiGraph, list[int], list[int]]:
    """Sparse background plus a planted 4x5 dense block (known DDS location)."""
    return planted_dds_digraph(
        n_background=30, background_degree=1.5, s_size=4, t_size=5, p_dense=1.0, seed=5
    )


@pytest.fixture
def small_random_graph() -> DiGraph:
    """A fixed random digraph small enough for the exact algorithms."""
    return gnm_random_digraph(14, 45, seed=9)


def random_digraph(n: int, m: int, seed: int) -> DiGraph:
    """Random simple digraph with exactly min(m, n(n-1)) edges (test helper)."""
    return gnm_random_digraph(n, m, seed=seed)


def random_edge_list(n: int, m: int, rng: random.Random) -> list[tuple[int, int]]:
    """Random (possibly duplicated) edge list used by hypothesis-free randomised tests."""
    edges = []
    for _ in range(m):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            edges.append((u, v))
    return edges
