"""Tests for the top-level densest_subgraph() API and the result objects."""

from __future__ import annotations

import math

import pytest

from repro.core.api import AUTO_EXACT_NODE_LIMIT, available_methods, densest_subgraph
from repro.core.results import DDSResult
from repro.exceptions import AlgorithmError, EmptyGraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_bipartite_digraph, gnm_random_digraph


class TestDispatch:
    def test_available_methods(self):
        methods = available_methods()
        assert "core-exact" in methods
        assert "peel-approx" in methods
        assert "brute-force" in methods

    @pytest.mark.parametrize("method", ["flow-exact", "dc-exact", "core-exact", "brute-force"])
    def test_exact_methods_agree(self, method):
        g = complete_bipartite_digraph(2, 4)
        result = densest_subgraph(g, method=method)
        assert result.density == pytest.approx(math.sqrt(8))
        assert result.is_exact

    @pytest.mark.parametrize("method", ["core-approx", "inc-approx", "peel-approx"])
    def test_approx_methods_return_results(self, method):
        g = gnm_random_digraph(30, 120, seed=5)
        result = densest_subgraph(g, method=method)
        assert result.density > 0
        assert not result.is_exact

    def test_unknown_method(self):
        g = complete_bipartite_digraph(2, 2)
        with pytest.raises(AlgorithmError, match="unknown method"):
            densest_subgraph(g, method="magic")

    def test_empty_graph_rejected(self):
        with pytest.raises(EmptyGraphError):
            densest_subgraph(DiGraph.from_edges([], nodes=[1, 2]))

    def test_auto_small_graph_uses_exact(self):
        g = complete_bipartite_digraph(2, 3)
        result = densest_subgraph(g, method="auto")
        assert result.stats["auto_selected"] == "core-exact"
        assert result.is_exact

    def test_auto_large_graph_uses_approx(self, monkeypatch):
        import repro.core.api as api_module

        monkeypatch.setattr(api_module, "AUTO_EXACT_NODE_LIMIT", 5)
        g = gnm_random_digraph(20, 60, seed=2)
        result = densest_subgraph(g, method="auto")
        assert result.stats["auto_selected"] == "core-approx"

    def test_kwargs_forwarded(self):
        g = complete_bipartite_digraph(3, 3)
        result = densest_subgraph(g, method="peel-approx", epsilon=0.25)
        assert result.stats["epsilon"] == 0.25

    def test_auto_limit_is_reasonable(self):
        assert 50 <= AUTO_EXACT_NODE_LIMIT <= 10_000


class TestDDSResult:
    def test_properties(self):
        result = DDSResult(
            s_nodes=["a", "b"],
            t_nodes=["x", "y", "z"],
            density=1.5,
            edge_count=6,
            method="test",
            is_exact=False,
            approximation_ratio=2.0,
        )
        assert result.s_size == 2
        assert result.t_size == 3
        assert result.ratio == pytest.approx(2 / 3)
        summary = result.summary()
        assert summary["method"] == "test"
        assert summary["|S|"] == 2

    def test_ratio_with_empty_t(self):
        result = DDSResult([], [], 0.0, 0, "test", False)
        assert result.ratio == 0.0
