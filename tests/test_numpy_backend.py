"""The vectorised numpy flow backend: zero-copy views, auto policy, parity.

The cross-solver property suite (``tests/test_flow_property.py``) already
covers the backend's max-flow values and warm/cold equivalence because it
parametrises over every *registered* solver; this module pins the pieces
unique to the vectorised backend:

* **zero-copy** — the solver state really is a view over the network's CSR
  buffers: writes through the numpy view are visible via
  ``FlowNetwork.arc_capacities`` (and vice versa), and a solve needs no
  write-back;
* **bit-identical cuts** — ``min_cut_source_side`` matches the scalar
  solvers node-for-node, warm and cold;
* **the ``auto`` policy** — per-network backend selection at the arc
  threshold, the ``backend_selections`` counter, graceful degradation when
  the vector backend is unregistered, and config/CLI acceptance of
  ``"auto"``;
* **height reuse** — warm solves adopt stashed labels (``height_reuses``).

Everything here is skipped wholesale when numpy is not importable — exactly
the environments in which the registry does not list the backend.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.config import ExactConfig, FlowConfig
from repro.core.flow_network import build_decision_network
from repro.core.subproblem import STSubproblem
from repro.exceptions import ConfigError, FlowError
from repro.flow.engine import FlowEngine
from repro.flow.network import FlowNetwork
from repro.flow.numpy_backend import NumpyPushRelabelSolver
from repro.flow.registry import (
    AUTO_ARC_THRESHOLD,
    AUTO_SOLVER,
    VECTOR_SOLVER,
    available_flow_solvers,
    flow_solver_choices,
    has_vector_backend,
    resolve_auto_solver,
)
from repro.graph.generators import gnm_random_digraph
from repro.session import DDSSession


def _random_decision_network(seed: int, nodes: int = 12, edges: int = 40):
    graph = gnm_random_digraph(nodes, edges, seed=seed)
    subproblem = STSubproblem.from_graph(graph)
    return build_decision_network(subproblem, 1.0, 1.5)


class TestRegistration:
    def test_vector_backend_is_registered_with_numpy_present(self):
        assert has_vector_backend()
        assert VECTOR_SOLVER in available_flow_solvers()

    def test_auto_is_a_choice_but_not_a_registry_entry(self):
        assert AUTO_SOLVER in flow_solver_choices()
        assert AUTO_SOLVER not in available_flow_solvers()


class TestZeroCopyViews:
    def test_view_writes_are_visible_through_the_network(self):
        network = FlowNetwork(3)
        first = network.add_edge(0, 1, 4.0)
        network.add_edge(1, 2, 2.0)
        _, _, _, caps, _, _ = network.numpy_csr()
        caps[first] = 1.25
        assert network.arc_capacities[first] == 1.25
        # ... and network-side writes are visible through the view.
        network.reset_flow()
        assert caps[first] == 4.0

    def test_solver_mutates_residual_state_in_place(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 3.0)
        arc = network.add_edge(1, 2, 2.0)
        solver = NumpyPushRelabelSolver(network, 0, 2)
        assert solver.max_flow() == pytest.approx(2.0)
        # No write-back step: the canonical capacities already hold the
        # residual state (flow of 2 on arc 1 -> 2).
        assert network.arc_flow(arc) == pytest.approx(2.0)

    def test_views_cached_per_topology_and_invalidated_on_growth(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 1.0)
        assert network.numpy_csr()[3] is network.numpy_csr()[3]
        # Growing the topology drops the cached views; the fresh ones cover
        # the new arcs.  (No caller holds the old views here — a held view
        # pins the buffer, see the test below.)
        network.add_edge(1, 0, 1.0)
        assert len(network.numpy_csr()[3]) == 4

    def test_held_view_blocks_topology_growth(self):
        network = FlowNetwork(2)
        network.add_edge(0, 1, 1.0)
        caps_view = network.numpy_csr()[3]
        # A live zero-copy view pins the underlying buffer: growing the
        # network mid-solve is a caller error and fails loudly.
        with pytest.raises(BufferError):
            network.add_edge(1, 0, 1.0)
        # The refused append must be all-or-nothing: the parallel arc
        # arrays stay aligned, and after the view is released the next
        # edge gets the even index the twin-pairing contract requires.
        assert network.num_arcs == 2
        del caps_view
        arc = network.add_edge(1, 0, 1.0)
        assert arc == 2 and arc % 2 == 0
        assert network.num_arcs == 4
        assert network.arc_flow(arc) == 0.0


class TestTrailingArclessNodes:
    def test_conservation_with_trailing_arcless_node(self):
        """The last non-empty CSR segment must not be truncated by reduceat.

        Node 3 has no arcs, so its segment starts at ``m`` — the boundary
        case where clipped reduceat indices would silently drop the final
        arc position from node 2's per-node reductions, breaking flow
        conservation in the residual state.
        """
        network = FlowNetwork(4)
        network.add_edge(0, 2, 5.0)
        network.add_edge(2, 1, 2.0)
        network.add_edge(2, 1, 2.0)
        solver = NumpyPushRelabelSolver(network, 0, 1)
        assert solver.max_flow() == pytest.approx(4.0)
        # The residual state encodes the full flow (conservation holds) ...
        assert network.flow_value(0) == pytest.approx(4.0)
        # ... so a warm re-solve reproduces the value instead of losing it.
        warm = NumpyPushRelabelSolver(network, 0, 1, warm_start=True)
        assert warm.max_flow() == pytest.approx(4.0)
        # The 2+2 arcs into the sink are the cut; the arc-less node 3 is
        # unreachable, so the canonical source side is exactly {0, 2}.
        assert warm.min_cut_source_side() == [0, 2]

    def test_return_excess_with_trailing_arcless_node(self):
        network = FlowNetwork(4)
        network.add_edge(0, 2, 5.0)
        downstream = network.add_edge(2, 1, 4.0)
        engine = FlowEngine(VECTOR_SOLVER)
        value, _ = engine.min_cut(network, 0, 1)
        assert value == pytest.approx(4.0)
        # Clamp the downstream arc: its tail (node 2) is left holding the
        # overflow, which the walk cancels back along 0 -> 2.
        overflow = network.set_capacity_preserving_flow(downstream, 1.0)
        assert overflow == pytest.approx(3.0)
        network.return_excess([(2, overflow)], source=0)
        assert network.flow_value(0) == pytest.approx(1.0)


class TestBitIdenticalCuts:
    @pytest.mark.parametrize("seed", range(10))
    def test_cold_cut_matches_dinic(self, seed):
        reference = _random_decision_network(seed)
        value_ref, solver_ref = FlowEngine("dinic").min_cut(
            reference.network, reference.source, reference.sink
        )
        vector = _random_decision_network(seed)
        value_vec, solver_vec = FlowEngine(VECTOR_SOLVER).min_cut(
            vector.network, vector.source, vector.sink
        )
        assert value_vec == pytest.approx(value_ref, abs=1e-9)
        assert solver_vec.min_cut_source_side() == solver_ref.min_cut_source_side()

    @pytest.mark.parametrize("seed", range(6))
    def test_warm_retune_chain_cut_matches_dinic(self, seed):
        rng = random.Random(seed)
        schedule = [(rng.choice([0.5, 1.0, 2.0]), rng.uniform(0.0, 3.0)) for _ in range(6)]
        nets = {name: _random_decision_network(seed) for name in ("dinic", VECTOR_SOLVER)}
        engines = {name: FlowEngine(name) for name in nets}
        first = True
        for ratio, guess in schedule:
            sides = {}
            for name, decision in nets.items():
                decision.retune(ratio, guess, warm_start=not first)
                _, solver = engines[name].min_cut(
                    decision.network, decision.source, decision.sink, warm_start=not first
                )
                sides[name] = solver.min_cut_source_side()
            assert sides[VECTOR_SOLVER] == sides["dinic"], (seed, ratio, guess)
            first = False


class TestHeightReuse:
    def test_warm_solves_adopt_stashed_heights(self):
        decision = _random_decision_network(3)
        engine = FlowEngine(VECTOR_SOLVER)
        engine.min_cut(decision.network, decision.source, decision.sink)
        decision.retune(1.0, 2.0, warm_start=True)
        _, solver = engine.min_cut(
            decision.network, decision.source, decision.sink, warm_start=True
        )
        assert solver.height_reused
        assert engine.height_reuses == 1


class TestAutoPolicy:
    def test_resolve_below_and_above_threshold(self):
        name_small, _ = resolve_auto_solver(AUTO_ARC_THRESHOLD - 1)
        name_large, _ = resolve_auto_solver(AUTO_ARC_THRESHOLD)
        assert name_small == "dinic"
        assert name_large == VECTOR_SOLVER

    def test_resolve_falls_back_without_vector_backend(self, monkeypatch):
        import repro.flow.registry as registry

        solvers = {k: v for k, v in registry._SOLVERS.items() if k != VECTOR_SOLVER}
        monkeypatch.setattr(registry, "_SOLVERS", solvers)
        assert not registry.has_vector_backend()
        name, _ = registry.resolve_auto_solver(AUTO_ARC_THRESHOLD * 10)
        assert name == "dinic"
        assert VECTOR_SOLVER not in registry.available_flow_solvers()
        assert AUTO_SOLVER in registry.flow_solver_choices()

    def test_engine_counts_backend_selections(self):
        decision = _random_decision_network(1)  # far below the threshold
        engine = FlowEngine(AUTO_SOLVER)
        assert engine.warm_capable
        engine.min_cut(decision.network, decision.source, decision.sink)
        assert engine.backend_selections == 1
        assert engine.auto_backend_choices == {"dinic": 1}
        # A concrete-solver engine never records selections.
        plain = FlowEngine("dinic")
        fresh = _random_decision_network(1)
        plain.min_cut(fresh.network, fresh.source, fresh.sink)
        assert plain.backend_selections == 0
        assert plain.auto_backend_choices == {}

    def test_config_accepts_auto_and_rejects_unknown(self):
        config = FlowConfig(solver=AUTO_SOLVER)
        assert config.solver == AUTO_SOLVER
        assert ExactConfig(flow="auto").flow.solver == AUTO_SOLVER
        with pytest.raises((FlowError, ConfigError)):
            FlowConfig(solver="no-such-backend")

    def test_session_auto_matches_dinic_and_reports_counters(self):
        graph = gnm_random_digraph(16, 60, seed=7)
        auto = DDSSession(graph.copy(), flow=FlowConfig(solver=AUTO_SOLVER))
        dinic = DDSSession(graph.copy(), flow=FlowConfig(solver="dinic"))
        result_auto = auto.densest_subgraph("dc-exact")
        result_dinic = dinic.densest_subgraph("dc-exact")
        assert result_auto.density == result_dinic.density
        assert sorted(result_auto.s_nodes) == sorted(result_dinic.s_nodes)
        assert sorted(result_auto.t_nodes) == sorted(result_dinic.t_nodes)
        stats = auto.cache_stats()
        assert stats["backend_selections"] == stats["flow_calls"] > 0
        assert sum(stats["auto_backends"].values()) == stats["backend_selections"]
        assert result_auto.stats["backend_selections"] > 0
        # The concrete-solver session reports zero selections and no map.
        assert dinic.cache_stats()["backend_selections"] == 0
        assert "auto_backends" not in dinic.cache_stats()


class TestBatchLanes:
    def test_executor_lanes_on_the_vector_backend_match_dinic(self):
        from repro.datasets.registry import load_dataset
        from repro.service import BatchExecutor, payload_answer, plan_batch

        queries = [
            {"query": "densest", "method": "dc-exact", "dataset": "foodweb-tiny"},
            {"query": "densest", "method": "dc-exact", "dataset": "social-tiny"},
            {"query": "fixed-ratio", "ratio": 1.0, "dataset": "foodweb-tiny"},
        ]
        def strip_solver(payload):
            """Drop the only field that legitimately differs between lanes."""
            if isinstance(payload, dict):
                return {k: v for k, v in payload.items() if k != "flow_solver"}
            return payload

        answers = {}
        for solver in ("dinic", VECTOR_SOLVER):
            plan = plan_batch(queries, default_graph_key="foodweb-tiny")
            executor = BatchExecutor(
                load_dataset, flow=FlowConfig(solver=solver), max_workers=2
            )
            report = executor.execute(plan)
            answers[solver] = [
                strip_solver(payload_answer(p)) for p in report.results_in_input_order()
            ]
        assert answers[VECTOR_SOLVER] == answers["dinic"]
