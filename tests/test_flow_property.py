"""Cross-solver property tests for the flow engine.

Every registered solver must agree on the max-flow value of randomly
generated networks with mixed unit / float / infinite capacities, and the
min-cut certificate each solver extracts must certify the value: the total
original capacity crossing from the source side to the sink side equals the
flow (max-flow = min-cut).  Three independent implementations agreeing on
~50 seeded random instances is a strong correctness signal for all of them.

The warm/cold equivalence class extends the same idea to warm starts: on
random *decision* networks (the DAGs the DDS reduction produces), a chain of
warm-start retunes and solves must reproduce, guess for guess, the cut
values and extracted pairs of cold rebuild-and-solve runs — for every
registered solver, including the ones that silently fall back to cold.

Because every class parametrises over ``available_flow_solvers()``, the
vectorised ``numpy-push-relabel`` backend is covered automatically exactly
when numpy is importable (the registry lists it only then) — including by
the hypothesis-driven :class:`TestHypothesisCrossSolver`, which searches the
network space adversarially instead of sampling it from fixed seeds.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.network import INFINITY, FlowNetwork
from repro.flow.registry import available_flow_solvers, get_solver_class

NUM_SEEDED_NETWORKS = 50
SOLVER_NAMES = available_flow_solvers()


def _mixed_capacity_network(seed: int) -> FlowNetwork:
    """A random network mixing unit, float, and infinite capacities.

    Node 0 is the source and node ``n - 1`` the sink.  Infinite capacities
    are only placed on arcs between interior nodes, mirroring the DDS
    decision networks (where only node-splitting arcs are uncuttable), so
    the max flow stays finite.
    """
    rng = random.Random(seed)
    n = rng.randint(6, 12)
    m = rng.randint(2 * n, 4 * n)
    network = FlowNetwork(n)
    for _ in range(m):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        kind = rng.random()
        interior = u not in (0, n - 1) and v not in (0, n - 1)
        if kind < 0.2 and interior:
            capacity = INFINITY
        elif kind < 0.6:
            capacity = float(rng.randint(1, 4))  # unit-ish integer capacity
        else:
            capacity = rng.uniform(0.1, 10.0)
        network.add_edge(u, v, capacity)
    return network


def _crossing_capacity(network: FlowNetwork, source_side: list[int]) -> float:
    side = set(source_side)
    return sum(
        arc.capacity
        for arc in network.arcs()
        if arc.source in side and arc.target not in side
    )


class TestRegistry:
    def test_three_builtin_solvers_registered(self):
        assert {"dinic", "push-relabel", "edmonds-karp"} <= set(SOLVER_NAMES)

    def test_unknown_solver_rejected(self):
        from repro.exceptions import FlowError

        with pytest.raises(FlowError):
            get_solver_class("no-such-solver")

    def test_register_and_unregister(self):
        from repro.flow.registry import register_solver, unregister_solver

        class Fake:
            def __init__(self, network, source, sink):
                pass

            def max_flow(self):
                return 0.0

            def min_cut_source_side(self):
                return [0]

        register_solver("fake", Fake)
        try:
            assert get_solver_class("fake") is Fake
        finally:
            unregister_solver("fake")
        assert "fake" not in available_flow_solvers()

    def test_register_rejects_incomplete_class(self):
        from repro.exceptions import FlowError
        from repro.flow.registry import register_solver

        class NotASolver:
            pass

        with pytest.raises(FlowError):
            register_solver("bad", NotASolver)


class TestCrossSolverAgreement:
    @pytest.mark.parametrize("seed", range(NUM_SEEDED_NETWORKS))
    def test_all_solvers_agree_and_certify(self, seed):
        n = _mixed_capacity_network(seed).num_nodes
        source, sink = 0, n - 1
        values: dict[str, float] = {}
        for name in SOLVER_NAMES:
            network = _mixed_capacity_network(seed)
            solver = get_solver_class(name)(network, source, sink)
            flow = solver.max_flow()
            values[name] = flow
            # The min-cut source side certifies the flow value.
            side = solver.min_cut_source_side()
            assert source in side
            assert sink not in side
            assert _crossing_capacity(network, side) == pytest.approx(flow, abs=1e-6)
            # Instrumentation: the counter is maintained by every solver.
            assert solver.arcs_pushed >= 0
        reference = values[SOLVER_NAMES[0]]
        for name, value in values.items():
            assert value == pytest.approx(reference, abs=1e-6), (
                f"{name} disagrees with {SOLVER_NAMES[0]} on seed {seed}"
            )


@st.composite
def _network_description(draw):
    """A hypothesis-built network: node count plus an arbitrary arc list.

    Capacities mix integers, awkward floats, and (on interior arcs only,
    keeping the max flow finite) ``INFINITY`` — the same regimes the seeded
    generator covers, but with hypothesis free to shrink and to probe
    corners such as parallel arcs, zero capacities, and dangling nodes.
    """
    n = draw(st.integers(min_value=2, max_value=10))
    arcs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.one_of(
                    st.integers(min_value=0, max_value=6).map(float),
                    st.floats(min_value=0.0, max_value=8.0, allow_nan=False, width=32),
                    st.just(INFINITY),
                ),
            ),
            max_size=30,
        )
    )
    return n, arcs


def _build_from_description(description) -> FlowNetwork:
    n, arcs = description
    network = FlowNetwork(n)
    for u, v, capacity in arcs:
        if u == v:
            continue
        if capacity == INFINITY and (u in (0, n - 1) or v in (0, n - 1)):
            capacity = 4.0  # keep the max flow finite, like the seeded generator
        network.add_edge(u, v, capacity)
    return network


class TestHypothesisCrossSolver:
    """Property: every registered solver agrees on hypothesis-found networks."""

    @settings(max_examples=60, deadline=None)
    @given(description=_network_description())
    def test_all_solvers_agree_and_certify(self, description):
        n = description[0]
        source, sink = 0, n - 1
        values = {}
        sides = {}
        for name in SOLVER_NAMES:
            network = _build_from_description(description)
            solver = get_solver_class(name)(network, source, sink)
            values[name] = solver.max_flow()
            side = solver.min_cut_source_side()
            sides[name] = side
            assert source in side
            assert sink not in side
            assert _crossing_capacity(network, side) == pytest.approx(
                values[name], abs=1e-6
            )
        reference = values[SOLVER_NAMES[0]]
        for name, value in values.items():
            assert value == pytest.approx(reference, abs=1e-6), name
        # The canonical cut (residual reachability) is a max-flow invariant:
        # every solver must produce the same source side, node for node.
        for name, side in sides.items():
            assert side == sides[SOLVER_NAMES[0]], name


class TestWarmColdEquivalence:
    """Warm-start chains match cold runs on random decision networks."""

    @pytest.mark.parametrize("solver_name", SOLVER_NAMES)
    @pytest.mark.parametrize("seed", range(12))
    def test_warm_chain_matches_cold_chain(self, solver_name, seed):
        from repro.core.flow_network import build_decision_network
        from repro.core.subproblem import STSubproblem
        from repro.flow.engine import FlowEngine
        from repro.graph.generators import gnm_random_digraph

        rng = random.Random(1000 + seed)
        graph = gnm_random_digraph(rng.randint(6, 12), rng.randint(15, 45), seed=seed)
        subproblem = STSubproblem.from_graph(graph)
        schedule = [
            (rng.choice([0.5, 1.0, 2.0, 3.0]), rng.uniform(0.0, 4.0)) for _ in range(8)
        ]

        warm = build_decision_network(subproblem, *schedule[0])
        engine = FlowEngine(solver_name)
        first = True
        for ratio, guess in schedule:
            warm.retune(ratio, guess, warm_start=not first and engine.warm_capable)
            cut_warm, solver_warm = engine.min_cut(
                warm.network, warm.source, warm.sink, warm_start=not first
            )
            cold = build_decision_network(subproblem, ratio, guess)
            cut_cold, solver_cold = FlowEngine(solver_name).min_cut(
                cold.network, cold.source, cold.sink
            )
            assert cut_warm == pytest.approx(cut_cold, abs=1e-7), (solver_name, seed, ratio, guess)
            assert warm.extract_pair(solver_warm.min_cut_source_side()) == cold.extract_pair(
                solver_cold.min_cut_source_side()
            ), (solver_name, seed, ratio, guess)
            first = False
        # Warm-capable solvers actually warm started; the reference solver
        # fell back cold (and said so) without disturbing the answers.
        if engine.warm_capable:
            assert engine.warm_starts_used == len(schedule) - 1
        else:
            assert engine.warm_starts_used == 0
            assert engine.warm_start_fallbacks == len(schedule) - 1
