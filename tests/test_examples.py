"""Smoke tests that run every example script end-to-end."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert "rating_fraud.py" in names
    assert "hub_authority_roles.py" in names
    assert "scalability_study.py" in names
    assert len(names) >= 4


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.name)
def test_example_runs_cleanly(script, capsys, monkeypatch):
    """Every example must run as __main__ without raising and produce output."""
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_quickstart_reports_influencer_block(capsys, monkeypatch):
    script = EXAMPLES_DIR / "quickstart.py"
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert "influencer_a" in out
    assert "core-exact" in out
