"""Batched block-diagonal solve: stacking, bit-identity, counters, advisory.

The batched path must be *observationally identical* to the sequential one:
per member network, the same canonical min-cut source side, the same
Dinkelbach bracket evolution (hence the same ``flow_calls``), and the same
warm/cold accounting — only the wall-clock and the push attribution change.
The hypothesis suite here pins exactly that, member for member, against
:func:`~repro.core.fixed_ratio.maximize_fixed_ratio`; the solo-solve class
pins :class:`~repro.flow.batch.BatchedFlowNetwork` against per-network
solves at the engine level, including the per-owner ``arcs_pushed`` split.

Batching only engages when each member sits below the auto arc threshold
while the family clears it in aggregate, so most tests shrink
``repro.flow.registry.AUTO_ARC_THRESHOLD`` to one more than the member arc
count (restored in ``finally``), which makes any family of >= 2 members
eligible regardless of graph size.

The advisory class covers the small-workload regression itself: forcing
``numpy-push-relabel`` onto below-threshold networks is the one recorded
perf bug (see ``BENCH_flow.json``), and the session now surfaces it as a
``backend_mismatch`` stats entry plus a once-per-session ``UserWarning``.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import ExactConfig, FlowConfig
from repro.core.density import global_density_upper_bound
from repro.core.exact_dc import dc_exact
from repro.core.exact_flow import flow_exact
from repro.core.fixed_ratio import maximize_fixed_ratio, maximize_fixed_ratio_batch
from repro.core.flow_network import build_decision_network, decision_network_arc_count
from repro.core.network_cache import NetworkCache
from repro.core.subproblem import STSubproblem
from repro.exceptions import AlgorithmError, ConfigError, FlowError
from repro.flow import registry
from repro.flow.engine import FlowEngine
from repro.flow.network import FlowNetwork
from repro.flow.registry import AUTO_SOLVER, VECTOR_SOLVER, has_vector_backend
from repro.graph.generators import gnm_random_digraph
from repro.session import DDSSession

needs_numpy = pytest.mark.skipif(
    not has_vector_backend(), reason="numpy not importable; no vectorised backend"
)


class patched_threshold:
    """Temporarily shrink the auto arc threshold (restored on exit)."""

    def __init__(self, value: int) -> None:
        self.value = value

    def __enter__(self) -> None:
        self._saved = registry.AUTO_ARC_THRESHOLD
        registry.AUTO_ARC_THRESHOLD = self.value

    def __exit__(self, *exc) -> None:
        registry.AUTO_ARC_THRESHOLD = self._saved


class TestBatchPolicy:
    def test_batch_size_validation(self):
        assert FlowConfig(batch_size=1).batch_size == 1
        with pytest.raises(ConfigError, match="batch_size"):
            FlowConfig(batch_size=0)
        with pytest.raises(ConfigError, match="batch_size"):
            FlowConfig(batch_size=-3)
        with pytest.raises(ConfigError, match="batch_size"):
            FlowConfig(batch_size="many")

    def test_single_member_families_are_never_eligible(self):
        assert not registry.batch_eligible([])
        assert not registry.batch_eligible([registry.AUTO_ARC_THRESHOLD * 2])

    def test_large_members_are_never_eligible(self):
        # One member at/above the threshold already earns the vector backend
        # alone; batching it with small members would only couple their solves.
        big = registry.AUTO_ARC_THRESHOLD
        assert not registry.batch_eligible([big, 10])

    @needs_numpy
    def test_small_families_below_aggregate_threshold_are_not_eligible(self):
        assert not registry.batch_eligible([10, 10])

    @needs_numpy
    def test_aggregate_of_small_members_is_eligible(self):
        small = registry.AUTO_ARC_THRESHOLD // 2
        assert registry.batch_eligible([small, small, small])
        name, _ = registry.resolve_auto_solver_batch([small, small, small])
        assert name == VECTOR_SOLVER

    @needs_numpy
    def test_only_auto_engines_support_batching(self):
        small = registry.AUTO_ARC_THRESHOLD // 2
        counts = [small, small, small]
        assert FlowEngine(AUTO_SOLVER).supports_batching(counts)
        # Explicit solver names pin every solve to that solver — batching
        # would silently override the user's choice.
        assert not FlowEngine("dinic").supports_batching(counts)
        assert not FlowEngine(VECTOR_SOLVER).supports_batching(counts)

    @needs_numpy
    def test_min_cut_batch_rejects_explicit_engines(self):
        import numpy as np  # noqa: F401

        from repro.flow.batch import BatchedFlowNetwork

        members = []
        for seed in (1, 2):
            network = FlowNetwork(3)
            network.add_edge(0, 1, 2.0 + seed)
            network.add_edge(1, 2, 1.0 + seed)
            members.append((network, 0, 2))
        batch = BatchedFlowNetwork(members)
        with pytest.raises(FlowError, match="auto"):
            FlowEngine("dinic").min_cut_batch(batch, [0, 1], [False, False])


@needs_numpy
class TestAppendPairedArcs:
    def _by_add_edge(self, arcs):
        network = FlowNetwork(4)
        for tail, target, capacity in arcs:
            network.add_edge(tail, target, capacity)
        return network

    def test_matches_add_edge_construction(self):
        import numpy as np

        arcs = [(0, 1, 2.5), (1, 2, 1.0), (2, 3, 4.0), (0, 3, 0.5)]
        expected = self._by_add_edge(arcs)
        network = FlowNetwork(4)
        exp_starts, exp_order, exp_targets, exp_caps, exp_tails, exp_base = (
            expected.numpy_csr()
        )
        first = network.append_paired_arcs(
            exp_tails.copy(), exp_targets.copy(), exp_caps.copy(), exp_base.copy()
        )
        assert first == 0
        starts, order, targets, caps, tails, base = network.numpy_csr()
        assert np.array_equal(starts, exp_starts)
        assert np.array_equal(order, exp_order)
        assert np.array_equal(targets, exp_targets)
        assert np.array_equal(caps, exp_caps)
        assert np.array_equal(tails, exp_tails)
        assert np.array_equal(base, exp_base)

    def test_rejects_unpaired_and_mismatched_columns(self):
        import numpy as np

        network = FlowNetwork(3)
        with pytest.raises(FlowError, match="even number"):
            network.append_paired_arcs(
                np.array([0]), np.array([1]), np.array([1.0]), np.array([1.0])
            )
        with pytest.raises(FlowError, match="length"):
            network.append_paired_arcs(
                np.array([0, 1]), np.array([1, 0]), np.array([1.0]), np.array([1.0, 0.0])
            )

    def test_out_of_range_nodes_roll_back_cleanly(self):
        import numpy as np

        network = FlowNetwork(3)
        network.add_edge(0, 1, 1.0)
        before = network.num_arcs
        with pytest.raises(FlowError):
            network.append_paired_arcs(
                np.array([1, 5], dtype=np.int64),
                np.array([5, 1], dtype=np.int64),
                np.array([1.0, 0.0]),
                np.array([1.0, 0.0]),
            )
        assert network.num_arcs == before
        # The network stays fully usable after the rollback.
        network.add_edge(1, 2, 2.0)
        assert network.num_arcs == before + 2


def _decision_members(graph, ratios, guess):
    """Decision networks for ``ratios`` over the whole-graph subproblem."""
    subproblem = STSubproblem.from_graph(graph)
    members = []
    for ratio in ratios:
        decision = build_decision_network(subproblem, ratio, guess)
        members.append(decision)
    return subproblem, members


@needs_numpy
class TestBatchedSolveAgainstSoloSolves:
    def test_block_values_cuts_and_push_attribution(self):
        from repro.flow.batch import BatchedFlowNetwork

        graph = gnm_random_digraph(10, 28, seed=4)
        ratios = (0.5, 1.0, 2.0)
        _, members = _decision_members(graph, ratios, guess=1.5)

        solo = []
        for decision in members:
            value, solver = FlowEngine("dinic").min_cut(
                decision.network, decision.source, decision.sink
            )
            solo.append((value, solver.min_cut_source_side()))

        _, fresh = _decision_members(graph, ratios, guess=1.5)
        batch = BatchedFlowNetwork(
            [(d.network, d.source, d.sink) for d in fresh]
        )
        count = decision_network_arc_count(STSubproblem.from_graph(graph))
        engine = FlowEngine(AUTO_SOLVER)
        with patched_threshold(count + 1):
            results = engine.min_cut_batch(
                batch, list(range(len(fresh))), [False] * len(fresh)
            )

        assert engine.batched_solves == 1
        assert engine.flow_calls == len(fresh)
        assert engine.backend_selections == len(fresh)
        assert engine.auto_backend_choices == {VECTOR_SOLVER: len(fresh)}
        total_pushes = 0
        for (value, cut, pushes), (solo_value, solo_cut) in zip(results, solo):
            assert value == pytest.approx(solo_value, abs=1e-9)
            assert cut == solo_cut  # canonical cut, member-local indices
            assert pushes >= 0
            total_pushes += pushes
        # Every push of the big solve belongs to exactly one member (the
        # terminal arcs carry their member's label too).
        assert total_pushes == engine.arcs_pushed

    def test_batched_members_need_at_least_two(self):
        from repro.flow.batch import BatchedFlowNetwork

        network = FlowNetwork(2)
        network.add_edge(0, 1, 1.0)
        with pytest.raises(FlowError, match="two members"):
            BatchedFlowNetwork([(network, 0, 1)])


def _outcome_key(outcome):
    """The observable fields the batched search must replay exactly.

    ``arcs_pushed`` is engine-level and intentionally absent: a batched
    solve may distribute interior flow differently (any max flow yields the
    same canonical cut), so push counts are work metrics, not answers.
    """
    return (
        outcome.ratio,
        outcome.lower,
        outcome.upper,
        outcome.best_s,
        outcome.best_t,
        outcome.best_density,
        outcome.last_s,
        outcome.last_t,
        outcome.last_surrogate,
        outcome.flow_calls,
        outcome.networks_built,
        outcome.networks_reused,
        outcome.warm_starts_used,
        outcome.cold_starts,
        outcome.network_nodes,
        outcome.network_arcs,
    )


@needs_numpy
class TestLockstepBitIdentity:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=6, max_value=10),
        m=st.integers(min_value=8, max_value=26),
        ratio_count=st.integers(min_value=2, max_value=4),
        warm=st.booleans(),
    )
    def test_batched_search_replays_the_sequential_search(
        self, seed, n, m, ratio_count, warm
    ):
        graph = gnm_random_digraph(n, m, seed=seed)
        if graph.num_edges == 0:
            return
        subproblem = STSubproblem.from_graph(graph)
        ratios = [0.5, 1.0, 2.0, 3.0][:ratio_count]
        upper = global_density_upper_bound(graph)
        tolerance = 1e-3
        count = decision_network_arc_count(subproblem)

        sequential = []
        engine_seq = FlowEngine(AUTO_SOLVER)
        cache_seq = NetworkCache(8)
        for ratio in ratios:
            sequential.append(
                maximize_fixed_ratio(
                    subproblem,
                    ratio,
                    lower=0.0,
                    upper=upper,
                    tolerance=tolerance,
                    engine=engine_seq,
                    network_cache=cache_seq,
                    warm_start=warm,
                )
            )

        engine_bat = FlowEngine(AUTO_SOLVER)
        cache_bat = NetworkCache(8)
        with patched_threshold(count + 1):
            batched = maximize_fixed_ratio_batch(
                subproblem,
                ratios,
                lower=0.0,
                upper=upper,
                tolerance=tolerance,
                engine=engine_bat,
                network_cache=cache_bat,
                warm_start=warm,
            )

        assert [_outcome_key(o) for o in batched] == [
            _outcome_key(o) for o in sequential
        ]
        # Counter attribution: one engine flow call per member round, the
        # auto invariant intact, and the family genuinely batched (members
        # converge at different rounds, so late rounds may fall to one
        # active member and solve solo — batched_solves only counts the
        # multi-member rounds).
        assert engine_bat.flow_calls == sum(o.flow_calls for o in batched)
        assert engine_bat.backend_selections == engine_bat.flow_calls
        assert engine_bat.batched_solves >= 1
        assert (
            engine_bat.warm_starts_used + engine_bat.cold_starts
            == engine_bat.flow_calls
        )
        assert engine_bat.warm_starts_used == sum(o.warm_starts_used for o in batched)

    def test_batched_search_validates_its_inputs(self):
        graph = gnm_random_digraph(6, 10, seed=1)
        subproblem = STSubproblem.from_graph(graph)
        with pytest.raises(AlgorithmError, match="two ratios"):
            maximize_fixed_ratio_batch(
                subproblem, [1.0], lower=0.0, upper=4.0, tolerance=1e-3
            )
        with pytest.raises(AlgorithmError, match="distinct"):
            maximize_fixed_ratio_batch(
                subproblem, [1.0, 1.0], lower=0.0, upper=4.0, tolerance=1e-3
            )

    def test_empty_subproblem_returns_zero_outcomes(self):
        graph = gnm_random_digraph(6, 10, seed=1)
        empty = STSubproblem(graph=graph, s_candidates=[], t_candidates=[], edges=[])
        outcomes = maximize_fixed_ratio_batch(
            empty, [0.5, 2.0], lower=0.0, upper=4.0, tolerance=1e-3
        )
        assert [o.ratio for o in outcomes] == [0.5, 2.0]
        assert all(o.flow_calls == 0 and o.best_density == 0.0 for o in outcomes)


@needs_numpy
class TestClientWiring:
    def test_flow_exact_batched_is_bit_identical(self):
        graph = gnm_random_digraph(12, 36, seed=9)
        count = decision_network_arc_count(STSubproblem.from_graph(graph))
        sequential = flow_exact(
            graph, ExactConfig(flow=FlowConfig(solver=AUTO_SOLVER, batch_size=1))
        )
        with patched_threshold(count + 1):
            batched = flow_exact(
                graph, ExactConfig(flow=FlowConfig(solver=AUTO_SOLVER, batch_size=4))
            )
        assert batched.density == sequential.density
        assert sorted(batched.s_nodes) == sorted(sequential.s_nodes)
        assert sorted(batched.t_nodes) == sorted(sequential.t_nodes)
        assert batched.stats["flow_calls"] == sequential.stats["flow_calls"]
        assert batched.stats["batched_solves"] > 0
        assert sequential.stats["batched_solves"] == 0

    def test_dc_exact_batched_leaves_are_bit_identical(self):
        graph = gnm_random_digraph(12, 36, seed=9)
        count = decision_network_arc_count(STSubproblem.from_graph(graph))
        config = lambda size: ExactConfig(  # noqa: E731
            leaf_ratio_count=10,
            flow=FlowConfig(solver=AUTO_SOLVER, batch_size=size),
        )
        sequential = dc_exact(graph, config(1))
        with patched_threshold(count + 1):
            batched = dc_exact(graph, config(10))
        assert batched.density == sequential.density
        assert sorted(batched.s_nodes) == sorted(sequential.s_nodes)
        assert sorted(batched.t_nodes) == sorted(sequential.t_nodes)
        assert batched.stats["flow_calls"] == sequential.stats["flow_calls"]
        assert batched.stats["batched_solves"] > 0

    def test_explicit_solvers_never_batch(self):
        graph = gnm_random_digraph(12, 36, seed=9)
        count = decision_network_arc_count(STSubproblem.from_graph(graph))
        with patched_threshold(count + 1):
            result = flow_exact(
                graph,
                ExactConfig(flow=FlowConfig(solver=VECTOR_SOLVER, batch_size=8)),
            )
        assert result.stats["batched_solves"] == 0

    def test_session_surfaces_batched_solves(self):
        graph = gnm_random_digraph(12, 36, seed=9)
        count = decision_network_arc_count(STSubproblem.from_graph(graph))
        session = DDSSession(graph, flow=FlowConfig(solver=AUTO_SOLVER, batch_size=4))
        with patched_threshold(count + 1):
            session.densest_subgraph("flow-exact")
        stats = session.cache_stats()
        assert stats["batched_solves"] > 0
        assert stats["backend_selections"] == stats["flow_calls"]


@needs_numpy
class TestBackendMismatchAdvisory:
    def test_forced_small_vector_solves_warn_once_per_session(self):
        graph = gnm_random_digraph(8, 20, seed=3)
        session = DDSSession(graph, flow=FlowConfig(solver=VECTOR_SOLVER))
        with pytest.warns(UserWarning, match="below the auto arc threshold"):
            result = session.densest_subgraph("flow-exact")
        mismatch = result.stats["backend_mismatch"]
        assert mismatch["flow_solver"] == VECTOR_SOLVER
        assert mismatch["small_vector_solves"] > 0
        # Once per session: a second affected query keeps the stats entry
        # but stays silent, mirroring flow_solver_ignored.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = session.densest_subgraph("dc-exact")
        assert "backend_mismatch" in second.stats
        assert not [w for w in caught if "auto arc threshold" in str(w.message)]

    def test_auto_policy_never_trips_the_advisory(self):
        graph = gnm_random_digraph(8, 20, seed=3)
        session = DDSSession(graph, flow=FlowConfig(solver=AUTO_SOLVER))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = session.densest_subgraph("flow-exact")
        assert "backend_mismatch" not in result.stats
        assert session.cache_stats()["small_vector_solves"] == 0
        assert not [w for w in caught if "auto arc threshold" in str(w.message)]

    def test_bench_trajectory_records_the_regression_and_the_fix(self):
        """BENCH_flow.json row pinning: the bug and its fix stay recorded."""
        document = json.loads(
            (Path(__file__).resolve().parent.parent / "BENCH_flow.json").read_text()
        )
        assert document["schema_version"] == 2
        rows = {
            (row["workload"], row["solver"], row["mode"]): row
            for row in document["rows"]
        }
        workload = "e2-small:foodweb-tiny/flow-exact"
        dinic = rows[(workload, "dinic", "sequential")]
        vector = rows[(workload, VECTOR_SOLVER, "sequential")]
        batched = rows[(workload, AUTO_SOLVER, "batched")]
        # The recorded bug: one small network cannot fill the vector width.
        assert vector["wall_ms"] > dinic["wall_ms"]
        assert vector["batched_solves"] == 0
        # The recorded fix: the batched auto run stacks the guess sequence
        # and claws the vector speedup back (the >= 1.5x margin is enforced
        # at regeneration time by tools/bench_trajectory.py --check).
        assert batched["batched_solves"] > 0
        assert batched["wall_ms"] * 1.5 <= vector["wall_ms"]
