"""Property tests for the incremental update subsystem (repro.incremental).

The central contract: a session that absorbs a delta sequence through
:meth:`DDSSession.apply_updates` answers every query **bit-identically** to a
cold session built on the final graph — same node sets in the same order,
same density, same edge count — because patched decision networks share the
canonical minimal min-cut with freshly built ones.  With certification
enabled the promise is optimality (equal density, valid pair) rather than
byte equality, and that is pinned separately.

Delta sequences come from :func:`repro.graph.generators.edge_update_stream`,
so the generator satellite is exercised by the same properties that test the
subsystem it feeds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_bipartite_digraph,
    edge_update_stream,
    gnm_random_digraph,
)
from repro.incremental import EdgeDelta
from repro.session import DDSSession

# (graph_seed, stream_seed) pairs drive both the base graph and its update
# stream; the stream generator guarantees every batch is valid against the
# state left by the previous ones.
seeds = st.integers(min_value=0, max_value=10_000)


def small_graph(seed: int) -> DiGraph:
    return gnm_random_digraph(10 + seed % 5, 25 + seed % 11, seed=seed)


def updated_cold_copy(graph: DiGraph, batches) -> DiGraph:
    clone = graph.copy()
    for added, removed in batches:
        clone.apply_delta(added, removed)
    return clone


def assert_same_result(incremental, cold):
    assert incremental.s_nodes == cold.s_nodes
    assert incremental.t_nodes == cold.t_nodes
    assert incremental.density == cold.density
    assert incremental.edge_count == cold.edge_count


class TestEdgeDeltaNormalize:
    def test_duplicates_collapse_first_wins(self):
        g = DiGraph.from_edges([("a", "b"), ("b", "c")])
        delta = EdgeDelta.normalize(
            g, added_edges=[("c", "a"), ("c", "a")], removed_edges=[("a", "b"), ("a", "b")]
        )
        assert delta.added == (("c", "a"),)
        assert delta.removed == (("a", "b"),)

    def test_added_and_removed_is_ambiguous(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(GraphError, match="ambiguous"):
            EdgeDelta.normalize(g, added_edges=[("a", "b")], removed_edges=[("a", "b")])

    def test_removing_missing_edge_raises(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(GraphError, match="does not exist"):
            EdgeDelta.normalize(g, removed_edges=[("b", "a")])

    def test_existing_and_self_loop_additions_dropped(self):
        g = DiGraph.from_edges([("a", "b")])
        delta = EdgeDelta.normalize(g, added_edges=[("a", "b"), ("z", "z")])
        assert delta.is_empty
        # the rejected self-loop must not have smuggled in its endpoint node
        assert delta.new_nodes == ()

    def test_new_nodes_recorded_in_first_appearance_order(self):
        g = DiGraph.from_edges([("a", "b")])
        delta = EdgeDelta.normalize(g, added_edges=[("q", "a"), ("b", "p"), ("q", "p")])
        assert delta.new_nodes == ("q", "p")
        assert not delta.removal_only


class TestDiGraphSatellites:
    def test_copy_carries_fingerprint_cache(self):
        g = gnm_random_digraph(8, 20, seed=1)
        digest = g.content_fingerprint()
        clone = g.copy()
        assert clone._fingerprint_cache is not None
        assert clone._fingerprint_cache[1] == digest
        assert clone.content_fingerprint() == digest
        clone.add_edge("fresh", 0)
        assert clone.content_fingerprint() != digest

    def test_copy_without_cached_fingerprint_stays_lazy(self):
        g = gnm_random_digraph(8, 20, seed=2)
        clone = g.copy()
        assert clone._fingerprint_cache is None
        assert clone.content_fingerprint() == g.content_fingerprint()

    def test_remove_node_matches_rebuild(self):
        g = gnm_random_digraph(9, 30, seed=3)
        victim = 4
        g_removed = g.copy()
        g_removed.remove_node(victim)
        rebuilt = DiGraph()
        for index in range(g.num_nodes):
            if g.label_of(index) != victim:
                rebuilt.add_node(g.label_of(index))
        for u in range(g.num_nodes):
            for v in sorted(g.out_adj[u]):
                lu, lv = g.label_of(u), g.label_of(v)
                if victim not in (lu, lv):
                    rebuilt.add_edge(lu, lv)
        assert g_removed.content_fingerprint() == rebuilt.content_fingerprint()

    def test_remove_missing_node_raises(self):
        g = DiGraph.from_edges([("a", "b")])
        with pytest.raises(GraphError):
            g.remove_node("zz")

    @given(seed=seeds, stream_seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_apply_delta_matches_edge_by_edge_mutation(self, seed, stream_seed):
        g = small_graph(seed)
        (added, removed), = edge_update_stream(
            g, steps=1, batch_size=6, p_add=0.5, p_new_node=0.2, seed=stream_seed
        )
        batched = g.copy()
        batched.apply_delta(added, removed)
        stepwise = g.copy()
        for u, v in removed:
            stepwise.remove_edge(u, v)
        for u, v in added:
            stepwise.add_edge(u, v)
        assert batched.content_fingerprint() == stepwise.content_fingerprint()
        assert batched.out_degrees() == stepwise.out_degrees()
        assert batched.in_degrees() == stepwise.in_degrees()


class TestApplyUpdatesBitIdentity:
    @given(seed=seeds, stream_seed=seeds)
    @settings(max_examples=12, deadline=None)
    def test_uncertified_queries_match_cold_rebuild_bit_for_bit(self, seed, stream_seed):
        g = small_graph(seed)
        batches = edge_update_stream(
            g, steps=3, batch_size=4, p_add=0.4, p_new_node=0.1, seed=stream_seed
        )
        session = DDSSession(g.copy())
        if session.graph.num_edges:
            session.densest_subgraph("dc-exact")  # warm the caches being patched
        for added, removed in batches:
            session.apply_updates(added, removed, certify=False)
        cold = DDSSession(updated_cold_copy(g, batches))
        if cold.graph.num_edges == 0:
            return
        assert_same_result(
            session.densest_subgraph("dc-exact"), cold.densest_subgraph("dc-exact")
        )
        assert session.out_degrees() == cold.out_degrees()
        assert session.in_degrees() == cold.in_degrees()
        inc_core, cold_core = session.max_xy_core(), cold.max_xy_core()
        assert (inc_core.x, inc_core.y) == (cold_core.x, cold_core.y)
        assert inc_core.s_nodes == cold_core.s_nodes
        assert inc_core.t_nodes == cold_core.t_nodes

    @given(seed=seeds, stream_seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_certified_queries_stay_optimal(self, seed, stream_seed):
        g = small_graph(seed)
        batches = edge_update_stream(
            g, steps=3, batch_size=3, p_add=0.3, p_new_node=0.0, seed=stream_seed
        )
        session = DDSSession(g.copy())
        session.densest_subgraph("dc-exact")
        for added, removed in batches:
            session.apply_updates(added, removed)
        cold = DDSSession(updated_cold_copy(g, batches))
        if cold.graph.num_edges == 0:
            return
        served = session.densest_subgraph("dc-exact")
        reference = cold.densest_subgraph("dc-exact")
        # certification promises optimality, not byte equality: the pair may
        # differ when the optimum is non-unique, the density may not.
        assert served.density == pytest.approx(reference.density, abs=1e-12)
        assert served.edge_count == session.graph.count_edges_between(
            session.graph.indices_of(served.s_nodes),
            session.graph.indices_of(served.t_nodes),
        )

    @given(seed=seeds, stream_seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_top_k_after_updates_matches_cold_top_k(self, seed, stream_seed):
        g = small_graph(seed)
        batches = edge_update_stream(
            g, steps=2, batch_size=3, p_add=0.5, p_new_node=0.1, seed=stream_seed
        )
        session = DDSSession(g.copy())
        for added, removed in batches:
            session.apply_updates(added, removed, certify=False)
        cold = DDSSession(updated_cold_copy(g, batches))
        if cold.graph.num_edges == 0:
            return
        incremental = session.top_k(3, "dc-exact")
        reference = cold.top_k(3, "dc-exact")
        assert len(incremental) == len(reference)
        for inc, ref in zip(incremental, reference):
            assert_same_result(inc, ref)


class TestApplyUpdatesBehaviour:
    def make_pendant_graph(self) -> DiGraph:
        g = complete_bipartite_digraph(3, 3)
        g.add_edge("x", "y")
        return g

    def test_empty_delta_is_a_no_op(self):
        session = DDSSession(complete_bipartite_digraph(2, 2))
        token = session.graph.state_token
        report = session.apply_updates()
        assert report.delta.is_empty
        assert session.graph.state_token == token
        assert session.cache_stats()["updates_applied"] == 0

    def test_certification_keeps_unaffected_optimum(self):
        session = DDSSession(self.make_pendant_graph())
        session.densest_subgraph("dc-exact")
        report = session.apply_updates(removed_edges=[("x", "y")])
        assert report.removal_only
        assert report.results_certified == 1
        assert report.results_invalidated == 0
        assert [c.reason for c in report.certificates] == ["bounds"]
        served = session.densest_subgraph("dc-exact")
        assert served.stats["result_cache_hit"] is True
        assert served.stats["certified_stale"] == "bounds"
        assert session.cache_stats()["certified_stale_hits"] == 1

    def test_invalidated_key_counts_as_local_research_on_next_query(self):
        session = DDSSession(self.make_pendant_graph())
        session.densest_subgraph("dc-exact")
        report = session.apply_updates(removed_edges=[("s0", "t0")], certify=False)
        assert report.results_invalidated == 1
        stats = session.cache_stats()
        assert stats["local_research_runs"] == 0
        session.densest_subgraph("dc-exact")
        assert session.cache_stats()["local_research_runs"] == 1
        # the key is consumed: a further repeat is a plain cache hit
        session.densest_subgraph("dc-exact")
        assert session.cache_stats()["local_research_runs"] == 1

    def test_direct_graph_mutation_still_rejected(self):
        session = DDSSession(complete_bipartite_digraph(2, 2))
        session.graph.add_edge("t0", "s0")
        with pytest.raises(GraphError, match="mutated"):
            session.densest_subgraph("dc-exact")

    def test_lineage_records_pre_update_fingerprints(self):
        session = DDSSession(self.make_pendant_graph())
        first = session.graph.content_fingerprint()
        session.apply_updates(removed_edges=[("x", "y")])
        second = session.graph.content_fingerprint()
        session.apply_updates(added_edges=[("x", "y")])
        assert session.lineage() == [first, second]
        session.seed_lineage(["abc"])
        assert session.lineage() == ["abc"]

    def test_removal_only_repeel_restricts_to_old_core(self):
        session = DDSSession(self.make_pendant_graph())
        session.xy_core(1, 1)
        report = session.apply_updates(removed_edges=[("s0", "t0")])
        assert report.cores_repeeled >= 1
        assert report.cores_rebuilt == 0
        cold = DDSSession(session.graph.copy())
        fresh = cold.xy_core(1, 1)
        patched = session.xy_core(1, 1)
        assert patched.s_nodes == fresh.s_nodes
        assert patched.t_nodes == fresh.t_nodes

    def test_insertion_forces_full_core_rebuild(self):
        session = DDSSession(complete_bipartite_digraph(3, 3))
        session.xy_core(2, 2)
        report = session.apply_updates(added_edges=[("t0", "s0")])
        assert report.cores_rebuilt >= 1
        assert report.cores_repeeled == 0


class TestTopKNetworkReuse:
    def test_top_k_builds_strictly_fewer_networks_than_cold_rounds(self):
        g = gnm_random_digraph(18, 70, seed=11)
        session = DDSSession(g.copy())
        rounds = session.top_k(3, "dc-exact")
        assert len(rounds) >= 2
        built = session.cache_stats()["networks_built"]

        # sequential baseline: one cold session per peel round
        work = g.copy()
        cold_built = 0
        for reference in rounds:
            cold = DDSSession(work.copy())
            result = cold.densest_subgraph("dc-exact")
            assert_same_result(result, reference)
            cold_built += cold.cache_stats()["networks_built"]
            pairs = [
                (work.label_of(u), work.label_of(v))
                for u, v in work.edges_between(
                    work.indices_of(result.s_nodes), work.indices_of(result.t_nodes)
                )
            ]
            work.apply_delta((), pairs)
        assert built < cold_built


class TestEdgeUpdateStream:
    @given(seed=seeds, stream_seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_batches_are_valid_and_deterministic(self, seed, stream_seed):
        g = small_graph(seed)
        kwargs = dict(steps=5, batch_size=4, p_add=0.5, p_new_node=0.2, seed=stream_seed)
        batches = edge_update_stream(g, **kwargs)
        assert batches == edge_update_stream(g, **kwargs)
        assert len(batches) == 5
        replay = g.copy()
        for added, removed in batches:
            assert not set(added) & set(removed)
            for u, v in removed:
                assert replay.has_edge(u, v)
            for u, v in added:
                assert u != v
                assert not replay.has_edge(u, v)
            replay.apply_delta(added, removed)

    def test_generator_never_mutates_its_input(self):
        g = gnm_random_digraph(10, 30, seed=5)
        digest = g.content_fingerprint()
        edge_update_stream(g, steps=4, batch_size=5, p_add=0.7, p_new_node=0.5, seed=6)
        assert g.content_fingerprint() == digest

    def test_pure_removal_stream_drains_the_graph(self):
        g = complete_bipartite_digraph(2, 3)
        batches = edge_update_stream(g, steps=10, batch_size=1, p_add=0.0, seed=0)
        replay = g.copy()
        for added, removed in batches:
            assert not added
            replay.apply_delta(added, removed)
        assert replay.num_edges == 0
