"""Unit tests for edge-list I/O and structural property reports."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_digraph
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.properties import (
    degree_statistics,
    graph_summary,
    reciprocity,
    weakly_connected_components,
)


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path):
        original = gnm_random_digraph(20, 60, seed=4)
        path = tmp_path / "graph.txt"
        write_edge_list(original, path)
        loaded = read_edge_list(path)
        assert set(loaded.edges()) == set(original.edges())
        assert loaded.num_edges == original.num_edges

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n% konect comment\n\n1 2\n2 3\n")
        g = read_edge_list(path)
        assert g.num_edges == 2
        assert g.has_edge(1, 2)

    def test_string_labels(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("alice bob\nbob carol\n")
        g = read_edge_list(path)
        assert g.has_edge("alice", "bob")

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "graph.csv"
        path.write_text("1,2\n2,3\n")
        g = read_edge_list(path, delimiter=",")
        assert g.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\nonlyonefield\n")
        with pytest.raises(ParseError):
            read_edge_list(path)

    def test_write_creates_parent_directories(self, tmp_path):
        g = DiGraph.from_edges([(1, 2)])
        path = tmp_path / "nested" / "dir" / "graph.txt"
        write_edge_list(g, path)
        assert path.exists()


class TestProperties:
    def test_degree_statistics(self):
        g = DiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        stats = degree_statistics(g)
        assert stats.max_out_degree == 2
        assert stats.max_in_degree == 2
        assert stats.mean_out_degree == pytest.approx(1.0)

    def test_degree_statistics_empty(self):
        stats = degree_statistics(DiGraph())
        assert stats.max_out_degree == 0
        assert stats.mean_in_degree == 0.0

    def test_reciprocity(self):
        g = DiGraph.from_edges([(1, 2), (2, 1), (2, 3)])
        assert reciprocity(g) == pytest.approx(2 / 3)
        assert reciprocity(DiGraph()) == 0.0

    def test_weakly_connected_components(self):
        g = DiGraph.from_edges([(1, 2), (3, 4)])
        components = weakly_connected_components(g)
        assert len(components) == 2

    def test_graph_summary_keys(self):
        g = DiGraph.from_edges([(1, 2), (2, 3)])
        summary = graph_summary(g)
        assert summary["nodes"] == 3
        assert summary["edges"] == 2
        assert summary["components"] == 1
        assert "max_out_degree" in summary
        assert "reciprocity" in summary
