"""Unit and property tests for candidate-ratio machinery."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ratio import (
    all_candidate_ratios,
    candidate_ratios_in_interval,
    count_candidate_ratios_in_interval,
    geometric_ratio_grid,
    iter_ratio_blocks,
)
from repro.exceptions import AlgorithmError


class TestAllCandidateRatios:
    def test_small_case(self):
        ratios = all_candidate_ratios(2)
        assert ratios == [Fraction(1, 2), Fraction(1, 1), Fraction(2, 1)]

    def test_count_matches_distinct_pairs(self):
        n = 6
        expected = {Fraction(i, j) for i in range(1, n + 1) for j in range(1, n + 1)}
        assert set(all_candidate_ratios(n)) == expected

    def test_sorted(self):
        ratios = all_candidate_ratios(7)
        assert ratios == sorted(ratios)

    def test_rejects_non_positive(self):
        with pytest.raises(AlgorithmError):
            all_candidate_ratios(0)


class TestIntervalCounting:
    def test_full_interval_counts_all_pairs(self):
        n = 5
        assert count_candidate_ratios_in_interval(1.0 / n, float(n), n) == n * n

    def test_point_interval(self):
        # The single ratio 1 is realised by the pairs (1,1)..(4,4).
        assert count_candidate_ratios_in_interval(1.0, 1.0, 4) == 4

    def test_enumeration_matches_count_upper_bound(self):
        n = 8
        low, high = 0.4, 1.7
        distinct = candidate_ratios_in_interval(low, high, n)
        pair_count = count_candidate_ratios_in_interval(low, high, n)
        assert len(distinct) <= pair_count
        for ratio in distinct:
            assert low - 1e-9 <= float(ratio) <= high + 1e-9

    def test_enumeration_complete(self):
        n = 6
        low, high = 0.5, 2.0
        expected = {
            Fraction(i, j)
            for i in range(1, n + 1)
            for j in range(1, n + 1)
            if low <= i / j <= high
        }
        assert set(candidate_ratios_in_interval(low, high, n)) == expected

    def test_invalid_interval_rejected(self):
        with pytest.raises(AlgorithmError):
            count_candidate_ratios_in_interval(2.0, 1.0, 5)
        with pytest.raises(AlgorithmError):
            candidate_ratios_in_interval(0.0, 1.0, 5)

    @given(
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.05, max_value=12.0),
        st.floats(min_value=0.05, max_value=12.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_enumeration_matches_bruteforce(self, n, a, b):
        low, high = min(a, b), max(a, b)
        expected = {
            Fraction(i, j)
            for i in range(1, n + 1)
            for j in range(1, n + 1)
            if low - 1e-12 <= i / j <= high + 1e-12
        }
        assert set(candidate_ratios_in_interval(low, high, n)) == expected


class TestGeometricGrid:
    def test_grid_covers_endpoints_and_one(self):
        grid = geometric_ratio_grid(10, epsilon=0.5)
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(10.0)
        assert 1.0 in grid

    def test_grid_step_bounded(self):
        epsilon = 0.3
        grid = geometric_ratio_grid(50, epsilon=epsilon)
        for previous, current in zip(grid, grid[1:]):
            assert current / previous <= 1.0 + epsilon + 1e-9

    def test_every_ratio_close_to_grid_point(self):
        n, epsilon = 20, 0.4
        grid = geometric_ratio_grid(n, epsilon)
        for ratio in all_candidate_ratios(n):
            value = float(ratio)
            assert any(
                value / (1 + epsilon) <= point <= value * (1 + epsilon) for point in grid
            )

    def test_rejects_bad_epsilon(self):
        with pytest.raises(AlgorithmError):
            geometric_ratio_grid(10, epsilon=0.0)


def test_iter_ratio_blocks():
    ratios = all_candidate_ratios(4)
    blocks = list(iter_ratio_blocks(ratios, 3))
    assert sum(len(block) for block in blocks) == len(ratios)
    assert all(len(block) <= 3 for block in blocks)
    with pytest.raises(AlgorithmError):
        list(iter_ratio_blocks(ratios, 0))
