"""Warm-start residual reuse: equivalence, fallback, and instrumentation.

The warm-start path (:meth:`DecisionNetwork.retune(..., warm_start=True)
<repro.core.flow_network.DecisionNetwork.retune>` feeding solvers constructed
with ``warm_start=True``) must change the amount of flow *work*, never the
answer: for every registered solver, every exact method, and random graphs,
``warm_start=True`` and ``warm_start=False`` produce identical densities,
identical vertex sets, and matching min-cut values.  Solvers that cannot
warm start (``edmonds-karp``) must fall back to cold solves without error
and record why.  On the pinned fixture workloads, warm-started searches must
push strictly fewer arcs than cold ones — the whole point of the feature.
"""

from __future__ import annotations

import pytest

from repro.core.config import ApproxConfig, ExactConfig, FlowConfig
from repro.core.exact_core import core_exact
from repro.core.exact_dc import dc_exact
from repro.core.exact_flow import flow_exact
from repro.core.fixed_ratio import maximize_fixed_ratio
from repro.core.flow_network import build_decision_network
from repro.core.subproblem import STSubproblem
from repro.datasets.registry import load_dataset
from repro.exceptions import ConfigError, FlowError
from repro.flow.engine import FlowEngine
from repro.flow.network import FlowNetwork
from repro.flow.registry import available_flow_solvers, get_solver_class
from repro.graph.generators import complete_bipartite_digraph, gnm_random_digraph
from repro.session import DDSSession

SOLVER_NAMES = available_flow_solvers()
WARM_CAPABLE = [n for n in SOLVER_NAMES if getattr(get_solver_class(n), "supports_warm_start", False)]


def _config(solver: str, warm: bool) -> ExactConfig:
    return ExactConfig(flow=FlowConfig(solver=solver, warm_start=warm))


# ----------------------------------------------------------------------
# FlowNetwork primitives
# ----------------------------------------------------------------------
class TestFlowNetworkPrimitives:
    def _solved_path_network(self) -> FlowNetwork:
        """0 -> 1 -> 2 with capacities 3/2, solved to its max flow of 2."""
        network = FlowNetwork(3)
        network.add_edge(0, 1, 3.0)
        network.add_edge(1, 2, 2.0)
        engine = FlowEngine("dinic")
        value, _ = engine.min_cut(network, 0, 2)
        assert value == 2.0
        return network

    def test_preserving_update_keeps_fitting_flow(self):
        network = self._solved_path_network()
        overflow = network.set_capacity_preserving_flow(2, 5.0)  # arc 1 -> 2
        assert overflow == 0.0
        assert network.arc_flow(2) == 2.0
        assert network.flow_value(0) == 2.0

    def test_preserving_update_clamps_and_reports_overflow(self):
        network = self._solved_path_network()
        overflow = network.set_capacity_preserving_flow(2, 0.5)
        assert overflow == pytest.approx(1.5)
        assert network.arc_flow(2) == 0.5
        # Conservation at node 1 is broken by exactly the overflow ...
        network.return_excess([(1, overflow)], source=0)
        # ... and returning it restores a valid flow of the clamped value.
        assert network.flow_value(0) == pytest.approx(0.5)
        assert network.arc_flow(0) == pytest.approx(0.5)

    def test_return_excess_walks_back_sub_epsilon_overflow(self):
        """Tiny clamp overflows must be repaired, not silently stranded.

        Cached decision networks are retuned indefinitely across a session's
        lifetime, so per-retune imbalances below EPSILON would otherwise
        accumulate into flow-value drift.
        """
        network = self._solved_path_network()
        tiny = 1e-12
        overflow = network.set_capacity_preserving_flow(2, 2.0 - tiny)
        assert 0.0 < overflow < 1e-9
        network.return_excess([(1, overflow)], source=0)
        # Conservation is exactly restored: source outflow == arc 1->2 flow.
        assert network.flow_value(0) == pytest.approx(network.arc_flow(2), abs=1e-15)

    def test_return_excess_rejects_impossible_excess(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 3.0)
        network.add_edge(1, 2, 2.0)
        # No flow anywhere: there is nothing to cancel, so returning fails.
        with pytest.raises(FlowError):
            network.return_excess([(1, 1.0)], source=0)

    def test_preserving_update_validates_like_set_capacity(self):
        network = self._solved_path_network()
        with pytest.raises(FlowError):
            network.set_capacity_preserving_flow(1, 1.0)  # odd index
        with pytest.raises(FlowError):
            network.set_capacity_preserving_flow(0, -1.0)


# ----------------------------------------------------------------------
# Solver-level equivalence on decision networks
# ----------------------------------------------------------------------
class TestWarmRetuneEqualsCold:
    @pytest.mark.parametrize("solver", WARM_CAPABLE)
    @pytest.mark.parametrize("seed", range(4))
    def test_sweep_matches_cold_restart(self, solver, seed):
        """Warm retunes across a (ratio, guess) sweep match cold rebuild+solve."""
        graph = gnm_random_digraph(11, 45, seed=seed)
        subproblem = STSubproblem.from_graph(graph)
        pairs = [(r, g) for r in (0.5, 1.0, 2.0) for g in (0.0, 0.9, 2.4, 1.1)]

        warm = build_decision_network(subproblem, *pairs[0])
        cold = build_decision_network(subproblem, *pairs[0])
        engine_warm = FlowEngine(solver)
        engine_cold = FlowEngine(solver)
        first = True
        for ratio, guess in pairs:
            warm.retune(ratio, guess, warm_start=not first)
            cold.retune(ratio, guess)
            cut_warm, solver_warm = engine_warm.min_cut(
                warm.network, warm.source, warm.sink, warm_start=not first
            )
            cut_cold, solver_cold = engine_cold.min_cut(cold.network, cold.source, cold.sink)
            assert cut_warm == pytest.approx(cut_cold, abs=1e-7)
            assert warm.extract_pair(solver_warm.min_cut_source_side()) == cold.extract_pair(
                solver_cold.min_cut_source_side()
            )
            first = False
        # All but the first solve were warm.
        assert engine_warm.warm_starts_used == len(pairs) - 1
        assert engine_warm.cold_starts == 1
        assert engine_cold.warm_starts_used == 0

    def test_guess_increase_keeps_flow_feasible(self):
        """Raising the guess only raises penalty capacities: flow survives intact."""
        graph = complete_bipartite_digraph(3, 3)
        subproblem = STSubproblem.from_graph(graph)
        decision = build_decision_network(subproblem, 1.0, 0.5)
        engine = FlowEngine("dinic")
        engine.min_cut(decision.network, decision.source, decision.sink)
        value_before = decision.network.flow_value(decision.source)
        decision.retune(1.0, 2.0, warm_start=True)
        # No clamping happened, so the previous flow is still fully routed.
        assert decision.network.flow_value(decision.source) == value_before

    def test_guess_decrease_clamps_to_feasible_flow(self):
        graph = complete_bipartite_digraph(3, 3)
        subproblem = STSubproblem.from_graph(graph)
        decision = build_decision_network(subproblem, 1.0, 3.0)
        engine = FlowEngine("dinic")
        engine.min_cut(decision.network, decision.source, decision.sink)
        decision.retune(1.0, 0.25, warm_start=True)
        network = decision.network
        # The warm state is a valid flow under the *new* capacities: every
        # penalty arc's flow fits its shrunken capacity.
        for arc_index in decision.s_penalty_arcs + decision.t_penalty_arcs:
            assert network.arc_flow(arc_index) <= network._original_capacity(arc_index) + 1e-12
        assert network.flow_value(decision.source) >= 0.0


# ----------------------------------------------------------------------
# Method-level equivalence (the acceptance-criterion property)
# ----------------------------------------------------------------------
class TestWarmColdMethodEquivalence:
    @pytest.mark.parametrize("solver", SOLVER_NAMES)
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_dc_exact_identical_answers(self, solver, seed):
        graph = gnm_random_digraph(10, 35, seed=seed)
        warm = dc_exact(graph, _config(solver, True))
        cold = dc_exact(graph, _config(solver, False))
        assert warm.density == cold.density
        assert sorted(warm.s_nodes) == sorted(cold.s_nodes)
        assert sorted(warm.t_nodes) == sorted(cold.t_nodes)
        assert warm.stats["flow_calls"] == cold.stats["flow_calls"]
        assert cold.stats["warm_starts_used"] == 0

    @pytest.mark.parametrize("solver", SOLVER_NAMES)
    def test_core_exact_identical_answers(self, solver):
        graph = gnm_random_digraph(12, 50, seed=2)
        warm = core_exact(graph, _config(solver, True))
        cold = core_exact(graph, _config(solver, False))
        assert warm.density == cold.density
        assert sorted(warm.s_nodes) == sorted(cold.s_nodes)
        assert sorted(warm.t_nodes) == sorted(cold.t_nodes)

    def test_flow_exact_identical_answers(self):
        graph = gnm_random_digraph(8, 22, seed=4)
        warm = flow_exact(graph, _config("dinic", True))
        cold = flow_exact(graph, _config("dinic", False))
        assert warm.density == cold.density
        assert sorted(warm.s_nodes) == sorted(cold.s_nodes)
        assert sorted(warm.t_nodes) == sorted(cold.t_nodes)

    def test_fixed_ratio_outcome_counts_warm_and_cold(self):
        graph = gnm_random_digraph(10, 40, seed=6)
        subproblem = STSubproblem.from_graph(graph)
        outcome = maximize_fixed_ratio(
            subproblem, 1.0, lower=0.0, upper=10.0, tolerance=1e-3, warm_start=True
        )
        assert outcome.flow_calls == outcome.warm_starts_used + outcome.cold_starts
        # The first solve (freshly built network) is necessarily cold.
        assert outcome.cold_starts >= 1
        assert outcome.warm_starts_used >= 1
        cold = maximize_fixed_ratio(
            subproblem, 1.0, lower=0.0, upper=10.0, tolerance=1e-3, warm_start=False
        )
        assert cold.warm_starts_used == 0
        assert (cold.lower, cold.upper, sorted(cold.best_s), sorted(cold.best_t)) == (
            outcome.lower,
            outcome.upper,
            sorted(outcome.best_s),
            sorted(outcome.best_t),
        )

    def test_warm_pushes_strictly_fewer_arcs(self):
        graph = load_dataset("foodweb-tiny")
        warm = dc_exact(graph, _config("dinic", True))
        cold = dc_exact(graph, _config("dinic", False))
        assert warm.stats["arcs_pushed"] < cold.stats["arcs_pushed"]
        assert warm.stats["warm_starts_used"] >= 1
        assert warm.stats["warm_starts_used"] + warm.stats["cold_starts"] == warm.stats["flow_calls"]


# ----------------------------------------------------------------------
# Fallback behaviour for solvers without warm-start support
# ----------------------------------------------------------------------
class TestEdmondsKarpFallback:
    def test_falls_back_cold_and_records_why(self):
        graph = gnm_random_digraph(9, 30, seed=3)
        result = dc_exact(graph, _config("edmonds-karp", True))
        stats = result.stats
        assert stats["warm_starts_used"] == 0
        assert stats["cold_starts"] == stats["flow_calls"]
        assert stats["warm_start_fallbacks"] >= 1
        assert "does not support warm starts" in stats["warm_start_fallback_reason"]
        # And the answer still matches an explicitly cold run bit for bit.
        cold = dc_exact(graph, _config("edmonds-karp", False))
        assert result.density == cold.density
        assert sorted(result.s_nodes) == sorted(cold.s_nodes)
        assert "warm_start_fallback_reason" not in cold.stats

    def test_engine_min_cut_defensive_fallback(self):
        """min_cut(warm_start=True) on a warm-incapable solver resets and runs cold."""
        graph = complete_bipartite_digraph(2, 3)
        subproblem = STSubproblem.from_graph(graph)
        decision = build_decision_network(subproblem, 1.0, 1.0)
        reference_engine = FlowEngine("dinic")
        reference, _ = reference_engine.min_cut(decision.network, decision.source, decision.sink)

        decision.retune(1.0, 1.0, warm_start=True)  # leave residual state behind
        engine = FlowEngine("edmonds-karp")
        value, _ = engine.min_cut(
            decision.network, decision.source, decision.sink, warm_start=True
        )
        assert value == pytest.approx(reference, abs=1e-9)
        assert engine.warm_starts_used == 0
        assert engine.cold_starts == 1
        assert engine.warm_start_fallbacks == 1
        assert engine.stats()["warm_start_fallback_reason"]

    def test_warm_capable_flags(self):
        assert FlowEngine("dinic").warm_capable
        assert FlowEngine("push-relabel").warm_capable
        assert not FlowEngine("edmonds-karp").warm_capable


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestWarmStartConfig:
    def test_flow_config_validates_warm_start(self):
        with pytest.raises(ConfigError):
            FlowConfig(warm_start="yes")
        assert FlowConfig().warm_start is True
        assert FlowConfig(warm_start=False).warm_start is False

    def test_flow_config_resolve_direct_field(self):
        """On FlowConfig itself warm_start is a plain field, not an alias."""
        cfg = FlowConfig.resolve(None, warm_start=False)
        assert cfg.warm_start is False
        assert cfg.solver == "dinic"

    def test_exact_config_resolve_warm_start_alias(self):
        cfg = ExactConfig.resolve(None, warm_start=False)
        assert cfg.flow.warm_start is False
        assert cfg.flow.solver == "dinic"
        # Composes with the flow_solver alias on one call.
        cfg = ExactConfig.resolve(None, flow_solver="push-relabel", warm_start=False)
        assert cfg.flow.solver == "push-relabel"
        assert cfg.flow.warm_start is False

    def test_approx_config_rejects_warm_start(self):
        with pytest.raises(ConfigError):
            ApproxConfig.resolve(None, warm_start=False)

    def test_session_drops_warm_start_for_non_flow_methods(self):
        """A cold-start request is vacuously satisfied by min-cut-free methods.

        This keeps e.g. ``dds-repro find --cold-start`` working with
        ``--method auto`` regardless of which side of the exact/approx size
        threshold the graph lands on.
        """
        session = DDSSession(complete_bipartite_digraph(2, 3))
        result = session.densest_subgraph("peel-approx", warm_start=False)
        assert result.method == "peel-approx"
        assert "flow_solver_ignored" not in result.stats
        assert session.cache_stats()["warm_starts_used"] == 0


# ----------------------------------------------------------------------
# Session integration
# ----------------------------------------------------------------------
class TestSessionWarmStarts:
    def test_cache_stats_reports_warm_counters(self):
        session = DDSSession(load_dataset("foodweb-tiny"))
        session.densest_subgraph("core-exact")
        stats = session.cache_stats()
        assert stats["warm_starts_used"] >= 1
        assert stats["warm_starts_used"] + stats["cold_starts"] == stats["flow_calls"]
        assert stats["warm_start_fallbacks"] == 0

    def test_repeated_fixed_ratio_probe_warm_starts_from_cache(self):
        """The second probe at a ratio reuses the cached network *and* its flow."""
        session = DDSSession(gnm_random_digraph(10, 40, seed=8))
        first = session.fixed_ratio(1.0, tolerance=1e-2)
        assert first.networks_built == 1
        second = session.fixed_ratio(1.0, tolerance=1e-3)
        assert second.networks_built == 0
        assert second.networks_reused == 1
        # Every solve of the second probe continued from cached residual flow.
        assert second.cold_starts == 0
        assert second.warm_starts_used == second.flow_calls

    def test_session_cold_configuration(self):
        session = DDSSession(load_dataset("foodweb-tiny"), flow=FlowConfig(warm_start=False))
        session.densest_subgraph("core-exact")
        stats = session.cache_stats()
        assert stats["warm_starts_used"] == 0
        assert stats["cold_starts"] == stats["flow_calls"]

    def test_warm_and_cold_queries_are_distinct_cache_entries(self):
        session = DDSSession(load_dataset("foodweb-tiny"))
        warm = session.densest_subgraph("core-exact")
        cold = session.densest_subgraph("core-exact", warm_start=False)
        assert cold.stats["result_cache_hit"] is False
        assert warm.density == cold.density
        assert sorted(warm.s_nodes) == sorted(cold.s_nodes)

    def test_unsupported_methods_normalise_warm_start_away(self):
        """supports_warm_start=False methods fold warm/cold into one cache key."""
        session = DDSSession(complete_bipartite_digraph(2, 3))
        first = session.densest_subgraph("brute-force")
        assert first.stats["result_cache_hit"] is False
        # An explicitly warm config is normalised to the same (cold) entry.
        repeat = session.densest_subgraph(
            "brute-force", config=ExactConfig(flow=FlowConfig(warm_start=True))
        )
        assert repeat.stats["result_cache_hit"] is True

    def test_config_only_flow_change_does_not_warn_solver_ignored(self):
        """Flipping warm_start (default solver) is not a solver request."""
        import warnings as warnings_module

        session = DDSSession(complete_bipartite_digraph(2, 3))
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", UserWarning)
            result = session.densest_subgraph(
                "brute-force", config=ExactConfig(flow=FlowConfig(warm_start=False))
            )
        assert "flow_solver_ignored" not in result.stats

    def test_explicit_solver_on_non_flow_method_still_warns_once(self):
        session = DDSSession(complete_bipartite_digraph(2, 3))
        config = ExactConfig(flow=FlowConfig(solver="push-relabel"))
        with pytest.warns(UserWarning, match="flow_solver='push-relabel' is ignored"):
            result = session.densest_subgraph("brute-force", config=config)
        assert result.stats["flow_solver_ignored"] == {
            "flow_solver": "push-relabel",
            "method": "brute-force",
        }
        # Same (method, flow_solver, warm_start) key: no second warning.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", UserWarning)
            session.densest_subgraph("brute-force", config=config)


# ----------------------------------------------------------------------
# Push-relabel height reuse (labels survive warm retunes)
# ----------------------------------------------------------------------
class TestHeightReuse:
    def _pr_config(self, warm: bool = True) -> ExactConfig:
        return _config("push-relabel", warm)

    def test_warm_solves_reuse_heights_and_match_cold(self):
        graph = load_dataset("foodweb-tiny")
        warm = DDSSession(graph, flow=FlowConfig(solver="push-relabel"))
        warm_result = warm.densest_subgraph("core-exact")
        cold = DDSSession(graph, flow=FlowConfig(solver="push-relabel", warm_start=False))
        cold_result = cold.densest_subgraph("core-exact")
        assert warm_result.stats["height_reuses"] >= 1
        assert cold_result.stats["height_reuses"] == 0
        # Height reuse is a work optimisation, never an answer change.
        assert warm_result.density == cold_result.density
        assert sorted(map(str, warm_result.s_nodes)) == sorted(map(str, cold_result.s_nodes))
        assert sorted(map(str, warm_result.t_nodes)) == sorted(map(str, cold_result.t_nodes))
        assert warm_result.stats["arcs_pushed"] < cold_result.stats["arcs_pushed"]

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_repeated_retuned_solves_stay_exact(self, seed):
        """Sweep guesses up and down on one network: every warm solve with
        reused (repaired) heights must match a cold solve from scratch."""
        graph = gnm_random_digraph(12, 50, seed=seed)
        subproblem = STSubproblem.from_graph(graph)
        network = build_decision_network(subproblem, 1.0, 1.0)
        engine = FlowEngine("push-relabel")
        guesses = [1.0, 2.5, 0.75, 3.5, 0.25, 2.0]
        for index, guess in enumerate(guesses):
            network.retune(1.0, guess, warm_start=True)
            value, _ = engine.min_cut(
                network.network, network.source, network.sink, warm_start=index > 0
            )
            reference = build_decision_network(subproblem, 1.0, guess)
            cold_engine = FlowEngine("push-relabel")
            expected, _ = cold_engine.min_cut(reference.network, reference.source, reference.sink)
            assert value == pytest.approx(expected, abs=1e-9)
        assert engine.height_reuses >= len(guesses) - 1

    def test_heights_stash_dropped_on_topology_change(self):
        network = FlowNetwork(3)
        network.add_edge(0, 1, 2.0)
        network.add_edge(1, 2, 1.0)
        engine = FlowEngine("push-relabel")
        engine.min_cut(network, 0, 2)
        assert network.stashed_heights(0, 2) is not None
        network.add_node()
        assert network.stashed_heights(0, 2) is None

    def test_dinic_never_reports_height_reuse(self):
        session = DDSSession(load_dataset("foodweb-tiny"))  # dinic default
        result = session.densest_subgraph("core-exact")
        assert result.stats["height_reuses"] == 0
        assert session.cache_stats()["height_reuses"] == 0
