"""End-to-end integration tests: datasets -> algorithms -> consistent answers."""

from __future__ import annotations

import math

import pytest

from repro.core.api import densest_subgraph
from repro.core.bounds import core_based_bounds
from repro.core.density import directed_density
from repro.datasets.casestudy import hub_authority_case, precision_recall, rating_fraud_case
from repro.datasets.registry import dataset_names, load_dataset
from repro.graph.io import read_edge_list, write_edge_list


class TestSmallDatasetsExact:
    """On every small dataset the three exact algorithms agree, and the
    approximations respect their guarantees against the exact optimum."""

    @pytest.mark.parametrize("name", ["foodweb-tiny", "social-tiny"])
    def test_exact_algorithms_agree(self, name):
        graph = load_dataset(name)
        flow = densest_subgraph(graph, method="flow-exact")
        dc = densest_subgraph(graph, method="dc-exact")
        core = densest_subgraph(graph, method="core-exact")
        assert dc.density == pytest.approx(flow.density, abs=1e-9)
        assert core.density == pytest.approx(flow.density, abs=1e-9)

    @pytest.mark.parametrize("name", dataset_names("small"))
    def test_approximations_respect_guarantees(self, name):
        graph = load_dataset(name)
        exact = densest_subgraph(graph, method="core-exact")
        core = densest_subgraph(graph, method="core-approx")
        peel = densest_subgraph(graph, method="peel-approx", epsilon=0.5)
        assert core.density >= exact.density / 2.0 - 1e-9
        assert peel.density >= exact.density / (2.0 * math.sqrt(1.5)) - 1e-9
        assert core.density <= exact.density + 1e-9
        assert peel.density <= exact.density + 1e-9

    @pytest.mark.parametrize("name", dataset_names("small"))
    def test_core_bounds_bracket_exact_density(self, name):
        graph = load_dataset(name)
        exact = densest_subgraph(graph, method="core-exact")
        bounds = core_based_bounds(graph)
        assert bounds.lower <= exact.density + 1e-9
        assert exact.density <= bounds.upper + 1e-9


class TestMediumDatasetsApprox:
    @pytest.mark.parametrize("name", ["amazon-medium", "planted-medium"])
    def test_approximations_are_consistent(self, name):
        graph = load_dataset(name)
        core = densest_subgraph(graph, method="core-approx")
        peel = densest_subgraph(graph, method="peel-approx")
        # Both must report densities consistent with their own (S, T) pair.
        for result in (core, peel):
            assert result.density == pytest.approx(
                directed_density(graph, result.s_nodes, result.t_nodes)
            )
        # The 2-approximations can differ, but never by more than the combined
        # guarantee factor.
        assert max(core.density, peel.density) <= 2.0 * min(core.density, peel.density) + 1e-9

    def test_planted_medium_block_found(self):
        graph = load_dataset("planted-medium")
        result = densest_subgraph(graph, method="core-approx")
        # The planted 15x25 block with p=0.7 has expected density ~13.6, far
        # above the sparse background, so the core approximation must report
        # a density in that ballpark.
        assert result.density > 8.0


class TestCaseStudyRecovery:
    def test_rating_fraud_roles_recovered(self):
        case = rating_fraud_case(seed=7)
        result = densest_subgraph(case.graph, method="core-approx")
        s_precision, s_recall = precision_recall(result.s_nodes, case.true_s)
        t_precision, t_recall = precision_recall(result.t_nodes, case.true_t)
        assert s_recall >= 0.9
        assert t_recall >= 0.9
        assert s_precision >= 0.8
        assert t_precision >= 0.8

    def test_hub_authority_roles_recovered(self):
        case = hub_authority_case(seed=8)
        result = densest_subgraph(case.graph, method="core-approx")
        _, hub_recall = precision_recall(result.s_nodes, case.true_s)
        _, authority_recall = precision_recall(result.t_nodes, case.true_t)
        assert hub_recall >= 0.9
        assert authority_recall >= 0.8


class TestRoundTripPipeline:
    def test_write_read_solve(self, tmp_path):
        graph = load_dataset("foodweb-tiny")
        path = tmp_path / "foodweb.tsv"
        write_edge_list(graph, path)
        reloaded = read_edge_list(path)
        original = densest_subgraph(graph, method="core-exact")
        roundtrip = densest_subgraph(reloaded, method="core-exact")
        assert roundtrip.density == pytest.approx(original.density)
