"""Loopback tests for the network tier: daemon, client, remote executor.

Pins the acceptance criteria of the ``repro.net`` subsystem:

* **Cross-machine bit-identity** — a batch routed to loopback
  :class:`~repro.net.ShardDaemon` s returns ``payload_answer()`` dicts
  bit-identical to the local thread-path run, on first contact (graph
  ships over the wire) and on re-contact (session resident in the LRU).
* **Partition handling** — a daemon killed mid-batch costs only its
  lanes: the client retries on fresh connections with backoff, then the
  executor solves the lanes inline, bit-identically, with the failure
  recorded in ``BatchReport.executor_stats``.  A transient drop (one
  connection closed without a response) is absorbed by the retry alone.
* **Error semantics** — a *semantic* remote failure is never retried:
  the lane re-runs inline so the genuine typed error surfaces exactly
  like a thread lane's.
* **Hygiene** — daemons hold zero client connections after shutdown.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.datasets.registry import load_dataset
from repro.exceptions import AlgorithmError, ConfigError, NetError
from repro.graph.digraph import DiGraph
from repro.net import (
    RemoteOpError,
    ShardClient,
    ShardClientPool,
    ShardDaemon,
    graph_to_wire,
    parse_host_port,
)
from repro.service import BatchExecutor, SessionStore, payload_answer, plan_batch

DEFAULT_DATASET = "foodweb-tiny"
OTHER_DATASET = "social-tiny"

MIXED = [
    {"query": "densest", "method": "core-exact"},
    {"query": "fixed-ratio", "ratio": 1.0},
    {"query": "summary"},
    {"query": "densest", "method": "core-approx", "dataset": OTHER_DATASET},
    {"query": "top-k", "k": 2, "dataset": OTHER_DATASET},
]


def _plan(queries=MIXED):
    return plan_batch(queries, default_graph_key=DEFAULT_DATASET)


def _answers(report) -> list:
    return [payload_answer(payload) for payload in report.results_in_input_order()]


@pytest.fixture(scope="module")
def local_answers():
    return _answers(BatchExecutor(load_dataset).execute(_plan()))


def _hosts(*daemons: ShardDaemon) -> list[str]:
    return [daemon.address for daemon in daemons]


# ----------------------------------------------------------------------
# client plumbing
# ----------------------------------------------------------------------
class TestClientPlumbing:
    def test_parse_host_port(self):
        assert parse_host_port("localhost:8080") == ("localhost", 8080)
        assert parse_host_port(" 10.0.0.1:1 ") == ("10.0.0.1", 1)
        assert parse_host_port("box", default_port=99) == ("box", 99)
        for bad in ("", ":80", "box:", "box:notaport", "box:0", "box:70000", "box"):
            with pytest.raises(ConfigError):
                parse_host_port(bad)

    def test_backoff_is_bounded_exponential_with_jitter(self):
        client = ShardClient(
            "127.0.0.1", 1, backoff_base=0.1, backoff_max=0.3, rng=random.Random(7)
        )
        for attempt in range(6):
            ceiling = min(0.3, 0.1 * 2**attempt)
            delay = client.backoff_delay(attempt)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_exhausted_ladder_raises_neterror_and_counts(self):
        # A freshly-bound-then-closed port: nothing listens there.
        daemon = ShardDaemon()
        daemon.start()
        daemon.shutdown()
        client = ShardClient(
            daemon.host, daemon.port, max_retries=2, backoff_base=0.001
        )
        with pytest.raises(NetError, match="3 attempts"):
            client.ping()
        stats = client.stats()
        assert stats["retries"] == 2
        assert stats["failures"] == 1
        assert stats["requests"] == 0

    def test_pool_routes_by_shard_and_aggregates(self):
        pool = ShardClientPool(["a:1", "b:2"])
        assert len(pool) == 2
        assert pool.addresses == ["a:1", "b:2"]
        assert pool.client_for(0).address == "a:1"
        assert pool.client_for(1).address == "b:2"
        assert pool.client_for(3).address == "b:2"
        assert pool.aggregate_stats()["requests"] == 0
        with pytest.raises(ConfigError):
            ShardClientPool([])


# ----------------------------------------------------------------------
# one daemon, one client
# ----------------------------------------------------------------------
class TestDaemonOps:
    def test_ping_and_stats(self):
        with ShardDaemon() as daemon:
            client = ShardClient(daemon.host, daemon.port)
            pong = client.ping(echo="hello")
            assert pong["pong"] is True
            assert pong["echo"] == "hello"
            assert pong["sessions_resident"] == 0
            stats = daemon.daemon_stats()
            assert stats["requests"] == {"ping": 1}
            assert stats["bytes_in"] > 0 and stats["bytes_out"] > 0
            assert stats["connections_accepted"] == 1

    def test_solve_builds_then_reuses_resident_session(self):
        graph = load_dataset(DEFAULT_DATASET)
        entries = [(0, {"query": "densest", "method": "core-exact"})]
        with ShardDaemon() as daemon:
            client = ShardClient(daemon.host, daemon.port)
            first = client.solve_lane(
                "g", graph.content_fingerprint(), entries, graph=graph_to_wire(graph)
            )
            assert first["session_cache_hit"] is False
            # Resident now: no graph document needed.
            second = client.solve_lane("g", graph.content_fingerprint(), entries)
            assert second["session_cache_hit"] is True
            assert payload_answer(first["executions"][0]["payload"]) == payload_answer(
                second["executions"][0]["payload"]
            )
            assert second["stats"]["result_cache_hits"] >= 1
            stats = daemon.daemon_stats()
            assert stats["session_cache_hits"] == 1
            assert stats["session_cache_misses"] == 1
            assert stats["sessions_resident"] == 1

    def test_missing_graph_without_document_errors_remotely(self):
        graph = load_dataset(DEFAULT_DATASET)
        with ShardDaemon() as daemon:
            client = ShardClient(daemon.host, daemon.port)
            with pytest.raises(RemoteOpError, match="not resident"):
                client.solve_lane("g", graph.content_fingerprint(), [(0, {})])

    def test_semantic_error_is_not_retried(self):
        graph = load_dataset(DEFAULT_DATASET)
        with ShardDaemon() as daemon:
            client = ShardClient(daemon.host, daemon.port, max_retries=3)
            with pytest.raises(RemoteOpError) as excinfo:
                client.solve_lane(
                    "g",
                    graph.content_fingerprint(),
                    [(0, {"query": "densest", "method": "no-such-method"})],
                    graph=graph_to_wire(graph),
                )
            assert excinfo.value.remote_type == "AlgorithmError"
            assert client.stats()["retries"] == 0
            assert daemon.daemon_stats()["errors"] == 1

    def test_lru_evicts_to_capacity(self):
        with ShardDaemon(max_sessions=1) as daemon:
            client = ShardClient(daemon.host, daemon.port)
            for name in (DEFAULT_DATASET, OTHER_DATASET):
                graph = load_dataset(name)
                client.solve_lane(
                    name,
                    graph.content_fingerprint(),
                    [(0, {"query": "summary"})],
                    graph=graph_to_wire(graph),
                )
            stats = daemon.daemon_stats()
            assert stats["sessions_resident"] == 1
            assert stats["sessions_evicted"] == 1

    def test_warm_and_inventory_with_store(self, tmp_path):
        graph = load_dataset(DEFAULT_DATASET)
        with ShardDaemon(SessionStore(tmp_path / "store")) as daemon:
            client = ShardClient(daemon.host, daemon.port)
            warmed = client.warm(
                graph_to_wire(graph), methods=["core-exact"], max_core=True
            )
            assert warmed["fingerprint"] == graph.content_fingerprint()
            assert "core-exact" in warmed["computed"]
            assert "max-core" in warmed["computed"]
            assert warmed["saved"].get("results_saved", 0) >= 1
            inventory = client.inventory()
            assert inventory["store_root"] == str(tmp_path / "store")
            assert len(inventory["store"]) == 1
            assert inventory["daemon"]["requests"]["warm"] == 1

    def test_evicted_sessions_are_saved_to_the_store(self, tmp_path):
        store_root = tmp_path / "store"
        with ShardDaemon(SessionStore(store_root), max_sessions=1) as daemon:
            client = ShardClient(daemon.host, daemon.port)
            for name in (DEFAULT_DATASET, OTHER_DATASET):
                graph = load_dataset(name)
                client.solve_lane(
                    name,
                    graph.content_fingerprint(),
                    [(0, {"query": "densest", "method": "core-exact"})],
                    graph=graph_to_wire(graph),
                )
        # Both graphs persisted: the resident one on save, the evicted one
        # at eviction time.
        assert len(SessionStore(store_root).inventory()) == 2

    def test_shutdown_is_idempotent_and_leaves_no_connections(self):
        daemon = ShardDaemon()
        daemon.start()
        client = ShardClient(daemon.host, daemon.port)
        client.ping()
        assert client.shutdown_daemon()["stopping"] is True
        daemon.join(10)
        daemon.shutdown()
        assert daemon.open_connections() == 0

    def test_start_twice_raises(self):
        with ShardDaemon() as daemon:
            with pytest.raises(NetError, match="already started"):
                daemon.start()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ShardDaemon(max_sessions=0)
        with pytest.raises(ConfigError):
            ShardDaemon(max_workers=0)
        with pytest.raises(ConfigError):
            ShardDaemon(fault_injection={"kind": "explode"})

    def test_concurrent_clients_share_one_daemon(self):
        graph = load_dataset(DEFAULT_DATASET)
        wire = graph_to_wire(graph)
        fingerprint = graph.content_fingerprint()
        answers: list = []
        errors: list = []

        def probe():
            try:
                client = ShardClient(*parse_host_port(address))
                result = client.solve_lane(
                    "g",
                    fingerprint,
                    [(0, {"query": "densest", "method": "core-exact"})],
                    graph=wire,
                )
                answers.append(payload_answer(result["executions"][0]["payload"]))
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        with ShardDaemon(max_workers=4) as daemon:
            address = daemon.address
            threads = [threading.Thread(target=probe) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
        assert not errors
        assert len(answers) == 4
        assert all(answer == answers[0] for answer in answers)


# ----------------------------------------------------------------------
# the remote executor
# ----------------------------------------------------------------------
class TestRemoteExecutor:
    def test_two_daemon_parity_and_residency(self, local_answers):
        with ShardDaemon() as d1, ShardDaemon() as d2:
            hosts = _hosts(d1, d2)
            first = BatchExecutor(load_dataset, remote_hosts=hosts).execute(_plan())
            assert _answers(first) == local_answers
            stats = first.executor_stats
            assert stats["mode"] == "remote"
            assert stats["lanes_remote"] == 2
            assert stats["lanes_inline"] == 0
            assert stats["remote_failures"] == 0
            assert stats["degraded_lanes"] == []
            # Same hosts again: daemons serve from resident sessions.
            second = BatchExecutor(load_dataset, remote_hosts=hosts).execute(_plan())
            assert _answers(second) == local_answers
            hits = sum(
                daemon.daemon_stats()["session_cache_hits"] for daemon in (d1, d2)
            )
            assert hits == 2
        assert d1.open_connections() == 0
        assert d2.open_connections() == 0

    def test_report_shape_matches_local(self, local_answers):
        with ShardDaemon() as daemon:
            report = BatchExecutor(
                load_dataset, remote_hosts=_hosts(daemon)
            ).execute(_plan())
        assert _answers(report) == local_answers
        assert set(report.session_stats) == {DEFAULT_DATASET, OTHER_DATASET}
        assert report.aggregate_stats()["queries"] == len(MIXED)
        assert all(row["worker"] == 0 for row in report.timings())

    def test_executor_flow_config_reaches_daemon_built_sessions(self):
        # The executor's flow config ships with the solve, so the daemon's
        # session reports the same solver metadata the inline/local path
        # would — the parity gates compare full payload_answer() dicts.
        plan = _plan()
        local = BatchExecutor(load_dataset, flow="dinic").execute(plan)
        with ShardDaemon() as daemon:
            remote = BatchExecutor(
                load_dataset, flow="dinic", remote_hosts=_hosts(daemon)
            ).execute(plan)
        assert _answers(remote) == _answers(local)
        solvers = {
            payload.get("flow_solver")
            for payload in remote.results_in_input_order()
            if "flow_solver" in payload
        }
        assert solvers == {"dinic"}

    def test_daemon_flow_override_beats_the_wire_config(self):
        # A serve-time --flow-solver override is authoritative for the
        # sessions that daemon builds, whatever the requesters send.
        with ShardDaemon(flow="dinic") as daemon:
            report = BatchExecutor(
                load_dataset, flow="auto", remote_hosts=_hosts(daemon)
            ).execute(_plan())
        solvers = {
            payload.get("flow_solver")
            for payload in report.results_in_input_order()
            if "flow_solver" in payload
        }
        assert solvers == {"dinic"}

    def test_killed_daemon_falls_back_inline_bit_identically(self, local_answers):
        # The first solve the faulted daemon receives takes the whole daemon
        # down without a response — the loopback stand-in for SIGKILL.
        with ShardDaemon(
            fault_injection={"op": "solve", "kind": "exit", "times": 1}
        ) as daemon:
            report = BatchExecutor(
                load_dataset, remote_hosts=_hosts(daemon), max_retries=1
            ).execute(_plan())
        assert _answers(report) == local_answers
        stats = report.executor_stats
        assert stats["remote_failures"] >= 1
        assert stats["lanes_inline"] >= 1
        assert stats["client"]["retries"] >= 1
        assert set(stats["degraded_lanes"]) <= {DEFAULT_DATASET, OTHER_DATASET}
        degraded_rows = [row for row in report.timings() if row.get("degraded")]
        assert degraded_rows and all(row["attempts"] == 2 for row in degraded_rows)

    def test_transient_drop_is_absorbed_by_retry_alone(self, local_answers):
        # One connection dropped without a response; the retry ladder's
        # fresh connection succeeds, so no lane degrades.
        with ShardDaemon(
            fault_injection={"op": "solve", "kind": "close", "times": 1}
        ) as daemon:
            report = BatchExecutor(
                load_dataset, remote_hosts=_hosts(daemon), max_retries=2
            ).execute(_plan())
        assert _answers(report) == local_answers
        stats = report.executor_stats
        assert stats["lanes_inline"] == 0
        assert stats["remote_failures"] == 0
        assert stats["degraded_lanes"] == []
        assert stats["client"]["retries"] >= 1

    def test_semantic_remote_error_surfaces_the_typed_error(self):
        plan = plan_batch(
            [{"query": "densest", "method": "no-such-method"}],
            default_graph_key=DEFAULT_DATASET,
        )
        with ShardDaemon() as daemon:
            with pytest.raises(AlgorithmError):
                BatchExecutor(load_dataset, remote_hosts=_hosts(daemon)).execute(plan)

    def test_unwirable_lane_runs_inline(self, local_answers):
        tuple_graph = DiGraph.from_edges([((0, 1), (1, 2)), ((1, 2), (0, 1))])
        graphs = {
            DEFAULT_DATASET: load_dataset(DEFAULT_DATASET),
            "tuples": tuple_graph,
        }
        plan = plan_batch(
            [
                {"query": "densest", "method": "core-exact"},
                {"query": "summary", "dataset": "tuples"},
            ],
            default_graph_key=DEFAULT_DATASET,
        )
        local = BatchExecutor(graphs).execute(plan)
        with ShardDaemon() as daemon:
            report = BatchExecutor(graphs, remote_hosts=_hosts(daemon)).execute(plan)
        assert _answers(report) == _answers(local)
        stats = report.executor_stats
        assert stats["unwirable_lanes"] == 1
        assert stats["lanes_remote"] == 1
        assert stats["degraded_lanes"] == ["tuples"]

    def test_remote_hosts_validation(self):
        with pytest.raises(ConfigError):
            BatchExecutor(load_dataset, remote_hosts=[])
        with pytest.raises(ConfigError):
            BatchExecutor(load_dataset, remote_hosts=["nope"])
        with pytest.raises(ConfigError):
            BatchExecutor(load_dataset, remote_hosts=["a:1"], process_pool=True)

    def test_store_backed_daemons_persist_answers(self, tmp_path, local_answers):
        store_root = tmp_path / "shard0"
        with ShardDaemon(SessionStore(store_root)) as daemon:
            report = BatchExecutor(
                load_dataset, remote_hosts=_hosts(daemon)
            ).execute(_plan())
        assert _answers(report) == local_answers
        assert report.store_stats  # daemon-side save counters came home
        assert len(SessionStore(store_root).inventory()) == 2
