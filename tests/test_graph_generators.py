"""Unit tests for the random-graph generators."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import AlgorithmError
from repro.graph.generators import (
    chung_lu_digraph,
    complete_bipartite_digraph,
    cycle_digraph,
    expected_planted_density,
    gnm_random_digraph,
    gnp_random_digraph,
    path_digraph,
    planted_dds_digraph,
    powerlaw_digraph,
    rmat_digraph,
    star_digraph,
)


class TestUniformGenerators:
    def test_gnp_zero_probability(self):
        g = gnp_random_digraph(10, 0.0, seed=1)
        assert g.num_nodes == 10
        assert g.num_edges == 0

    def test_gnp_full_probability(self):
        g = gnp_random_digraph(5, 1.0, seed=1)
        assert g.num_edges == 5 * 4

    def test_gnp_determinism(self):
        a = gnp_random_digraph(20, 0.2, seed=42)
        b = gnp_random_digraph(20, 0.2, seed=42)
        assert set(a.edges()) == set(b.edges())

    def test_gnp_rejects_bad_probability(self):
        with pytest.raises(AlgorithmError):
            gnp_random_digraph(5, 1.5)

    def test_gnm_exact_edge_count(self):
        g = gnm_random_digraph(15, 60, seed=2)
        assert g.num_nodes == 15
        assert g.num_edges == 60

    def test_gnm_caps_at_max_edges(self):
        g = gnm_random_digraph(4, 100, seed=2)
        assert g.num_edges == 4 * 3

    def test_gnm_no_self_loops(self):
        g = gnm_random_digraph(10, 50, seed=3)
        assert all(u != v for u, v in g.edges())


class TestHeavyTailedGenerators:
    def test_chung_lu_respects_zero_weights(self):
        g = chung_lu_digraph([0.0, 5.0, 5.0], [5.0, 5.0, 0.0], seed=1)
        assert g.out_degree(0) == 0
        assert g.in_degree(2) == 0

    def test_chung_lu_length_mismatch(self):
        with pytest.raises(AlgorithmError):
            chung_lu_digraph([1.0], [1.0, 2.0])

    def test_powerlaw_reasonable_size(self):
        g = powerlaw_digraph(200, average_degree=4.0, exponent=2.5, seed=7)
        assert g.num_nodes == 200
        # Expected edge count is ~ n * average_degree (heavy-tailed, so allow slack).
        assert 100 <= g.num_edges <= 3000

    def test_powerlaw_determinism(self):
        a = powerlaw_digraph(100, seed=11)
        b = powerlaw_digraph(100, seed=11)
        assert set(a.edges()) == set(b.edges())

    def test_powerlaw_rejects_bad_exponent(self):
        with pytest.raises(AlgorithmError):
            powerlaw_digraph(10, exponent=0.9)

    def test_rmat_size_and_skew(self):
        g = rmat_digraph(8, edge_factor=8, seed=5)
        assert g.num_nodes == 256
        assert 0 < g.num_edges <= 8 * 256
        # The recursive-matrix construction concentrates edges on low ids.
        assert g.max_out_degree() >= 4

    def test_rmat_partition_must_sum_to_one(self):
        with pytest.raises(AlgorithmError):
            rmat_digraph(4, partition=(0.5, 0.5, 0.5, 0.5))


class TestPlantedGenerator:
    def test_planted_block_is_dense(self):
        graph, planted_s, planted_t = planted_dds_digraph(
            n_background=50, background_degree=2.0, s_size=5, t_size=6, p_dense=1.0, seed=3
        )
        s_idx = graph.indices_of(planted_s)
        t_idx = graph.indices_of(planted_t)
        assert graph.count_edges_between(s_idx, t_idx) == 5 * 6
        assert graph.num_nodes == 50 + 5 + 6

    def test_expected_planted_density(self):
        assert expected_planted_density(4, 9, 1.0) == pytest.approx(6.0)
        assert expected_planted_density(0, 9, 1.0) == 0.0
        assert expected_planted_density(4, 9, 0.5) == pytest.approx(3.0)

    def test_planted_density_dominates_background(self):
        graph, planted_s, planted_t = planted_dds_digraph(
            n_background=80, background_degree=2.0, s_size=6, t_size=8, p_dense=0.95, seed=9
        )
        s_idx = graph.indices_of(planted_s)
        t_idx = graph.indices_of(planted_t)
        block_density = graph.count_edges_between(s_idx, t_idx) / math.sqrt(6 * 8)
        overall_density = graph.num_edges / math.sqrt(graph.num_nodes**2)
        assert block_density > 2 * overall_density


class TestDeterministicFamilies:
    def test_complete_bipartite(self):
        g = complete_bipartite_digraph(3, 4)
        assert g.num_nodes == 7
        assert g.num_edges == 12
        assert g.out_degree("s0") == 4
        assert g.in_degree("t0") == 3

    def test_star_outward_and_inward(self):
        out_star = star_digraph(5, outward=True)
        in_star = star_digraph(5, outward=False)
        assert out_star.out_degree("hub") == 5
        assert in_star.in_degree("hub") == 5

    def test_path_and_cycle(self):
        assert path_digraph(5).num_edges == 4
        assert cycle_digraph(5).num_edges == 5
        assert cycle_digraph(1).num_edges == 0
