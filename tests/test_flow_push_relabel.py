"""Unit and property tests for the push–relabel max-flow solver."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FlowError
from repro.flow.dinic import dinic_max_flow
from repro.flow.network import FlowNetwork
from repro.flow.push_relabel import PushRelabelSolver, push_relabel_max_flow


def _random_network(n: int, m: int, seed: int) -> FlowNetwork:
    rng = random.Random(seed)
    network = FlowNetwork(n)
    for _ in range(m):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            network.add_edge(u, v, rng.randint(1, 10))
    return network


class TestPushRelabelBasics:
    def test_single_path(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3.0)
        net.add_edge(1, 2, 2.0)
        net.add_edge(2, 3, 5.0)
        assert push_relabel_max_flow(net, 0, 3) == pytest.approx(2.0)

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3.0)
        net.add_edge(1, 3, 3.0)
        net.add_edge(0, 2, 4.0)
        net.add_edge(2, 3, 2.0)
        assert push_relabel_max_flow(net, 0, 3) == pytest.approx(5.0)

    def test_classic_textbook_network(self):
        net = FlowNetwork(6)
        net.add_edge(0, 1, 16)
        net.add_edge(0, 2, 13)
        net.add_edge(1, 2, 10)
        net.add_edge(2, 1, 4)
        net.add_edge(1, 3, 12)
        net.add_edge(3, 2, 9)
        net.add_edge(2, 4, 14)
        net.add_edge(4, 3, 7)
        net.add_edge(3, 5, 20)
        net.add_edge(4, 5, 4)
        assert push_relabel_max_flow(net, 0, 5) == pytest.approx(23.0)

    def test_disconnected_sink(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        assert push_relabel_max_flow(net, 0, 2) == pytest.approx(0.0)

    def test_source_equals_sink_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(FlowError):
            PushRelabelSolver(net, 1, 1)

    def test_min_cut_side(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 10.0)
        net.add_edge(2, 3, 10.0)
        solver = PushRelabelSolver(net, 0, 3)
        flow = solver.max_flow()
        side = solver.min_cut_source_side()
        assert flow == pytest.approx(1.0)
        assert 0 in side
        assert 3 not in side


class TestPushRelabelAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_dinic_on_random_networks(self, seed):
        net_a = _random_network(9, 28, seed=seed)
        net_b = _random_network(9, 28, seed=seed)
        assert push_relabel_max_flow(net_a, 0, 8) == pytest.approx(dinic_max_flow(net_b, 0, 8))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_dinic(self, seed):
        net_a = _random_network(7, 18, seed=seed)
        net_b = _random_network(7, 18, seed=seed)
        assert push_relabel_max_flow(net_a, 0, 6) == pytest.approx(dinic_max_flow(net_b, 0, 6))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_min_cut_matches_flow_value(self, seed):
        net = _random_network(8, 22, seed=seed)
        solver = PushRelabelSolver(net, 0, 7)
        flow = solver.max_flow()
        source_side = set(solver.min_cut_source_side())
        net.reset_flow()
        crossing = sum(
            arc.capacity
            for arc in net.arcs()
            if arc.source in source_side and arc.target not in source_side
        )
        assert flow == pytest.approx(crossing)
