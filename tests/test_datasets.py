"""Tests for the dataset registry and case-study generators."""

from __future__ import annotations

import pytest

from repro.datasets.casestudy import hub_authority_case, precision_recall, rating_fraud_case
from repro.datasets.registry import (
    dataset_names,
    dataset_specs,
    exact_dataset_names,
    large_dataset_names,
    load_dataset,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_all_specs_have_metadata(self):
        for spec in dataset_specs():
            assert spec.name
            assert spec.tier in {"small", "medium", "large"}
            assert spec.description
            assert spec.paper_analogue

    def test_tier_filters(self):
        assert set(exact_dataset_names()) == set(dataset_names("small"))
        assert set(large_dataset_names()) == set(dataset_names("medium")) | set(
            dataset_names("large")
        )
        assert set(dataset_names()) >= set(exact_dataset_names())

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("does-not-exist")

    def test_load_is_deterministic(self):
        a = load_dataset("foodweb-tiny")
        b = load_dataset("foodweb-tiny")
        assert set(a.edges()) == set(b.edges())

    def test_load_returns_independent_copies(self):
        a = load_dataset("foodweb-tiny")
        edges_before = load_dataset("foodweb-tiny").num_edges
        a.add_edge("brand-new-u", "brand-new-v")
        assert load_dataset("foodweb-tiny").num_edges == edges_before

    @pytest.mark.parametrize("name", dataset_names("small"))
    def test_small_datasets_materialise(self, name):
        graph = load_dataset(name)
        assert graph.num_edges > 0
        assert graph.num_nodes <= 400

    def test_medium_and_large_sizes_are_tiered(self):
        small = max(load_dataset(name).num_nodes for name in dataset_names("small"))
        medium = min(load_dataset(name).num_nodes for name in dataset_names("medium"))
        assert small <= medium


class TestCaseStudies:
    def test_rating_fraud_structure(self):
        case = rating_fraud_case(n_users=50, n_products=30, n_fraud_users=5, n_boosted_products=4, seed=1)
        assert case.graph.num_edges > 0
        assert len(case.true_s) == 5
        assert len(case.true_t) == 4
        # The graph is bipartite user -> product: products never rate.
        for product in case.true_t:
            assert case.graph.out_degree(product) == 0

    def test_hub_authority_structure(self):
        case = hub_authority_case(n_pages=60, n_hubs=4, n_authorities=6, seed=2)
        assert len(case.true_s) == 4
        assert len(case.true_t) == 6
        assert case.graph.num_nodes == 60

    def test_precision_recall(self):
        precision, recall = precision_recall(["a", "b", "c"], ["b", "c", "d", "e"])
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(0.5)
        assert precision_recall([], ["a"]) == (0.0, 0.0)

    def test_case_studies_deterministic(self):
        a = rating_fraud_case(seed=3)
        b = rating_fraud_case(seed=3)
        assert set(a.graph.edges()) == set(b.graph.edges())
