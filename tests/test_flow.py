"""Unit and property tests for the max-flow substrate."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FlowError
from repro.flow.dinic import DinicSolver, dinic_max_flow
from repro.flow.edmonds_karp import edmonds_karp_max_flow
from repro.flow.network import INFINITY, FlowNetwork


def _random_network(n: int, m: int, seed: int) -> FlowNetwork:
    rng = random.Random(seed)
    network = FlowNetwork(n)
    for _ in range(m):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            network.add_edge(u, v, rng.randint(1, 10))
    return network


class TestFlowNetwork:
    def test_add_edge_and_arc_count(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 2.0)
        net.add_edge(1, 2, 3.0)
        assert net.num_arcs == 4  # each edge stores a residual partner

    def test_negative_capacity_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(FlowError):
            net.add_edge(0, 1, -1.0)

    def test_node_out_of_range(self):
        net = FlowNetwork(2)
        with pytest.raises(FlowError):
            net.add_edge(0, 5, 1.0)

    def test_add_node(self):
        net = FlowNetwork(1)
        new = net.add_node()
        assert new == 1
        net.add_edge(0, 1, 1.0)

    def test_arc_flow_and_reset(self):
        net = FlowNetwork(3)
        arc = net.add_edge(0, 1, 5.0)
        net.add_edge(1, 2, 3.0)
        flow = dinic_max_flow(net, 0, 2)
        assert flow == pytest.approx(3.0)
        assert net.arc_flow(arc) == pytest.approx(3.0)
        net.reset_flow()
        assert net.arc_flow(arc) == pytest.approx(0.0)

    def test_arcs_iteration_reports_flow(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 4.0)
        dinic_max_flow(net, 0, 1)
        arcs = list(net.arcs())
        assert len(arcs) == 1
        assert arcs[0].capacity == pytest.approx(4.0)
        assert arcs[0].flow == pytest.approx(4.0)

    def test_infinite_capacity_arc_reports_finite_flow(self):
        """Regression: flow on an INFINITY arc must not be ``inf - inf = nan``."""
        net = FlowNetwork(3)
        arc = net.add_edge(0, 1, INFINITY)
        net.add_edge(1, 2, 5.0)
        assert dinic_max_flow(net, 0, 2) == pytest.approx(5.0)
        assert net.arc_flow(arc) == pytest.approx(5.0)
        inf_arcs = [a for a in net.arcs() if a.capacity == INFINITY]
        assert len(inf_arcs) == 1
        assert not math.isnan(inf_arcs[0].flow)
        assert inf_arcs[0].flow == pytest.approx(5.0)

    def test_set_capacity_retunes_in_place(self):
        net = FlowNetwork(3)
        arc = net.add_edge(0, 1, 5.0)
        net.add_edge(1, 2, 3.0)
        assert dinic_max_flow(net, 0, 2) == pytest.approx(3.0)
        net.set_capacity(arc, 1.0)
        net.reset_flow()
        assert dinic_max_flow(net, 0, 2) == pytest.approx(1.0)
        with pytest.raises(FlowError):
            net.set_capacity(arc + 1, 1.0)  # reverse arcs are not retunable
        with pytest.raises(FlowError):
            net.set_capacity(arc, -1.0)

    def test_csr_views_consistent_after_add_node(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 1.0)
        new = net.add_node()
        net.add_edge(1, new, 2.0)
        heads, targets = net.solver_views()
        assert len(heads) == 3
        assert [targets[a] for a in heads[1]] == [0, new]  # residual + forward
        assert dinic_max_flow(net, 0, new) == pytest.approx(1.0)


class TestDinicBasics:
    def test_single_path(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3.0)
        net.add_edge(1, 2, 2.0)
        net.add_edge(2, 3, 5.0)
        assert dinic_max_flow(net, 0, 3) == pytest.approx(2.0)

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3.0)
        net.add_edge(1, 3, 3.0)
        net.add_edge(0, 2, 4.0)
        net.add_edge(2, 3, 2.0)
        assert dinic_max_flow(net, 0, 3) == pytest.approx(5.0)

    def test_classic_textbook_network(self):
        # CLRS-style example with a known max flow of 23.
        net = FlowNetwork(6)
        net.add_edge(0, 1, 16)
        net.add_edge(0, 2, 13)
        net.add_edge(1, 2, 10)
        net.add_edge(2, 1, 4)
        net.add_edge(1, 3, 12)
        net.add_edge(3, 2, 9)
        net.add_edge(2, 4, 14)
        net.add_edge(4, 3, 7)
        net.add_edge(3, 5, 20)
        net.add_edge(4, 5, 4)
        assert dinic_max_flow(net, 0, 5) == pytest.approx(23.0)

    def test_disconnected_sink(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5.0)
        assert dinic_max_flow(net, 0, 2) == pytest.approx(0.0)

    def test_infinite_capacity_edge(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, INFINITY)
        net.add_edge(1, 2, 7.0)
        assert dinic_max_flow(net, 0, 2) == pytest.approx(7.0)

    def test_source_equals_sink_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(FlowError):
            DinicSolver(net, 0, 0)

    def test_min_cut_separates_source_from_sink(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 10.0)
        net.add_edge(2, 3, 10.0)
        solver = DinicSolver(net, 0, 3)
        solver.max_flow()
        side = solver.min_cut_source_side()
        assert 0 in side
        assert 3 not in side

    def test_min_cut_value_matches_crossing_capacity(self):
        net = _random_network(8, 20, seed=1)
        solver = DinicSolver(net, 0, 7)
        flow = solver.max_flow()
        source_side = set(solver.min_cut_source_side())
        net.reset_flow()
        crossing = sum(
            arc.capacity
            for arc in net.arcs()
            if arc.source in source_side and arc.target not in source_side
        )
        assert flow == pytest.approx(crossing)


class TestSolverAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_dinic_matches_edmonds_karp(self, seed):
        net_a = _random_network(10, 30, seed=seed)
        net_b = _random_network(10, 30, seed=seed)
        assert dinic_max_flow(net_a, 0, 9) == pytest.approx(
            edmonds_karp_max_flow(net_b, 0, 9)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_dinic_matches_networkx(self, seed):
        networkx = pytest.importorskip("networkx")
        rng = random.Random(seed)
        nx_graph = networkx.DiGraph()
        net = FlowNetwork(9)
        nx_graph.add_nodes_from(range(9))
        for _ in range(25):
            u, v = rng.randrange(9), rng.randrange(9)
            if u == v:
                continue
            capacity = rng.randint(1, 9)
            if not nx_graph.has_edge(u, v):
                nx_graph.add_edge(u, v, capacity=capacity)
                net.add_edge(u, v, capacity)
        expected = networkx.maximum_flow_value(nx_graph, 0, 8) if nx_graph.number_of_edges() else 0
        assert dinic_max_flow(net, 0, 8) == pytest.approx(float(expected))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_dinic_equals_edmonds_karp(self, seed):
        net_a = _random_network(7, 16, seed=seed)
        net_b = _random_network(7, 16, seed=seed)
        flow_a = dinic_max_flow(net_a, 0, 6)
        flow_b = edmonds_karp_max_flow(net_b, 0, 6)
        assert flow_a == pytest.approx(flow_b)
