"""The process-pool executor: cross-process bit-identity, faults, hygiene.

Pins the acceptance criteria of the multiprocess sharded executor:

* **Cross-process bit-identity** — process-pool answers are bit-identical
  to the serial and thread-pool paths on hypothesis-generated mixed
  batches (subgraphs, densities, and ``payload_answer()`` dicts),
  including warm-started and batched-solve lanes.
* **Fault tolerance** — a worker SIGKILLed mid-lane or poisoned by an
  erroring query is retried on a fresh worker (then inline), the lane is
  marked degraded in the per-query timings, and the batch always
  completes or fails with the query's genuine error — never a deadlock.
* **Shared-memory hygiene** — every published segment is closed and
  unlinked after normal shutdown *and* after an exception path.
* **Order-independent aggregation** — ``BatchReport.aggregate_stats()``
  is a pure function of the per-lane snapshots, not of completion order.
"""

from __future__ import annotations

from itertools import permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import service_mixed_workload
from repro.core.config import FlowConfig
from repro.datasets.registry import load_dataset
from repro.exceptions import AlgorithmError, ConfigError, GraphError, StoreError
from repro.flow.network import FlowNetwork
from repro.graph.digraph import DiGraph
from repro.service import (
    BatchExecutor,
    BatchReport,
    SessionStore,
    ShardMap,
    payload_answer,
    plan_batch,
    shm,
)
from repro.session import DDSSession

DEFAULT_DATASET = "foodweb-tiny"
OTHER_DATASET = "social-tiny"

#: Tests that publish/attach real segments or spawn real workers are
#: skipped where the pool itself would degrade (no shared memory, no
#: fcntl, or DDS_REPRO_NO_SHARED_MEMORY=1 — the CI degradation lane).
#: The degradation tests themselves run everywhere.
_SHM_OK, _SHM_REASON = shm.process_pool_available(need_store_locks=True)
needs_shm = pytest.mark.skipif(
    not _SHM_OK, reason=f"process pool unavailable: {_SHM_REASON}"
)

MIXED = [
    {"query": "densest", "method": "core-exact"},
    {"query": "fixed-ratio", "ratio": 1.0},
    {"query": "summary"},
    {"query": "densest", "method": "core-approx", "dataset": OTHER_DATASET},
    {"query": "top-k", "k": 2, "dataset": OTHER_DATASET},
]


def _executor(**kwargs) -> BatchExecutor:
    return BatchExecutor(lambda key: load_dataset(key), **kwargs)


def _answers(report) -> list:
    return [payload_answer(payload) for payload in report.results_in_input_order()]


def _plan(queries=MIXED):
    return plan_batch(queries, default_graph_key=DEFAULT_DATASET)


# ----------------------------------------------------------------------
# shared-memory graph segments
# ----------------------------------------------------------------------
@needs_shm
class TestGraphSegments:
    def test_publish_attach_round_trip(self):
        graph = load_dataset(DEFAULT_DATASET)
        segment = shm.publish_graph(graph)
        try:
            assert segment.name in shm.active_segment_names()
            attached = shm.attach_graph(segment.name)
            try:
                assert attached.fingerprint == graph.content_fingerprint()
                assert attached.graph.content_fingerprint() == graph.content_fingerprint()
                assert attached.graph.nodes() == graph.nodes()
                assert sorted(attached.graph.edges()) == sorted(graph.edges())
                assert list(attached.derived["out_degrees"]) == graph.out_degrees()
                assert list(attached.derived["in_degrees"]) == graph.in_degrees()
            finally:
                attached.close()
        finally:
            segment.unlink()
        assert segment.name not in shm.active_segment_names()

    def test_attach_after_unlink_raises(self):
        segment = shm.publish_graph(load_dataset(DEFAULT_DATASET))
        name = segment.name
        segment.unlink()
        with pytest.raises(StoreError):
            shm.attach_graph(name)

    def test_attach_verifies_fingerprint(self):
        graph = DiGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        segment = shm.publish_graph(graph)
        try:
            # Corrupt one CSR target in place: the rebuilt graph no longer
            # reproduces the published fingerprint.
            view = segment._shm.buf[shm._HEADER_BYTES + 8 * (graph.num_nodes + 1) :]
            ints = view[:8].cast("q")
            ints[0] = (ints[0] + 1) % graph.num_nodes
            ints.release()
            view.release()
            with pytest.raises(StoreError, match="verification"):
                shm.attach_graph(segment.name)
        finally:
            segment.unlink()

    def test_attached_session_matches_native(self):
        graph = load_dataset(DEFAULT_DATASET)
        segment = shm.publish_graph(graph)
        try:
            attached = shm.attach_graph(segment.name)
            hydrated = DDSSession.from_seeded(attached.graph, attached.derived)
            attached.close()
            native = DDSSession(graph)
            assert hydrated.densest_subgraph("core-exact") == native.densest_subgraph("core-exact")
        finally:
            segment.unlink()

    def test_unlink_is_idempotent(self):
        segment = shm.publish_graph(load_dataset(DEFAULT_DATASET))
        segment.unlink()
        segment.unlink()
        assert shm.active_segment_names() == []


class TestFromCsrArrays:
    def test_round_trip_preserves_fingerprint(self, small_random_graph):
        graph = small_random_graph
        starts, targets = [0], []
        for row in graph.out_adj:
            targets.extend(row)
            starts.append(len(targets))
        rebuilt = DiGraph.from_csr_arrays(graph.nodes(), starts, targets)
        assert rebuilt.content_fingerprint() == graph.content_fingerprint()
        assert rebuilt.num_edges == graph.num_edges

    def test_rejects_malformed_csr(self):
        with pytest.raises(GraphError, match="monotone"):
            DiGraph.from_csr_arrays(["a", "b"], [0, 1], [1, 0])
        with pytest.raises(GraphError, match="duplicates"):
            DiGraph.from_csr_arrays(["a", "a"], [0, 0, 0], [])
        with pytest.raises(GraphError, match="out of range"):
            DiGraph.from_csr_arrays(["a", "b"], [0, 1, 1], [5])
        with pytest.raises(GraphError, match="self-loop"):
            DiGraph.from_csr_arrays(["a", "b"], [0, 1, 1], [0])


class TestFlowNetworkAttach:
    def test_attach_reproduces_csr(self):
        network = FlowNetwork(4)
        network.add_edge(0, 1, 3.0)
        network.add_edge(1, 2, 2.0)
        network.add_edge(2, 3, 1.5)
        tails, targets, caps, base = network.arc_state_views()
        attached = FlowNetwork.attach_paired_arcs(4, tails, targets, caps, base)
        for view in (tails, targets, caps, base):
            view.release()
        assert list(attached.arc_targets) == list(network.arc_targets)
        assert list(attached.arc_capacities) == list(network.arc_capacities)
        native_starts, native_order, _, _ = network.csr()
        attached_starts, attached_order, _, _ = attached.csr()
        assert list(attached_starts) == list(native_starts)
        assert list(attached_order) == list(native_order)


# ----------------------------------------------------------------------
# shard routing
# ----------------------------------------------------------------------
class TestShardMap:
    def test_routing_is_content_stable(self):
        graph = load_dataset(DEFAULT_DATASET)
        copy = graph.copy()
        shard_map = ShardMap(4)
        assert shard_map.shard_of(graph.content_fingerprint()) == shard_map.shard_of(
            copy.content_fingerprint()
        )
        # Routing ignores batch composition: any assignment that includes
        # the graph puts it on the same shard.
        solo = shard_map.assign({"g": graph.content_fingerprint()})
        mixed = shard_map.assign(
            {
                "other": load_dataset(OTHER_DATASET).content_fingerprint(),
                "g": graph.content_fingerprint(),
            }
        )
        (solo_shard,) = [shard for shard, keys in solo.items() if "g" in keys]
        (mixed_shard,) = [shard for shard, keys in mixed.items() if "g" in keys]
        assert solo_shard == mixed_shard

    def test_assign_partitions_all_keys(self):
        fingerprints = {
            key: load_dataset(name).content_fingerprint()
            for key, name in (("a", DEFAULT_DATASET), ("b", OTHER_DATASET))
        }
        shards = ShardMap(2).assign(fingerprints)
        assigned = [key for keys in shards.values() for key in keys]
        assert sorted(assigned) == ["a", "b"]
        assert all(0 <= shard < 2 for shard in shards)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigError):
            ShardMap(0)
        with pytest.raises(ConfigError):
            ShardMap(2).shard_of("not-a-fingerprint")

    def test_collapse_spreads_collisions_to_empty_shards(self):
        # Three distinct fingerprints engineered onto shard 0 of 4: without
        # collapsing, one shard serialises all three lanes while three
        # slots idle.
        fp = lambda value: "%016x" % value + "0" * 48  # noqa: E731
        fingerprints = {"a": fp(0), "b": fp(4), "c": fp(8)}
        shard_map = ShardMap(4)
        assert shard_map.assign(fingerprints) == {0: ["a", "b", "c"]}
        collapsed = shard_map.assign(fingerprints, collapse=True)
        assert len(collapsed) == 3
        assert sorted(key for keys in collapsed.values() for key in keys) == ["a", "b", "c"]
        # The overfull shard keeps its smallest fingerprint; donations go to
        # the empty shards in ascending order, fingerprint-sorted.
        assert collapsed == {0: ["a"], 1: ["b"], 2: ["c"]}

    def test_collapse_moves_same_fingerprint_keys_together(self):
        fp = lambda value: "%016x" % value + "0" * 48  # noqa: E731
        fingerprints = {"a1": fp(0), "b1": fp(2), "a2": fp(0), "b2": fp(2)}
        collapsed = ShardMap(2).assign(fingerprints, collapse=True)
        assert collapsed == {0: ["a1", "a2"], 1: ["b1", "b2"]}

    def test_collapse_without_empty_shards_is_identity(self):
        fingerprints = {
            key: load_dataset(name).content_fingerprint()
            for key, name in (("a", DEFAULT_DATASET), ("b", OTHER_DATASET))
        }
        shard_map = ShardMap(1)
        assert shard_map.assign(fingerprints, collapse=True) == shard_map.assign(
            fingerprints
        )

    def test_collapse_never_outnumbers_distinct_fingerprints(self):
        fp = lambda value: "%016x" % value + "0" * 48  # noqa: E731
        fingerprints = {"a": fp(0), "b": fp(8)}  # both on shard 0 of 8
        collapsed = ShardMap(8).assign(fingerprints, collapse=True)
        assert len(collapsed) == 2


@needs_shm
class TestShardCollapseInThePool:
    def test_colliding_graphs_still_use_both_workers(self):
        """Two graphs hashing to one shard must not serialise on one worker."""
        from repro.graph.generators import gnm_random_digraph

        base = gnm_random_digraph(10, 24, seed=0)
        parity = int(base.content_fingerprint()[:16], 16) % 2
        other = None
        for seed in range(1, 64):
            candidate = gnm_random_digraph(10, 24, seed=seed)
            if int(candidate.content_fingerprint()[:16], 16) % 2 == parity:
                other = candidate
                break
        assert other is not None, "no colliding fingerprint in 64 seeds"
        graphs = {"g0": base, "g1": other}
        plan = plan_batch(
            [
                {"query": "densest", "method": "core-exact", "dataset": "g0"},
                {"query": "densest", "method": "core-exact", "dataset": "g1"},
            ],
            default_graph_key="g0",
        )
        report = BatchExecutor(graphs, process_pool=True, max_workers=2).execute(plan)
        stats = report.executor_stats
        assert stats["mode"] == "process-pool"
        assert stats["shards"] == 2
        assert stats["workers_spawned"] == 2
        assert _answers(report) == _answers(BatchExecutor(graphs).execute(plan))


# ----------------------------------------------------------------------
# cross-process bit-identity
# ----------------------------------------------------------------------
SPEC_MENU = [
    {"query": "densest", "method": "core-exact"},
    {"query": "densest", "method": "core-approx"},
    {"query": "fixed-ratio", "ratio": 0.75},
    {"query": "fixed-ratio", "ratio": 1.0},
    {"query": "top-k", "k": 2, "method": "core-exact"},
    {"query": "xy-core", "x": 1, "y": 1},
    {"query": "max-core"},
    {"query": "summary"},
]


@needs_shm
class TestCrossProcessBitIdentity:
    @settings(max_examples=6, deadline=None)
    @given(
        batch=st.lists(
            st.tuples(
                st.sampled_from(SPEC_MENU), st.sampled_from([None, OTHER_DATASET])
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_process_pool_matches_serial_and_threads(self, batch):
        queries = []
        for spec, dataset in batch:
            spec = dict(spec)
            if dataset is not None:
                spec["dataset"] = dataset
            queries.append(spec)
        plan = _plan(queries)
        flow = FlowConfig(solver="auto", batch_size=8)
        serial = _executor(flow=flow, max_workers=1).execute(plan)
        threads = _executor(flow=flow, max_workers=2).execute(plan)
        procs = _executor(flow=flow, max_workers=2, process_pool=True).execute(plan)
        assert _answers(procs) == _answers(serial) == _answers(threads)
        assert procs.executor_stats["mode"] == "process-pool"
        assert shm.active_segment_names() == []

    def test_mixed_workload_with_warm_and_batched_lanes(self):
        # The E6 smoke workload: repeated fixed-ratio probes warm-start
        # their decision networks and the auto policy may batch solves —
        # both must survive the process boundary bit-for-bit.
        queries = service_mixed_workload()
        plan = _plan(queries)
        flow = FlowConfig(solver="auto", batch_size=8)
        serial = _executor(flow=flow, max_workers=1).execute(plan)
        procs = _executor(flow=flow, max_workers=2, process_pool=True).execute(plan)
        assert _answers(procs) == _answers(serial)
        assert serial.aggregate_stats().get("warm_starts_used", 0) > 0
        assert procs.aggregate_stats().get("warm_starts_used", 0) > 0

    def test_single_lane_still_uses_a_worker(self):
        plan = _plan([{"query": "densest", "method": "core-exact"}])
        report = _executor(process_pool=True).execute(plan)
        assert report.executor_stats["workers_spawned"] == 1
        assert all(execution.worker is not None for execution in report.executions)

    def test_process_pool_with_store_round_trip(self, tmp_path):
        store_root = tmp_path / "store"
        plan = _plan()
        first = _executor(process_pool=True, store=SessionStore(store_root)).execute(plan)
        second = _executor(process_pool=True, store=SessionStore(store_root)).execute(plan)
        cold = _executor().execute(plan)
        assert _answers(first) == _answers(second) == _answers(cold)
        assert set(first.store_stats) == set(plan.lanes)


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
@needs_shm
class TestFaultInjection:
    def test_sigkilled_worker_is_retried_on_a_fresh_worker(self):
        plan = _plan()
        reference = _answers(_executor().execute(plan))
        report = _executor(
            process_pool=True,
            max_workers=2,
            fault_injection={
                "graph_key": DEFAULT_DATASET,
                "kind": "sigkill",
                "times": 1,
            },
        ).execute(plan)
        assert _answers(report) == reference
        stats = report.executor_stats
        assert stats["worker_crashes"] == 1
        assert stats["worker_retries"] == 1
        assert stats["degraded_lanes"] == [DEFAULT_DATASET]
        degraded_rows = [row for row in report.timings() if row.get("degraded")]
        assert degraded_rows and all(
            row["graph"] == DEFAULT_DATASET and row["attempts"] == 2
            for row in degraded_rows
        )
        # The other lane was untouched.
        assert all(
            not execution.degraded
            for execution in report.executions
            if execution.graph_key == OTHER_DATASET
        )
        assert shm.active_segment_names() == []

    def test_poisoned_query_is_retried_then_succeeds(self):
        plan = _plan()
        reference = _answers(_executor().execute(plan))
        report = _executor(
            process_pool=True,
            fault_injection={
                "graph_key": DEFAULT_DATASET,
                "index": 0,
                "kind": "error",
                "times": 1,
            },
        ).execute(plan)
        assert _answers(report) == reference
        assert report.executor_stats["worker_retries"] == 1
        assert report.executor_stats["worker_crashes"] == 0
        assert report.executor_stats["degraded_lanes"] == [DEFAULT_DATASET]

    def test_exhausted_retries_fall_back_inline(self):
        plan = _plan()
        reference = _answers(_executor().execute(plan))
        report = _executor(
            process_pool=True,
            max_retries=1,
            fault_injection={"graph_key": DEFAULT_DATASET, "kind": "sigkill", "times": 5},
        ).execute(plan)
        # Both process dispatches died; the inline fallback completed the
        # lane on the parent (worker=None) and the batch still finished.
        assert _answers(report) == reference
        assert report.executor_stats["worker_crashes"] == 2
        lane_rows = [e for e in report.executions if e.graph_key == DEFAULT_DATASET]
        assert lane_rows and all(e.worker is None and e.degraded for e in lane_rows)
        assert shm.active_segment_names() == []

    def test_genuinely_bad_query_raises_its_real_error(self):
        plan = _plan([{"query": "densest", "method": "no-such-method"}])
        with pytest.raises(AlgorithmError, match="no-such-method"):
            _executor(process_pool=True, max_retries=1).execute(plan)
        assert shm.active_segment_names() == []

    def test_fault_spec_is_validated(self):
        with pytest.raises(ConfigError, match="fault_injection"):
            _executor(process_pool=True, fault_injection={"kind": "explode"})


# ----------------------------------------------------------------------
# shared-memory hygiene
# ----------------------------------------------------------------------
@needs_shm
class TestShmHygiene:
    @pytest.fixture
    def captured_segments(self, monkeypatch):
        real_publish = shm.publish_graph
        names: list[str] = []

        def capturing(graph, **kwargs):
            segment = real_publish(graph, **kwargs)
            names.append(segment.name)
            return segment

        monkeypatch.setattr(shm, "publish_graph", capturing)
        return names

    def test_segments_unlinked_after_normal_shutdown(self, captured_segments):
        _executor(process_pool=True, max_workers=2).execute(_plan())
        assert len(captured_segments) == 2
        assert shm.active_segment_names() == []
        for name in captured_segments:
            with pytest.raises(StoreError):
                shm.attach_graph(name)

    def test_segments_unlinked_after_exception(self, captured_segments):
        plan = _plan(
            [
                {"query": "densest", "method": "no-such-method"},
                {"query": "summary", "dataset": OTHER_DATASET},
            ]
        )
        with pytest.raises(AlgorithmError):
            _executor(process_pool=True, max_retries=0).execute(plan)
        assert len(captured_segments) == 2
        assert shm.active_segment_names() == []
        for name in captured_segments:
            with pytest.raises(StoreError):
                shm.attach_graph(name)


# ----------------------------------------------------------------------
# order-independent stats aggregation
# ----------------------------------------------------------------------
class TestAggregateStatsOrder:
    def test_merge_is_completion_order_independent(self):
        # 0.1 + 0.2 + 0.3 != 0.3 + 0.2 + 0.1 at the bit level: float
        # summation order matters, and completion order is nondeterministic
        # under any pool.  The aggregate must be a pure function of the
        # per-lane snapshots.
        lane_stats = {
            "a": {"queries": 3, "seconds_in_flow": 0.1},
            "b": {"queries": 1, "seconds_in_flow": 0.2},
            "c": {"queries": 2, "seconds_in_flow": 0.3},
        }
        aggregates = []
        for order in permutations(lane_stats):
            report = BatchReport(
                executions=[],
                session_stats={key: dict(lane_stats[key]) for key in order},
            )
            aggregates.append(report.aggregate_stats())
        assert all(aggregate == aggregates[0] for aggregate in aggregates)
        # And it equals the sorted-lane-order sum, bit for bit.
        assert aggregates[0]["seconds_in_flow"] == (0.1 + 0.2) + 0.3
        assert aggregates[0]["queries"] == 6

    def test_non_numeric_and_bool_values_are_skipped(self):
        report = BatchReport(
            executions=[],
            session_stats={"a": {"flag": True, "name": "x", "count": 2}},
        )
        assert report.aggregate_stats() == {"count": 2}


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------
class TestDegradation:
    def test_env_knob_degrades_to_threads(self, monkeypatch):
        monkeypatch.setenv(shm.NO_SHM_ENV, "1")
        available, reason = shm.process_pool_available()
        assert not available and shm.NO_SHM_ENV in reason
        plan = _plan()
        report = _executor(process_pool=True, max_workers=2).execute(plan)
        assert report.executor_stats["degraded_from"] == "process-pool"
        assert report.executor_stats["mode"] == "threads"
        monkeypatch.delenv(shm.NO_SHM_ENV)
        assert _answers(report) == _answers(_executor().execute(plan))

    def test_publish_refuses_without_shared_memory(self, monkeypatch):
        monkeypatch.setenv(shm.NO_SHM_ENV, "1")
        with pytest.raises(StoreError):
            shm.publish_graph(load_dataset(DEFAULT_DATASET))


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
@needs_shm
class TestCli:
    def test_batch_process_pool_flag(self, tmp_path, capsys):
        import json

        from repro.cli import main

        queries_path = tmp_path / "queries.json"
        queries_path.write_text(json.dumps(MIXED))
        code = main(
            [
                "batch",
                "--dataset",
                DEFAULT_DATASET,
                str(queries_path),
                "--process-pool",
                "--max-retries",
                "2",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"]["mode"] == "process-pool"
        assert payload["executor"]["workers_spawned"] >= 1
        assert len(payload["results"]) == len(MIXED)
