"""Correctness and guarantee tests for the approximation algorithms."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx_core import core_approx, inc_approx
from repro.core.approx_peel import peel_approx, peel_fixed_ratio
from repro.core.bruteforce import brute_force_dds
from repro.core.density import directed_density
from repro.core.subproblem import STSubproblem
from repro.exceptions import AlgorithmError, EmptyGraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_bipartite_digraph,
    gnm_random_digraph,
    planted_dds_digraph,
    star_digraph,
)

APPROX_SOLVERS = [core_approx, inc_approx, peel_approx]


@pytest.mark.parametrize("solver", APPROX_SOLVERS)
class TestApproxBasics:
    def test_complete_bipartite_found_exactly(self, solver):
        g = complete_bipartite_digraph(3, 4)
        result = solver(g)
        assert result.density == pytest.approx(math.sqrt(12))
        assert not result.is_exact

    def test_star(self, solver):
        g = star_digraph(9, outward=True)
        result = solver(g)
        # The full fan has density 3; the guarantee only promises >= 1.5,
        # but on a star every sensible algorithm finds the fan exactly.
        assert result.density == pytest.approx(3.0)

    def test_rejects_edgeless_graph(self, solver):
        with pytest.raises(EmptyGraphError):
            solver(DiGraph.from_edges([], nodes=[1]))

    def test_reported_density_matches_pair(self, solver):
        g = gnm_random_digraph(30, 140, seed=3)
        result = solver(g)
        assert result.density == pytest.approx(
            directed_density(g, result.s_nodes, result.t_nodes)
        )


class TestApproximationGuarantees:
    @pytest.mark.parametrize("seed", range(10))
    def test_core_approx_half_optimal(self, seed):
        g = gnm_random_digraph(8, 24, seed=seed)
        if g.num_edges == 0:
            pytest.skip("empty draw")
        optimum = brute_force_dds(g).density
        assert core_approx(g).density >= optimum / 2.0 - 1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_peel_approx_guarantee(self, seed):
        epsilon = 0.5
        g = gnm_random_digraph(8, 24, seed=seed)
        if g.num_edges == 0:
            pytest.skip("empty draw")
        optimum = brute_force_dds(g).density
        result = peel_approx(g, epsilon=epsilon)
        assert result.density >= optimum / (2.0 * math.sqrt(1.0 + epsilon)) - 1e-9
        assert result.approximation_ratio == pytest.approx(2.0 * math.sqrt(1.0 + epsilon))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_core_approx_half_optimal(self, seed):
        g = gnm_random_digraph(7, 20, seed=seed)
        if g.num_edges == 0:
            return
        optimum = brute_force_dds(g).density
        assert core_approx(g).density >= optimum / 2.0 - 1e-9

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_peel_approx_guarantee(self, seed):
        g = gnm_random_digraph(7, 20, seed=seed)
        if g.num_edges == 0:
            return
        optimum = brute_force_dds(g).density
        result = peel_approx(g, epsilon=0.3)
        assert result.density >= optimum / (2.0 * math.sqrt(1.3)) - 1e-9

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_core_and_inc_agree(self, seed):
        """CoreApprox and IncApprox compute the same maximum-product core."""
        g = gnm_random_digraph(10, 35, seed=seed)
        if g.num_edges == 0:
            return
        fast = core_approx(g)
        slow = inc_approx(g)
        assert fast.stats["core_x"] * fast.stats["core_y"] == (
            slow.stats["core_x"] * slow.stats["core_y"]
        )
        assert fast.density == pytest.approx(slow.density)


class TestPeeling:
    def test_peel_fixed_ratio_on_bipartite(self):
        g = complete_bipartite_digraph(2, 3)
        sub = STSubproblem.from_graph(g)
        s_nodes, t_nodes, density = peel_fixed_ratio(sub, ratio=2.0 / 3.0)
        assert density == pytest.approx(math.sqrt(6))
        assert len(s_nodes) == 2
        assert len(t_nodes) == 3

    def test_peel_fixed_ratio_empty_subproblem(self):
        g = DiGraph.from_edges([(0, 1)])
        sub = STSubproblem.from_graph(g, s_candidates=[], t_candidates=[])
        assert peel_fixed_ratio(sub, 1.0) == ([], [], 0.0)

    def test_peel_fixed_ratio_rejects_bad_ratio(self):
        g = DiGraph.from_edges([(0, 1)])
        sub = STSubproblem.from_graph(g)
        with pytest.raises(AlgorithmError):
            peel_fixed_ratio(sub, 0.0)

    def test_peel_approx_custom_ratio_list(self):
        g = complete_bipartite_digraph(3, 3)
        result = peel_approx(g, ratios=[1.0])
        assert result.density == pytest.approx(3.0)
        assert result.stats["ratios_examined"] == 1

    def test_peel_approx_epsilon_validation(self):
        g = complete_bipartite_digraph(2, 2)
        with pytest.raises(AlgorithmError):
            peel_approx(g, epsilon=0.0)

    def test_peel_finds_planted_block(self):
        graph, planted_s, planted_t = planted_dds_digraph(
            n_background=100, background_degree=2.0, s_size=5, t_size=8, p_dense=1.0, seed=17
        )
        result = peel_approx(graph, epsilon=0.25)
        expected = 40 / math.sqrt(40)
        assert result.density >= expected / (2 * math.sqrt(1.25)) - 1e-9
        # In practice the peel recovers the planted block exactly.
        assert set(planted_s) <= set(result.s_nodes)


class TestCoreApproxMetadata:
    def test_core_orders_reported(self):
        g = complete_bipartite_digraph(3, 5)
        result = core_approx(g)
        assert result.stats["core_x"] == 5
        assert result.stats["core_y"] == 3
        assert result.approximation_ratio == 2.0

    def test_bounds_consistency(self):
        g = gnm_random_digraph(25, 120, seed=9)
        result = core_approx(g)
        assert result.stats["density_lower_bound"] <= result.density + 1e-9
        assert result.density <= result.stats["density_upper_bound"] + 1e-9
