"""The cache-aware batch planner and the concurrent executor.

Pins the two service-tier acceptance criteria:

* **Permutation safety** — any execution order of a batch (the planner's,
  file order, or a random permutation) yields bit-identical per-query
  *answers*; only the instrumentation counters may differ (property test).
* **Cache effectiveness** — on the mixed E6-style workload the planned
  order records strictly more result + network cache hits than ``--no-plan``
  file order (the regression pin behind the smoke gate).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import service_mixed_workload
from repro.core.config import FlowConfig
from repro.datasets.registry import load_dataset
from repro.exceptions import BatchQueryError, ConfigError
from repro.service import BatchExecutor, payload_answer, plan_batch
from repro.service.planner import PHASE_EXACT, PHASE_PROBE, PHASE_SEED

MIXED = [
    {"query": "densest", "method": "core-exact"},
    {"query": "fixed-ratio", "ratio": 1.0},
    {"query": "densest", "method": "core-approx"},
    {"query": "top-k", "k": 2, "method": "core-exact"},
    {"query": "densest", "method": "core-exact"},
    {"query": "xy-core", "x": 1, "y": 1},
    {"query": "fixed-ratio", "ratio": 1.0},
    {"query": "summary"},
]


def _executor(**kwargs) -> BatchExecutor:
    return BatchExecutor(lambda key: load_dataset(key), **kwargs)


class TestPlanShape:
    def test_identity_plan_preserves_file_order(self):
        plan = plan_batch(MIXED, default_graph_key="foodweb-tiny", planned=False)
        assert [entry.index for entry in plan.entries] == list(range(len(MIXED)))
        assert plan.moves == 0 and plan.planned is False

    def test_phases_order_approx_before_probes_before_exact(self):
        plan = plan_batch(MIXED, default_graph_key="foodweb-tiny")
        phases = [entry.phase for entry in plan.entries]
        assert phases == sorted(phases)
        by_index = {entry.index: entry.phase for entry in plan.entries}
        assert by_index[2] == PHASE_SEED  # core-approx seeds
        assert by_index[1] == PHASE_PROBE  # fixed-ratio probes
        assert by_index[0] == PHASE_EXACT  # core-exact runs last

    def test_identical_queries_become_adjacent(self):
        plan = plan_batch(MIXED, default_graph_key="foodweb-tiny")
        order = [entry.index for entry in plan.entries]
        # The two identical fixed-ratio probes and the two identical densest
        # queries must sit next to each other in the planned order.
        assert abs(order.index(1) - order.index(6)) == 1
        assert abs(order.index(0) - order.index(4)) == 1

    def test_graph_affinity_makes_contiguous_lanes(self):
        queries = [
            {"query": "densest", "method": "core-approx"},
            {"query": "densest", "method": "core-approx", "dataset": "social-tiny"},
            {"query": "summary"},
            {"query": "summary", "dataset": "social-tiny"},
        ]
        plan = plan_batch(queries, default_graph_key="foodweb-tiny")
        keys = [entry.graph_key for entry in plan.entries]
        assert keys == ["foodweb-tiny", "foodweb-tiny", "social-tiny", "social-tiny"]
        assert set(plan.lanes) == {"foodweb-tiny", "social-tiny"}

    def test_explain_reports_groups_and_predictions(self):
        plan = plan_batch(MIXED, default_graph_key="foodweb-tiny")
        explanation = plan.explain()
        assert explanation["queries"] == len(MIXED)
        assert sorted(explanation["execution_order"]) == list(range(len(MIXED)))
        assert explanation["predicted"]["result_cache_hits"] >= 1
        assert explanation["predicted"]["network_cache_hits"] >= 1
        regrouped = [index for group in explanation["groups"] for index in group["queries"]]
        assert regrouped == explanation["execution_order"]

    def test_deterministic(self):
        first = plan_batch(MIXED, default_graph_key="g")
        second = plan_batch(MIXED, default_graph_key="g")
        assert [e.index for e in first.entries] == [e.index for e in second.entries]

    def test_rejects_malformed_batches(self):
        with pytest.raises(BatchQueryError, match="list"):
            plan_batch({"query": "densest"})  # type: ignore[arg-type]
        with pytest.raises(BatchQueryError, match="JSON objects"):
            plan_batch(["densest"])  # type: ignore[list-item]
        with pytest.raises(BatchQueryError, match="dataset"):
            plan_batch([{"query": "densest", "dataset": 7}])


class TestPermutationSafety:
    @settings(max_examples=8, deadline=None)
    @given(st.permutations(list(range(len(MIXED)))))
    def test_any_permutation_yields_bit_identical_answers(self, permutation):
        """Acceptance pin: plan order is a pure performance decision."""
        executor = _executor(flow=FlowConfig(network_cache_size=4))
        reference = executor.execute(
            plan_batch(MIXED, default_graph_key="foodweb-tiny", planned=False)
        )
        shuffled = [MIXED[i] for i in permutation]
        permuted = executor.execute(
            plan_batch(shuffled, default_graph_key="foodweb-tiny", planned=False)
        )
        reference_answers = [payload_answer(p) for p in reference.results_in_input_order()]
        permuted_answers = [payload_answer(p) for p in permuted.results_in_input_order()]
        assert permuted_answers == [reference_answers[i] for i in permutation]

    def test_planned_equals_file_order_answers(self):
        executor = _executor()
        planned = executor.execute(plan_batch(MIXED, default_graph_key="foodweb-tiny"))
        unplanned = executor.execute(
            plan_batch(MIXED, default_graph_key="foodweb-tiny", planned=False)
        )
        assert [payload_answer(p) for p in planned.results_in_input_order()] == [
            payload_answer(p) for p in unplanned.results_in_input_order()
        ]


class TestCacheEffectiveness:
    def test_planned_order_beats_file_order_on_mixed_workload(self):
        """Acceptance pin: strictly more result/network cache hits than file
        order on the E6-style mixed workload (the smoke gate's assertion)."""
        queries = service_mixed_workload()
        executor = _executor(flow=FlowConfig(network_cache_size=8))
        planned = executor.execute(plan_batch(queries, default_graph_key="social-tiny"))
        unplanned = executor.execute(
            plan_batch(queries, default_graph_key="social-tiny", planned=False)
        )
        planned_hits = planned.realized_cache_hits()
        file_hits = unplanned.realized_cache_hits()
        assert sum(planned_hits.values()) > sum(file_hits.values())
        # The mechanism: grouped repeats survive the LRU network cache.
        assert planned_hits["network_cache_hits"] > file_hits["network_cache_hits"]

    def test_predictions_are_realized_on_planned_order(self):
        queries = service_mixed_workload()
        plan = plan_batch(queries, default_graph_key="foodweb-tiny")
        report = _executor(flow=FlowConfig(network_cache_size=8)).execute(plan)
        realized = report.realized_cache_hits()
        assert realized["result_cache_hits"] >= plan.predicted_result_cache_hits
        assert realized["network_cache_hits"] >= plan.predicted_network_cache_hits


class TestExecutor:
    def test_multi_graph_batch_runs_on_separate_sessions(self):
        queries = [
            {"query": "densest", "method": "core-approx"},
            {"query": "densest", "method": "core-approx", "dataset": "social-tiny"},
            {"query": "densest", "method": "core-approx"},
        ]
        report = _executor().execute(plan_batch(queries, default_graph_key="foodweb-tiny"))
        assert set(report.session_stats) == {"foodweb-tiny", "social-tiny"}
        # The repeat on the default graph hits its own session's cache.
        assert report.session_stats["foodweb-tiny"]["result_cache_hits"] == 1
        assert report.session_stats["social-tiny"]["result_cache_hits"] == 0
        results = report.results_in_input_order()
        assert results[0] == results[2]
        assert results[1]["density"] != results[0]["density"]

    def test_aggregate_stats_sum_lanes(self):
        queries = [
            {"query": "summary"},
            {"query": "summary", "dataset": "social-tiny"},
        ]
        report = _executor().execute(plan_batch(queries, default_graph_key="foodweb-tiny"))
        assert report.aggregate_stats()["queries"] == 0  # summary is not a counted query
        assert len(report.timings()) == 2
        assert all(row["seconds"] >= 0 for row in report.timings())

    def test_unknown_graph_key_is_clean_error(self):
        mapping_executor = BatchExecutor({"known": load_dataset("foodweb-tiny")})
        plan = plan_batch([{"query": "summary", "dataset": "missing"}], default_graph_key="known")
        with pytest.raises(BatchQueryError, match="unknown graph"):
            mapping_executor.execute(plan)

    def test_query_errors_propagate(self):
        plan = plan_batch(
            [{"query": "densest", "method": "core-approx", "tolerance": 0.1}],
            default_graph_key="foodweb-tiny",
        )
        with pytest.raises(ConfigError):
            _executor().execute(plan)

    def test_rejects_non_positive_max_workers(self):
        with pytest.raises(ConfigError, match="max_workers"):
            _executor(max_workers=0)
        with pytest.raises(ConfigError, match="max_workers"):
            _executor(max_workers=-3)

    def test_max_workers_one_still_completes_all_lanes(self):
        queries = [
            {"query": "summary"},
            {"query": "summary", "dataset": "social-tiny"},
            {"query": "summary", "dataset": "flights-small"},
        ]
        report = _executor(max_workers=1).execute(
            plan_batch(queries, default_graph_key="foodweb-tiny")
        )
        assert len(report.results_in_input_order()) == 3
