"""Machine-readable perf trajectory for the flow backends: ``BENCH_flow.json``.

Runs the E2/E6-style smoke workloads once per registered flow solver (plus
the ``auto`` policy), times them, and writes a flat row list

    {"workload": ..., "solver": ..., "mode": ..., "wall_ms": ...,
     "arcs_pushed": ..., "warm_starts_used": ..., "batched_solves": ...}

to ``BENCH_flow.json`` so future PRs have a committed, diffable baseline to
compare solver work against (wall clock is machine-dependent; ``arcs_pushed``
is not).  ``mode`` (schema v2) distinguishes ``sequential`` runs — one
min-cut per network, the only shape explicit solver names support — from
``batched`` runs, where the ``auto`` policy stacks each fixed-ratio guess
sequence block-diagonally so many below-threshold networks fill the vector
width together; the small workloads carry an ``auto`` row in both modes,
which is the committed record of the small-workload regression fix (the
sequential ``numpy-push-relabel`` rows losing to ``dinic`` there are the
bug, the batched ``auto`` rows are the fix).  Three extra row families
capture the vectorised backend's headline wins:

* the **large workload** (``e6-large:*``) — a dc-exact run and a
  fixed-ratio sweep on graphs whose decision networks are far above the
  ``auto`` arc threshold, where the numpy backend's bulk supersteps beat
  dinic's per-arc interpreter loop by >= 2x; and
* the **lane-parallelism** rows (``batch-lanes:*``) — the same four-graph
  batch executed by the service tier with ``--jobs 1`` vs ``--jobs 4`` on
  the numpy backend, whose bulk array operations release the GIL, so
  graph-affine lanes overlap on real cores (the ROADMAP's "true parallel
  lanes" item).  Wall-clock lane speedup obviously needs more than one
  core; the ``parallel`` block therefore records the machine's CPU count
  next to the jobs walls, plus a *GIL-yield probe* that works on any
  machine: a background pure-python counter thread is timed against one
  solving lane, and the counter's progress rate during numpy-backend
  solves divided by its rate during dinic solves measures how much GIL the
  backend actually releases (>1 means released; pure-python lanes pin it).

Usage::

    PYTHONPATH=src python tools/bench_trajectory.py [--output BENCH_flow.json]
        [--skip-large] [--skip-parallel] [--check]

``--check`` exits 1 unless the numpy backend beats dinic by >= 2x on the
largest workload, the jobs-4 batch beats jobs-1, and — the small-workload
regression gate — the batched ``auto`` run of the guess-sequence workload
(flow-exact on ``foodweb-tiny``) beats the sequential ``numpy-push-relabel``
run by >= 1.5x while actually batching (``batched_solves`` > 0, vector
backend recorded in ``auto_backends``) and returning the bit-identical
subgraph (used as an opt-in local gate; CI pins the cheaper bit-identity +
parity variant in the E6 smoke instead).

The **process-pool rows** (``procpool:*``) run the same two-graph tiny batch
three ways — the thread pool (the reference), and the shared-memory process
pool at ``--jobs 1`` and ``--jobs 2`` — and record each wall next to the
pool's own counters.  ``--check`` gates these rows on *parity*: every
process-mode answer must be bit-identical to the thread reference, the runs
must actually use the pool (``mode == "process-pool"``) with zero worker
crashes, and the jobs-2 run must fan out to two workers (the fingerprint
shard routing).  A jobs-2 wall-clock speedup is gated only on machines with
``cpu_count > 1`` — on a single core the pool cannot beat the thread pool,
and the parity gates are the point.

The **network-tier row** (``remote:loopback``) runs the same two-graph tiny
batch against two loopback ``ShardDaemon``s via ``remote_hosts=[...]`` and
records the wall next to the session counters the daemons reported.  The
row is parity-gated: it is only written as trustworthy when the remote
answers are bit-identical to the local reference and every lane was solved
remotely (zero inline fallbacks, zero remote failures) — ``--check`` turns
any violation into a failure.  The ``parallel`` block records the daemon
count, the remote lane count, and the aggregated client counters.

The **deadline-overhead rows** (``deadline:advogato-small/dc-exact``) time
the same dc-exact solve with the deadline conduit disarmed vs armed with a
never-firing budget (best-of-N walls).  Armed checkpoints are a branch
plus a monotonic clock read at solver phase boundaries; ``--check`` gates
their cost under 2% of the solve wall, with the armed answer bit-identical.

The **incremental-update workload** (``incremental:advogato-small/dc-exact``)
replays a removal-only edge-update stream two ways: one session absorbing
every delta through ``apply_updates`` (cached networks patched, cached
answers certified) vs a cold session rebuild per delta.  ``--check`` gates
the incremental lane at >= 2x over the cold lane with density parity on
every step.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.config import FlowConfig
from repro.datasets.registry import load_dataset
from repro.graph.generators import edge_update_stream
from repro.flow.registry import (
    AUTO_SOLVER,
    VECTOR_SOLVER,
    available_flow_solvers,
    has_vector_backend,
)
from repro.service import (
    BatchExecutor,
    payload_answer,
    plan_batch,
    process_pool_available,
)
from repro.session import DDSSession

#: Small workloads every registered solver runs: (name, dataset, method).
SMALL_WORKLOADS = [
    ("e2-small:foodweb-tiny/flow-exact", "foodweb-tiny", "flow-exact"),
    ("e2-small:social-tiny/dc-exact", "social-tiny", "dc-exact"),
    ("e6-small:advogato-small/core-exact", "advogato-small", "core-exact"),
]

#: The large workloads — run only for dinic, the vector backend, and auto
#: (edmonds-karp would take minutes here; the skip is logged, not silent).
LARGE_DC_WORKLOAD = ("e6-large:er-medium/dc-exact", "er-medium", "dc-exact")
LARGE_SWEEP_DATASET = "citation-large"
LARGE_SWEEP_RATIOS = (0.25, 0.5, 1.0, 2.0, 4.0)
LARGE_SOLVERS = ("dinic", VECTOR_SOLVER, AUTO_SOLVER)

#: Graphs of the lane-parallelism batch (one lane each).
PARALLEL_DATASETS = ("er-medium", "planted-medium", "amazon-medium", "wiki-talk-medium")

#: The process-pool parity batch: two tiny graphs (which hash to distinct
#: shards of 2, so a jobs-2 run genuinely fans out) with a few methods each.
PROCPOOL_DATASETS = ("foodweb-tiny", "social-tiny")
PROCPOOL_METHODS = ("flow-exact", "dc-exact", "core-exact")

#: The deadline-overhead workload: the same dc-exact run with the deadline
#: conduit disarmed vs armed with a never-firing budget.  Armed checkpoints
#: are branch-plus-clock-read at phase boundaries; the gate keeps their
#: cost under 2% of the solve.  Best-of-N walls de-noise the comparison.
DEADLINE_DATASET = "advogato-small"
DEADLINE_METHOD = "dc-exact"
DEADLINE_REPEATS = 5

#: The incremental-update workload: a removal-only edge-update stream served
#: through one session's ``apply_updates`` (patch + certify) vs a cold
#: session rebuild per delta.  Small removal batches rarely touch the
#: optimum, so most steps certify on density bounds alone — the regime the
#: incremental layer exists for.
INCREMENTAL_DATASET = "advogato-small"
INCREMENTAL_STEPS = 6
INCREMENTAL_BATCH = 1
INCREMENTAL_SEED = 2020


def _row(workload: str, solver: str, mode: str, wall_ms: float, stats: dict) -> dict:
    return {
        "workload": workload,
        "solver": solver,
        "mode": mode,
        "wall_ms": round(wall_ms, 3),
        "arcs_pushed": int(stats.get("arcs_pushed", 0)),
        "warm_starts_used": int(stats.get("warm_starts_used", 0)),
        "batched_solves": int(stats.get("batched_solves", 0)),
    }


def _run_densest(
    dataset: str, method: str, solver: str, batch_size: int = 1
) -> tuple[float, dict, object]:
    session = DDSSession(
        load_dataset(dataset), flow=FlowConfig(solver=solver, batch_size=batch_size)
    )
    start = time.perf_counter()
    result = session.densest_subgraph(method)
    wall_ms = (time.perf_counter() - start) * 1000.0
    return wall_ms, session.cache_stats(), result


def _run_sweep(dataset: str, solver: str) -> tuple[float, dict]:
    session = DDSSession(load_dataset(dataset), flow=FlowConfig(solver=solver))
    start = time.perf_counter()
    for ratio in LARGE_SWEEP_RATIOS:
        session.fixed_ratio(ratio)
    wall_ms = (time.perf_counter() - start) * 1000.0
    return wall_ms, session.cache_stats()


def _run_incremental(solver: str) -> tuple[float, float, dict, bool]:
    """Serve an update stream incrementally and cold; return both walls.

    Returns ``(incremental_wall_ms, cold_wall_ms, incremental_stats,
    densities_match)``.  Both lanes answer a dc-exact query after every
    delta batch; the incremental lane applies each batch through
    ``apply_updates`` on one live session, the cold lane builds a fresh
    session on the updated graph every time — the rebuild the subsystem
    replaces.
    """
    graph = load_dataset(INCREMENTAL_DATASET)
    batches = edge_update_stream(
        graph,
        steps=INCREMENTAL_STEPS,
        batch_size=INCREMENTAL_BATCH,
        p_add=0.0,
        seed=INCREMENTAL_SEED,
    )

    session = DDSSession(graph.copy(), flow=FlowConfig(solver=solver))
    session.densest_subgraph("dc-exact")  # both lanes start from a warm answer
    start = time.perf_counter()
    incremental_densities = []
    for added, removed in batches:
        session.apply_updates(added, removed)
        incremental_densities.append(session.densest_subgraph("dc-exact").density)
    incremental_wall = (time.perf_counter() - start) * 1000.0

    work = graph.copy()
    cold_densities = []
    start = time.perf_counter()
    for added, removed in batches:
        work.apply_delta(added, removed)
        cold = DDSSession(work.copy(), flow=FlowConfig(solver=solver))
        cold_densities.append(cold.densest_subgraph("dc-exact").density)
    cold_wall = (time.perf_counter() - start) * 1000.0

    match = all(
        abs(inc - ref) <= 1e-9
        for inc, ref in zip(incremental_densities, cold_densities)
    )
    return incremental_wall, cold_wall, session.cache_stats(), match


def _run_deadline_overhead() -> tuple[float, float, bool]:
    """Best-of-N walls for the deadline workload, disarmed vs armed.

    Returns ``(disarmed_wall_ms, armed_wall_ms, identical)`` where
    ``identical`` certifies the armed run returned the bit-identical
    subgraph — a generous budget must be answer-neutral, or the overhead
    number is meaningless.
    """
    graph = load_dataset(DEADLINE_DATASET)
    walls: dict[str, list[float]] = {"disarmed": [], "armed": []}
    answers: dict[str, tuple] = {}
    for _ in range(DEADLINE_REPEATS):
        for mode, deadline_ms in (("disarmed", None), ("armed", 1e12)):
            session = DDSSession(graph)
            start = time.perf_counter()
            if deadline_ms is None:
                result = session.densest_subgraph(DEADLINE_METHOD)
            else:
                result = session.densest_subgraph(
                    DEADLINE_METHOD, deadline_ms=deadline_ms
                )
            walls[mode].append((time.perf_counter() - start) * 1000.0)
            answers[mode] = (
                result.density,
                sorted(map(str, result.s_nodes)),
                sorted(map(str, result.t_nodes)),
            )
    identical = answers["disarmed"] == answers["armed"]
    return min(walls["disarmed"]), min(walls["armed"]), identical


def _run_batch(jobs: int, solver: str) -> tuple[float, dict]:
    queries = [
        {"query": "densest", "method": "dc-exact", "dataset": name}
        for name in PARALLEL_DATASETS
    ]
    plan = plan_batch(queries, default_graph_key=PARALLEL_DATASETS[0])
    executor = BatchExecutor(
        load_dataset, flow=FlowConfig(solver=solver), max_workers=jobs
    )
    start = time.perf_counter()
    report = executor.execute(plan)
    wall_ms = (time.perf_counter() - start) * 1000.0
    return wall_ms, report.aggregate_stats()


def _run_procpool(
    jobs: int, *, process_pool: bool
) -> tuple[float, list, dict, dict]:
    """One run of the two-graph parity batch; returns wall, answers, stats.

    Returns ``(wall_ms, answers, executor_stats, aggregate_stats)`` where
    ``answers`` is the :func:`payload_answer` projection of every payload in
    input order — the thing the parity gate compares across pool modes.
    """
    queries = [
        {"query": "densest", "method": method, "dataset": dataset}
        for dataset in PROCPOOL_DATASETS
        for method in PROCPOOL_METHODS
    ]
    plan = plan_batch(queries, default_graph_key=PROCPOOL_DATASETS[0])
    executor = BatchExecutor(
        load_dataset,
        flow=FlowConfig(solver=AUTO_SOLVER),
        max_workers=jobs,
        process_pool=process_pool,
    )
    start = time.perf_counter()
    report = executor.execute(plan)
    wall_ms = (time.perf_counter() - start) * 1000.0
    answers = [payload_answer(payload) for payload in report.results_in_input_order()]
    return wall_ms, answers, report.executor_stats, report.aggregate_stats()


def _run_remote(hosts: list[str]) -> tuple[float, list, dict, dict]:
    """One remote run of the two-graph parity batch against live daemons.

    Same workload and return shape as :func:`_run_procpool`, with lanes
    routed to the ``hosts`` daemons over loopback TCP.
    """
    queries = [
        {"query": "densest", "method": method, "dataset": dataset}
        for dataset in PROCPOOL_DATASETS
        for method in PROCPOOL_METHODS
    ]
    plan = plan_batch(queries, default_graph_key=PROCPOOL_DATASETS[0])
    executor = BatchExecutor(
        load_dataset, flow=FlowConfig(solver=AUTO_SOLVER), remote_hosts=hosts
    )
    start = time.perf_counter()
    report = executor.execute(plan)
    wall_ms = (time.perf_counter() - start) * 1000.0
    answers = [payload_answer(payload) for payload in report.results_in_input_order()]
    return wall_ms, answers, report.executor_stats, report.aggregate_stats()


def _gil_yield_rate(solver: str) -> float:
    """Progress rate of a background pure-python counter during one solving lane.

    The counter thread and the solving thread share the interpreter; every
    stretch where the solver holds the GIL starves the counter.  A backend
    that releases the GIL inside its bulk kernels hands those stretches to
    the counter, so ``rate(numpy) / rate(dinic)`` directly measures the
    released fraction — on any machine, single-core included.
    """
    import threading

    stop = threading.Event()
    progress = [0]

    def spin() -> None:
        local = 0
        while not stop.is_set():
            local += 1
            progress[0] = local

    thread = threading.Thread(target=spin, daemon=True)
    thread.start()
    start = time.perf_counter()
    _run_sweep("er-medium", solver)
    wall = time.perf_counter() - start
    stop.set()
    thread.join()
    return progress[0] / wall


def main(argv: list[str] | None = None) -> int:
    """Run the trajectory benchmarks and write the JSON baseline."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_flow.json"),
        help="where to write the JSON baseline (default: repo root BENCH_flow.json)",
    )
    parser.add_argument(
        "--skip-large", action="store_true", help="skip the e6-large workloads"
    )
    parser.add_argument(
        "--skip-parallel", action="store_true", help="skip the batch-lanes workloads"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless numpy beats dinic >= 2x on the largest workload, "
        "jobs-4 beats jobs-1, the batched auto run beats the sequential "
        "numpy run >= 1.5x on the small guess-sequence workload, "
        "apply_updates beats per-delta cold rebuilds >= 2x on the "
        "incremental workload, deadline checkpoints cost < 2% when armed "
        "with a never-firing budget, and the process pool matches the "
        "thread reference bit-for-bit on the procpool batch",
    )
    args = parser.parse_args(argv)

    rows: list[dict] = []
    solvers = available_flow_solvers()
    small_walls: dict[tuple[str, str, str], float] = {}
    small_results: dict[tuple[str, str, str], object] = {}
    batched_small_stats: dict[str, dict] = {}
    for workload, dataset, method in SMALL_WORKLOADS:
        for solver in solvers:
            wall_ms, stats, result = _run_densest(dataset, method, solver)
            rows.append(_row(workload, solver, "sequential", wall_ms, stats))
            small_walls[(workload, solver, "sequential")] = wall_ms
            small_results[(workload, solver, "sequential")] = result
            print(f"{workload:40s} {solver:20s} {'sequential':12s} {wall_ms:10.1f}ms", flush=True)
        # The auto policy in both modes: batch_size=1 (per-network backend
        # choice only) and the default batch size (guess sequences of
        # below-threshold networks stacked onto the vector backend).
        for mode, batch_size in (("sequential", 1), ("batched", FlowConfig().batch_size)):
            wall_ms, stats, result = _run_densest(dataset, method, AUTO_SOLVER, batch_size)
            rows.append(_row(workload, AUTO_SOLVER, mode, wall_ms, stats))
            small_walls[(workload, AUTO_SOLVER, mode)] = wall_ms
            small_results[(workload, AUTO_SOLVER, mode)] = result
            if mode == "batched":
                batched_small_stats[workload] = stats
            print(f"{workload:40s} {AUTO_SOLVER:20s} {mode:12s} {wall_ms:10.1f}ms", flush=True)

    incremental_name = f"incremental:{INCREMENTAL_DATASET}/dc-exact"
    incremental_wall, cold_wall, incremental_stats, incremental_match = _run_incremental(
        AUTO_SOLVER
    )
    rows.append(_row(incremental_name, AUTO_SOLVER, "incremental", incremental_wall, incremental_stats))
    rows.append(_row(incremental_name, AUTO_SOLVER, "cold-rebuild", cold_wall, {}))
    incremental_ratio = cold_wall / incremental_wall if incremental_wall > 0 else float("inf")
    print(f"{incremental_name:40s} {AUTO_SOLVER:20s} {'incremental':12s} {incremental_wall:10.1f}ms", flush=True)
    print(f"{incremental_name:40s} {AUTO_SOLVER:20s} {'cold-rebuild':12s} {cold_wall:10.1f}ms", flush=True)
    print(
        f"incremental-update speedup apply_updates vs cold rebuild: {incremental_ratio:.2f}x "
        f"(certified_stale_hits={incremental_stats.get('certified_stale_hits')}, "
        f"local_research_runs={incremental_stats.get('local_research_runs')})"
    )

    deadline_name = f"deadline:{DEADLINE_DATASET}/{DEADLINE_METHOD}"
    disarmed_wall, armed_wall, deadline_identical = _run_deadline_overhead()
    rows.append(_row(deadline_name, AUTO_SOLVER, "disarmed", disarmed_wall, {}))
    rows.append(_row(deadline_name, AUTO_SOLVER, "armed", armed_wall, {}))
    deadline_overhead = (
        armed_wall / disarmed_wall - 1.0 if disarmed_wall > 0 else float("inf")
    )
    print(f"{deadline_name:40s} {AUTO_SOLVER:20s} {'disarmed':12s} {disarmed_wall:10.1f}ms", flush=True)
    print(f"{deadline_name:40s} {AUTO_SOLVER:20s} {'armed':12s} {armed_wall:10.1f}ms", flush=True)
    print(
        f"deadline-checkpoint overhead armed vs disarmed: {deadline_overhead * 100:.2f}% "
        f"(best of {DEADLINE_REPEATS}, answers identical: {deadline_identical})"
    )

    large_ratio = None
    if not args.skip_large:
        skipped = sorted(set(solvers) - set(LARGE_SOLVERS))
        if skipped:
            print(f"note: large workloads skip slow reference solvers: {', '.join(skipped)}")
        large_solvers = [s for s in LARGE_SOLVERS if s == AUTO_SOLVER or s in solvers]
        walls: dict[str, float] = {}
        for workload, dataset, method in [LARGE_DC_WORKLOAD]:
            for solver in large_solvers:
                wall_ms, stats, _ = _run_densest(dataset, method, solver)
                rows.append(_row(workload, solver, "sequential", wall_ms, stats))
                walls[solver] = wall_ms
                print(f"{workload:40s} {solver:20s} {wall_ms:10.1f}ms", flush=True)
        sweep_name = f"e6-large:{LARGE_SWEEP_DATASET}/fixed-ratio-sweep"
        sweep_walls: dict[str, float] = {}
        for solver in large_solvers:
            wall_ms, stats = _run_sweep(LARGE_SWEEP_DATASET, solver)
            rows.append(_row(sweep_name, solver, "sequential", wall_ms, stats))
            sweep_walls[solver] = wall_ms
            print(f"{sweep_name:40s} {solver:20s} {wall_ms:10.1f}ms", flush=True)
        if has_vector_backend():
            # min(): every large workload must individually clear the bar,
            # or the --check gate would let one regress behind the other.
            large_ratio = min(
                walls["dinic"] / walls[VECTOR_SOLVER],
                sweep_walls["dinic"] / sweep_walls[VECTOR_SOLVER],
            )
            print(f"large-workload speedup numpy vs dinic (worst of both): {large_ratio:.2f}x")

    import os

    cpu_count = os.cpu_count() or 1
    parallel_ratio = None
    gil_ratio = None
    parallel_block: dict = {"cpu_count": cpu_count}
    if not args.skip_parallel:
        if has_vector_backend():
            batch_walls = {}
            for jobs in (1, 4):
                wall_ms, stats = _run_batch(jobs, VECTOR_SOLVER)
                rows.append(
                    _row(f"batch-lanes:jobs-{jobs}", VECTOR_SOLVER, "sequential", wall_ms, stats)
                )
                batch_walls[jobs] = wall_ms
                print(f"{'batch-lanes:jobs-' + str(jobs):40s} {VECTOR_SOLVER:20s} {wall_ms:10.1f}ms", flush=True)
            parallel_ratio = batch_walls[1] / batch_walls[4]
            parallel_block.update(
                jobs1_wall_ms=round(batch_walls[1], 1),
                jobs4_wall_ms=round(batch_walls[4], 1),
                jobs4_speedup=round(parallel_ratio, 3),
            )
            print(f"lane-parallel speedup jobs-4 vs jobs-1: {parallel_ratio:.2f}x")
            if cpu_count < 2:
                print(
                    "note: this machine has a single CPU — lanes cannot overlap "
                    "in wall-clock here; the GIL-yield probe below shows the "
                    "parallelism the backend enables on multi-core machines"
                )
            rates = {name: _gil_yield_rate(name) for name in ("dinic", VECTOR_SOLVER)}
            gil_ratio = rates[VECTOR_SOLVER] / rates["dinic"]
            parallel_block["gil_yield_ratio"] = round(gil_ratio, 3)
            print(
                f"GIL-yield probe: background counter runs {gil_ratio:.2f}x faster "
                f"during {VECTOR_SOLVER} lanes than during dinic lanes"
            )
        else:
            print("note: batch-lanes workloads skipped (numpy not importable)")

    procpool_failures: list[str] = []
    procpool_ran = False
    if not args.skip_parallel:
        pool_ok, pool_reason = process_pool_available()
        if pool_ok:
            procpool_ran = True
            thread_wall, thread_answers, _, thread_stats = _run_procpool(
                2, process_pool=False
            )
            rows.append(_row("procpool:threads", AUTO_SOLVER, "threads", thread_wall, thread_stats))
            print(f"{'procpool:threads':40s} {AUTO_SOLVER:20s} {'threads':12s} {thread_wall:10.1f}ms", flush=True)
            procpool_walls: dict[int, float] = {}
            for jobs in (1, 2):
                wall_ms, answers, executor_stats, agg = _run_procpool(
                    jobs, process_pool=True
                )
                rows.append(
                    _row(f"procpool:jobs-{jobs}", AUTO_SOLVER, "process-pool", wall_ms, agg)
                )
                procpool_walls[jobs] = wall_ms
                print(f"{'procpool:jobs-' + str(jobs):40s} {AUTO_SOLVER:20s} {'process-pool':12s} {wall_ms:10.1f}ms", flush=True)
                if answers != thread_answers:
                    procpool_failures.append(
                        f"process-pool jobs-{jobs} answers diverged from the thread reference"
                    )
                if executor_stats.get("mode") != "process-pool":
                    procpool_failures.append(
                        f"process-pool jobs-{jobs} degraded to "
                        f"{executor_stats.get('mode')!r} "
                        f"({executor_stats.get('reason')!r})"
                    )
                elif executor_stats.get("worker_crashes", 0):
                    procpool_failures.append(
                        f"process-pool jobs-{jobs} recorded "
                        f"{executor_stats['worker_crashes']} worker crashes"
                    )
                if jobs == 2:
                    spawned = executor_stats.get("workers_spawned", 0)
                    parallel_block["procpool"] = {
                        "jobs2_workers_spawned": spawned,
                        "shm_bytes_mapped": executor_stats.get("shm_bytes_mapped", 0),
                        "start_method": executor_stats.get("start_method"),
                    }
                    if executor_stats.get("mode") == "process-pool" and spawned < 2:
                        procpool_failures.append(
                            f"process-pool jobs-2 spawned only {spawned} worker(s) — "
                            "fingerprint shard routing did not fan out"
                        )
            if cpu_count > 1 and procpool_walls.get(2, 0) >= procpool_walls.get(1, 1):
                procpool_failures.append(
                    f"process-pool jobs-2 ({procpool_walls[2]:.0f}ms) did not beat "
                    f"jobs-1 ({procpool_walls[1]:.0f}ms) on a {cpu_count}-core machine"
                )
        else:
            print(f"note: procpool workloads skipped ({pool_reason})")

    remote_failures: list[str] = []
    if not args.skip_parallel:
        from repro.net import ShardDaemon

        _, reference_answers, _, _ = _run_procpool(2, process_pool=False)
        with ShardDaemon() as first, ShardDaemon() as second:
            remote_wall, remote_answers, remote_stats, remote_agg = _run_remote(
                [first.address, second.address]
            )
        rows.append(
            _row("remote:loopback", AUTO_SOLVER, "remote", remote_wall, remote_agg)
        )
        print(f"{'remote:loopback':40s} {AUTO_SOLVER:20s} {'remote':12s} {remote_wall:10.1f}ms", flush=True)
        # Parity gate: the row is only meaningful if the loopback daemons
        # returned bit-identical answers with every lane solved remotely.
        if remote_answers != reference_answers:
            remote_failures.append(
                "remote:loopback answers diverged from the local reference"
            )
        if remote_stats.get("lanes_inline", 0) or remote_stats.get(
            "remote_failures", 0
        ):
            remote_failures.append(
                "remote:loopback run fell back inline "
                f"(lanes_inline={remote_stats.get('lanes_inline')}, "
                f"remote_failures={remote_stats.get('remote_failures')})"
            )
        parallel_block["remote"] = {
            "daemons": 2,
            "lanes_remote": remote_stats.get("lanes_remote", 0),
            "client": remote_stats.get("client", {}),
        }

    document = {
        "schema_version": 2,
        "generated_by": "tools/bench_trajectory.py",
        "schema": [
            "workload",
            "solver",
            "mode",
            "wall_ms",
            "arcs_pushed",
            "warm_starts_used",
            "batched_solves",
        ],
        "rows": rows,
        "parallel": parallel_block,
    }
    output = Path(args.output)
    output.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {len(rows)} rows to {output}")

    if args.check:
        failures = []
        # Process-pool parity gates (collected above, next to the runs):
        # bit-identical answers vs the thread reference, no silent
        # degradation, no crashes, jobs-2 fan-out — and a jobs-2 speedup
        # only where more than one core makes that physically possible.
        failures.extend(procpool_failures)
        if not args.skip_parallel and not procpool_ran:
            print("note: procpool gates skipped (pool unavailable on this platform)")
        # Network-tier parity gate (collected next to the remote run):
        # loopback daemons must return bit-identical answers with zero
        # inline fallbacks, or the remote:loopback row is not trustworthy.
        failures.extend(remote_failures)
        # Incremental-update gate: serving small deltas by patch-and-certify
        # must beat the per-delta cold rebuild by the recorded margin, with
        # density parity on every step.
        if incremental_ratio < 2.0:
            failures.append(
                f"apply_updates ({incremental_wall:.0f}ms) did not beat per-delta "
                f"cold rebuilds ({cold_wall:.0f}ms) by 2x on {incremental_name} "
                f"(got {incremental_ratio:.2f}x)"
            )
        if not incremental_match:
            failures.append(
                f"incremental and cold-rebuild densities diverged on {incremental_name}"
            )
        # Deadline-checkpoint overhead gate: arming a never-firing budget
        # must cost < 2% wall on the deadline workload, answer unchanged.
        if deadline_overhead >= 0.02:
            failures.append(
                f"deadline checkpoints cost {deadline_overhead * 100:.2f}% on "
                f"{deadline_name} (armed {armed_wall:.0f}ms vs disarmed "
                f"{disarmed_wall:.0f}ms; recorded bound is 2%)"
            )
        if not deadline_identical:
            failures.append(
                f"armed and disarmed runs disagree on the {deadline_name} subgraph"
            )
        if has_vector_backend():
            # Small-workload regression gate: the batched auto run of the
            # guess-sequence workload must beat the sequential vector run by
            # the recorded margin, by actually batching, with the same answer.
            guess_seq = SMALL_WORKLOADS[0][0]
            seq_wall = small_walls[(guess_seq, VECTOR_SOLVER, "sequential")]
            bat_wall = small_walls[(guess_seq, AUTO_SOLVER, "batched")]
            small_ratio = seq_wall / bat_wall
            print(f"small-workload speedup batched auto vs sequential numpy: {small_ratio:.2f}x")
            if small_ratio < 1.5:
                failures.append(
                    f"batched auto ({bat_wall:.0f}ms) did not beat sequential "
                    f"{VECTOR_SOLVER} ({seq_wall:.0f}ms) by 1.5x on {guess_seq} "
                    f"(got {small_ratio:.2f}x)"
                )
            bat_stats = batched_small_stats[guess_seq]
            if bat_stats.get("batched_solves", 0) < 1:
                failures.append(f"no batched solves recorded on {guess_seq}")
            if bat_stats.get("auto_backends", {}).get(VECTOR_SOLVER, 0) < 1:
                failures.append(
                    f"the auto policy never put batched members on {VECTOR_SOLVER} "
                    f"({guess_seq}; auto_backends: {bat_stats.get('auto_backends')!r})"
                )
            seq_res = small_results[(guess_seq, VECTOR_SOLVER, "sequential")]
            bat_res = small_results[(guess_seq, AUTO_SOLVER, "batched")]
            if (
                seq_res.density != bat_res.density
                or sorted(map(str, seq_res.s_nodes)) != sorted(map(str, bat_res.s_nodes))
                or sorted(map(str, seq_res.t_nodes)) != sorted(map(str, bat_res.t_nodes))
            ):
                failures.append(
                    f"batched auto and sequential {VECTOR_SOLVER} disagree on the "
                    f"{guess_seq} subgraph ({bat_res.density} vs {seq_res.density})"
                )
        if large_ratio is not None and large_ratio < 2.0:
            failures.append(
                f"numpy-vs-dinic speedup {large_ratio:.2f}x on the largest workload "
                "is below the recorded 2x"
            )
        if cpu_count > 1:
            if parallel_ratio is not None and parallel_ratio <= 1.0:
                failures.append(
                    f"jobs-4 batch ({parallel_ratio:.2f}x) did not beat jobs-1"
                )
        elif gil_ratio is not None and gil_ratio <= 1.05:
            failures.append(
                f"GIL-yield ratio {gil_ratio:.2f} shows no released GIL "
                "(single-core fallback check)"
            )
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
