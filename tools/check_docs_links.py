#!/usr/bin/env python3
"""Dependency-free link checker for the repo's Markdown documentation.

Used by the CI docs job.  Walks ``README.md`` and every ``docs/*.md`` file,
extracts Markdown link targets, and fails (exit code 1) when

* a *relative* link points at a file that does not exist,
* a link's ``#fragment`` — intra-document or into another Markdown file —
  names a heading anchor that does not exist in the target (GitHub
  slugification rules), or
* a ``repro.*`` dotted reference in backticked inline code names a module
  that cannot be found under ``src/``.

External (``http(s)://``) links are not fetched — CI must not depend on the
network — but their syntax is still validated.
"""

from __future__ import annotations

import re
import sys
from functools import lru_cache
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
MODULE_PATTERN = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of one heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep their text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


@lru_cache(maxsize=None)
def _anchors_of(path: Path) -> frozenset[str]:
    """Every heading anchor a Markdown file exposes (duplicates numbered)."""
    anchors: list[str] = []
    counts: dict[str, int] = {}
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        match = HEADING_PATTERN.match(line)
        if not match:
            continue
        slug = _slugify(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.append(slug if seen == 0 else f"{slug}-{seen}")
    return frozenset(anchors)


def _doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _check_links(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        relative, _, fragment = target.partition("#")
        if relative:
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
                continue
        else:
            resolved = path  # intra-document anchor
        if fragment and resolved.suffix == ".md":
            if fragment.lower() not in _anchors_of(resolved):
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}: broken anchor -> {target} "
                    f"(no heading '#{fragment}' in {resolved.relative_to(REPO_ROOT)})"
                )
    return errors


def _check_module_references(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in MODULE_PATTERN.finditer(text):
        dotted = match.group(1)
        parts = dotted.split(".")
        # Accept any prefix of the dotted path that is a real module; the
        # tail may be a class / function / attribute.
        found = False
        for depth in range(len(parts), 0, -1):
            candidate = REPO_ROOT / "src" / Path(*parts[:depth])
            if candidate.with_suffix(".py").exists() or (candidate / "__init__.py").exists():
                found = True
                break
        if not found:
            errors.append(f"{path.relative_to(REPO_ROOT)}: unknown module reference `{dotted}`")
    return errors


def main() -> int:
    """Check every documentation file; print problems and return an exit code."""
    errors: list[str] = []
    files = _doc_files()
    if len(files) < 2:
        errors.append("expected README.md plus at least one docs/*.md file")
    for path in files:
        errors.extend(_check_links(path))
        errors.extend(_check_module_references(path))
    for error in errors:
        print(f"FAIL: {error}")
    if not errors:
        print(f"OK: {len(files)} documentation files, all links and module references resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
