"""Small shared utilities: timing, validation and deterministic RNG helpers."""

from repro.utils.rng import make_rng
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    require,
    require_non_negative_int,
    require_positive,
    require_positive_int,
    require_probability,
)

__all__ = [
    "Timer",
    "timed",
    "make_rng",
    "require",
    "require_positive",
    "require_positive_int",
    "require_non_negative_int",
    "require_probability",
]
