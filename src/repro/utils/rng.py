"""Deterministic random-number-generator helpers.

All generators in :mod:`repro.graph.generators` and all synthetic datasets in
:mod:`repro.datasets` accept either a seed or a ready-made
:class:`random.Random`; this module centralises the conversion so experiments
are reproducible bit-for-bit across runs.
"""

from __future__ import annotations

import random
from typing import Union

RngLike = Union[int, random.Random, None]


def make_rng(seed: RngLike = None) -> random.Random:
    """Return a :class:`random.Random` from a seed, an existing RNG, or None.

    Passing an existing RNG returns it unchanged (so callers can thread one
    generator through a pipeline); passing an integer builds a fresh seeded
    generator; passing ``None`` builds an unseeded generator.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
