"""Argument-validation helpers shared across the library.

Every public algorithm validates its parameters eagerly and raises
:class:`repro.exceptions.AlgorithmError` with an actionable message, so that
misuse fails at the call site rather than deep inside a peeling loop or a
max-flow computation.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import AlgorithmError


def require(condition: bool, message: str) -> None:
    """Raise :class:`AlgorithmError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise AlgorithmError(message)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise AlgorithmError(f"{name} must be a number, got {type(value).__name__}")
    if not value > 0:
        raise AlgorithmError(f"{name} must be > 0, got {value!r}")
    return float(value)


def require_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise AlgorithmError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise AlgorithmError(f"{name} must be >= 1, got {value}")
    return value


def require_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise AlgorithmError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise AlgorithmError(f"{name} must be >= 0, got {value}")
    return value


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise AlgorithmError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise AlgorithmError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)
