"""Wall-clock timing helpers used by the benchmark harness and the CLI."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    The timer can be used either as a context manager (each ``with`` block
    adds to :attr:`elapsed`) or manually through :meth:`start` / :meth:`stop`.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     sum(range(1000))
    499500
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _started_at: float | None = None

    def start(self) -> None:
        """Start (or restart) the current lap."""
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the current lap, record it, and return its duration."""
        if self._started_at is None:
            raise RuntimeError("Timer.stop() called without a matching start()")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.laps.append(lap)
        self.elapsed += lap
        return lap

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def reset(self) -> None:
        """Forget all recorded laps."""
        self.elapsed = 0.0
        self.laps.clear()
        self._started_at = None


@contextmanager
def timed(label: str, sink: dict[str, float] | None = None) -> Iterator[Timer]:
    """Context manager that times a block and optionally records the result.

    Parameters
    ----------
    label:
        Name under which the elapsed time is stored in ``sink``.
    sink:
        Optional dictionary receiving ``sink[label] = elapsed_seconds``.
    """
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        timer.stop()
        if sink is not None:
            sink[label] = timer.elapsed


def time_call(func: Callable[[], T]) -> tuple[T, float]:
    """Call ``func`` once and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start
