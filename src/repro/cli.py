"""Command-line interface: ``dds-repro`` (or ``python -m repro``).

Every sub-command that touches a graph builds one
:class:`~repro.session.DDSSession` and serves the request through it, so a
single invocation shares derived state (degree arrays, cores, decision
networks) across whatever it computes.

Sub-commands
------------
``find``      run a DDS algorithm on an edge-list file or a named dataset
``top-k``     greedy edge-disjoint top-k dense pairs
``core``      compute an [x, y]-core or the maximum-product core
``batch``     run a JSON list of queries against ONE shared session
``datasets``  list the registered synthetic datasets
``summary``   print structural statistics of a graph
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.core.method_registry import available_methods
from repro.core.results import DDSResult
from repro.datasets.registry import dataset_specs, load_dataset
from repro.exceptions import ConfigError, ReproError
from repro.flow.registry import available_flow_solvers
from repro.graph.io import read_edge_list
from repro.session import DDSSession


def _load_session(args: argparse.Namespace) -> DDSSession:
    if args.dataset is not None:
        return DDSSession(load_dataset(args.dataset))
    if args.edge_list is not None:
        return DDSSession(read_edge_list(args.edge_list))
    raise SystemExit("either --dataset or --edge-list is required")


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="name of a registered synthetic dataset")
    parser.add_argument("--edge-list", help="path to a whitespace-separated edge-list file")


def _add_method_options(parser: argparse.ArgumentParser, *, with_quality: bool) -> None:
    parser.add_argument(
        "--method",
        default="auto",
        choices=["auto"] + available_methods(),
        help="algorithm to run (default: auto)",
    )
    parser.add_argument(
        "--flow-solver",
        default=None,
        choices=available_flow_solvers(),
        help="max-flow backend for the flow-backed exact methods (default: dinic)",
    )
    parser.add_argument(
        "--cold-start",
        action="store_true",
        help="disable warm-start residual reuse between binary-search guesses "
        "(answers are identical, more flow work; a no-op for methods that "
        "run no min-cuts)",
    )
    if with_quality:
        parser.add_argument(
            "--tolerance",
            type=float,
            default=None,
            help="binary-search stopping gap of the exact methods "
            "(default: the provably-exact gap of the input graph)",
        )
        parser.add_argument(
            "--epsilon",
            type=float,
            default=None,
            help="ratio-grid step of peel-approx (guarantee 2*sqrt(1+epsilon))",
        )


def _method_kwargs(args: argparse.Namespace) -> dict:
    """Per-field config overrides taken from the CLI flags.

    Validation happens in the typed config dataclasses
    (:mod:`repro.core.config`); a :class:`ConfigError` — e.g. ``--epsilon``
    passed to an exact method — is rendered as a clean CLI error.
    """
    kwargs = {}
    for name in ("flow_solver", "tolerance", "epsilon"):
        value = getattr(args, name, None)
        if value is not None:
            kwargs[name] = value
    if getattr(args, "cold_start", False):
        kwargs["warm_start"] = False
    return kwargs


def _find_payload(result: DDSResult, show_nodes: bool) -> dict[str, Any]:
    payload = {
        "method": result.method,
        "density": result.density,
        "edge_count": result.edge_count,
        "s_size": result.s_size,
        "t_size": result.t_size,
        "is_exact": result.is_exact,
    }
    if "flow_solver" in result.stats:
        payload["flow_solver"] = result.stats["flow_solver"]
    if show_nodes:
        payload["s_nodes"] = [str(node) for node in result.s_nodes]
        payload["t_nodes"] = [str(node) for node in result.t_nodes]
    return payload


def _cmd_find(args: argparse.Namespace) -> int:
    session = _load_session(args)
    result = session.densest_subgraph(args.method, **_method_kwargs(args))
    print(json.dumps(_find_payload(result, args.show_nodes), indent=2))
    return 0


def _core_payload(session: DDSSession, x: int | None, y: int | None, show_nodes: bool) -> dict:
    if x is not None and y is not None:
        core = session.xy_core(x, y)
    else:
        core = session.max_xy_core()
    payload = {
        "x": core.x,
        "y": core.y,
        "s_size": len(core.s_nodes),
        "t_size": len(core.t_nodes),
        "empty": core.is_empty,
    }
    if show_nodes:
        graph = session.graph
        payload["s_nodes"] = [str(graph.label_of(i)) for i in core.s_nodes]
        payload["t_nodes"] = [str(graph.label_of(i)) for i in core.t_nodes]
    return payload


def _cmd_core(args: argparse.Namespace) -> int:
    session = _load_session(args)
    print(json.dumps(_core_payload(session, args.x, args.y, args.show_nodes), indent=2))
    return 0


def _topk_payload(results: list[DDSResult]) -> list[dict]:
    return [
        {
            "rank": rank,
            "density": result.density,
            "edge_count": result.edge_count,
            "s_size": result.s_size,
            "t_size": result.t_size,
        }
        for rank, result in enumerate(results, start=1)
    ]


def _cmd_topk(args: argparse.Namespace) -> int:
    session = _load_session(args)
    results = session.top_k(
        args.k, method=args.method, min_density=args.min_density, **_method_kwargs(args)
    )
    print(json.dumps(_topk_payload(results), indent=2))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    for spec in dataset_specs():
        print(f"{spec.name:18s} [{spec.tier:6s}] {spec.description} (analogue: {spec.paper_analogue})")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    session = _load_session(args)
    print(json.dumps(session.summary(), indent=2))
    return 0


# ----------------------------------------------------------------------
# batch: many queries, one session
# ----------------------------------------------------------------------
def _pop_required(spec: dict[str, Any], key: str, query: str) -> Any:
    if key not in spec:
        raise SystemExit(f"batch query {query!r} requires a {key!r} field")
    return spec.pop(key)


def _as_number(value: Any, key: str, query: str, optional: bool = False) -> float | None:
    if optional and value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SystemExit(f"batch query {query!r} field {key!r} must be a number, got {value!r}")
    return float(value)


def _reject_leftovers(spec: dict[str, Any], query: str) -> None:
    """Typo'd or inapplicable fields must error, not silently do nothing."""
    if spec:
        raise SystemExit(
            f"batch query {query!r} got unexpected fields: {', '.join(sorted(spec))}"
        )


def _run_batch_query(session: DDSSession, spec: dict[str, Any]) -> Any:
    """Execute one batch entry against the shared session.

    ``densest`` / ``top-k`` forward their remaining fields into the typed
    method configs (so unknown fields raise :class:`ConfigError`); the other
    query kinds take a fixed field set and reject leftovers explicitly.
    """
    if not isinstance(spec, dict):
        raise SystemExit(f"batch entries must be JSON objects, got: {spec!r}")
    spec = dict(spec)
    query = spec.pop("query", "densest")
    if query == "densest":
        method = spec.pop("method", "auto")
        show_nodes = bool(spec.pop("show_nodes", False))
        result = session.densest_subgraph(method, **spec)
        return _find_payload(result, show_nodes)
    if query == "top-k":
        method = spec.pop("method", "auto")
        k = spec.pop("k", 3)
        min_density = spec.pop("min_density", 0.0)
        return _topk_payload(session.top_k(k, method=method, min_density=min_density, **spec))
    if query == "xy-core":
        x = _pop_required(spec, "x", query)
        y = _pop_required(spec, "y", query)
        show_nodes = bool(spec.pop("show_nodes", False))
        _reject_leftovers(spec, query)
        return _core_payload(session, x, y, show_nodes)
    if query == "max-core":
        show_nodes = bool(spec.pop("show_nodes", False))
        _reject_leftovers(spec, query)
        return _core_payload(session, None, None, show_nodes)
    if query == "fixed-ratio":
        ratio = _as_number(_pop_required(spec, "ratio", query), "ratio", query)
        tolerance = _as_number(spec.pop("tolerance", None), "tolerance", query, optional=True)
        _reject_leftovers(spec, query)
        outcome = session.fixed_ratio(ratio, tolerance=tolerance)
        return {
            "ratio": outcome.ratio,
            "lower": outcome.lower,
            "upper": outcome.upper,
            "best_density": outcome.best_density,
            "flow_calls": outcome.flow_calls,
            "networks_built": outcome.networks_built,
            "networks_reused": outcome.networks_reused,
            "warm_starts_used": outcome.warm_starts_used,
            "cold_starts": outcome.cold_starts,
        }
    if query == "summary":
        _reject_leftovers(spec, query)
        return session.summary()
    raise SystemExit(
        f"unknown batch query {query!r}; expected one of: "
        "densest, top-k, xy-core, max-core, fixed-ratio, summary"
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    session = _load_session(args)
    try:
        with open(args.queries, "r", encoding="utf-8") as handle:
            queries = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read batch queries from {args.queries!r}: {error}")
    if not isinstance(queries, list):
        raise SystemExit("the batch file must contain a JSON list of query objects")
    try:
        results = [_run_batch_query(session, query) for query in queries]
    except ConfigError as error:
        raise SystemExit(f"invalid configuration: {error}")
    except ReproError as error:
        # Unknown method names, bad parameter values, ... — render the same
        # clean one-line error every other CLI path produces.
        raise SystemExit(f"batch query failed: {error}")
    payload = {"results": results, "session": session.cache_stats()}
    print(json.dumps(payload, indent=2, default=str))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="dds-repro",
        description="Densest subgraph discovery on directed graphs (SIGMOD 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    find = subparsers.add_parser("find", help="run a DDS algorithm")
    _add_graph_source(find)
    _add_method_options(find, with_quality=True)
    find.add_argument("--show-nodes", action="store_true", help="include the node lists")
    find.set_defaults(handler=_cmd_find)

    core = subparsers.add_parser("core", help="compute an [x, y]-core")
    _add_graph_source(core)
    core.add_argument("--x", type=int, default=None, help="required out-degree into T")
    core.add_argument("--y", type=int, default=None, help="required in-degree from S")
    core.add_argument("--show-nodes", action="store_true", help="include the node lists")
    core.set_defaults(handler=_cmd_core)

    topk = subparsers.add_parser("top-k", help="greedy edge-disjoint top-k dense pairs")
    _add_graph_source(topk)
    topk.add_argument("--k", type=int, default=3, help="number of pairs to extract")
    _add_method_options(topk, with_quality=True)
    topk.add_argument(
        "--min-density", type=float, default=0.0, help="stop once the best density drops below this"
    )
    topk.set_defaults(handler=_cmd_topk)

    batch = subparsers.add_parser(
        "batch", help="run a JSON list of queries against one shared session"
    )
    _add_graph_source(batch)
    batch.add_argument(
        "queries",
        help="path to a JSON file holding a list of query objects, e.g. "
        '[{"query": "densest", "method": "core-exact"}, {"query": "top-k", "k": 2}]',
    )
    batch.set_defaults(handler=_cmd_batch)

    datasets = subparsers.add_parser("datasets", help="list registered datasets")
    datasets.set_defaults(handler=_cmd_datasets)

    summary = subparsers.add_parser("summary", help="print graph statistics")
    _add_graph_source(summary)
    summary.set_defaults(handler=_cmd_summary)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (returns a process exit code).

    Library errors — unknown datasets, empty graphs, invalid configurations,
    refused node limits — are rendered as clean one-line messages instead of
    tracebacks; sub-command handlers may still raise more specific
    :class:`SystemExit` messages of their own (e.g. ``batch``).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ConfigError as error:
        raise SystemExit(f"invalid configuration: {error}")
    except ReproError as error:
        raise SystemExit(f"error: {error}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
