"""Command-line interface: ``dds-repro`` (or ``python -m repro``).

Every sub-command that touches a graph builds one
:class:`~repro.session.DDSSession` and serves the request through it, so a
single invocation shares derived state (degree arrays, cores, decision
networks) across whatever it computes.  ``batch`` goes further and drives
the service tier (:mod:`repro.service`): queries are reordered by the
cache-aware planner and executed on a pool of per-graph sessions, with an
optional persistent store carrying warm state across invocations.

Sub-commands
------------
``find``      run a DDS algorithm on an edge-list file or a named dataset
``top-k``     greedy edge-disjoint top-k dense pairs
``core``      compute an [x, y]-core or the maximum-product core
``batch``     plan + execute a JSON list of queries (``--no-plan`` for file
              order, ``--explain`` for the plan report, ``--store`` for
              persistent warm state, ``--process-pool`` for shared-memory
              worker processes, ``--remote host:port,...`` to route lanes
              to shard daemons, ``--deadline-ms`` for per-lane budgets with
              anytime answers)
``serve``     run a shard daemon serving DDS answers over the frame protocol
              (SIGINT/SIGTERM drain gracefully within ``--drain-grace``)
``ping``      health-check a shard daemon
``warm``      precompute a graph's warm state into a persistent store
``store``     inspect, verify, or clear a persistent store
``datasets``  list the registered synthetic datasets
``summary``   print structural statistics of a graph
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.core.method_registry import available_methods
from repro.datasets.registry import dataset_specs, load_dataset
from repro.exceptions import ConfigError, ReproError
from repro.flow.registry import flow_solver_choices
from repro.graph.digraph import DiGraph
from repro.graph.io import read_edge_list
from repro.service import BatchExecutor, SessionStore, plan_batch
from repro.service.queries import core_payload, find_payload, topk_payload
from repro.session import DDSSession


def _load_graph(args: argparse.Namespace) -> DiGraph:
    if args.dataset is not None:
        return load_dataset(args.dataset)
    if args.edge_list is not None:
        return read_edge_list(args.edge_list)
    raise SystemExit("either --dataset or --edge-list is required")


def _load_session(args: argparse.Namespace) -> DDSSession:
    return DDSSession(_load_graph(args))


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="name of a registered synthetic dataset")
    parser.add_argument("--edge-list", help="path to a whitespace-separated edge-list file")


def _add_method_options(parser: argparse.ArgumentParser, *, with_quality: bool) -> None:
    parser.add_argument(
        "--method",
        default="auto",
        choices=["auto"] + available_methods(),
        help="algorithm to run (default: auto)",
    )
    parser.add_argument(
        "--flow-solver",
        default=None,
        choices=flow_solver_choices(),
        help="max-flow backend for the flow-backed exact methods (default: dinic; "
        "'auto' picks the vectorised numpy backend for large decision networks "
        "when numpy is installed)",
    )
    parser.add_argument(
        "--cold-start",
        action="store_true",
        help="disable warm-start residual reuse between binary-search guesses "
        "(answers are identical, more flow work; a no-op for methods that "
        "run no min-cuts)",
    )
    if with_quality:
        parser.add_argument(
            "--tolerance",
            type=float,
            default=None,
            help="binary-search stopping gap of the exact methods "
            "(default: the provably-exact gap of the input graph)",
        )
        parser.add_argument(
            "--epsilon",
            type=float,
            default=None,
            help="ratio-grid step of peel-approx (guarantee 2*sqrt(1+epsilon))",
        )


def _method_kwargs(args: argparse.Namespace) -> dict:
    """Per-field config overrides taken from the CLI flags.

    Validation happens in the typed config dataclasses
    (:mod:`repro.core.config`); a :class:`ConfigError` — e.g. ``--epsilon``
    passed to an exact method — is rendered as a clean CLI error.
    """
    kwargs = {}
    for name in ("flow_solver", "tolerance", "epsilon"):
        value = getattr(args, name, None)
        if value is not None:
            kwargs[name] = value
    if getattr(args, "cold_start", False):
        kwargs["warm_start"] = False
    return kwargs


def _cmd_find(args: argparse.Namespace) -> int:
    session = _load_session(args)
    result = session.densest_subgraph(args.method, **_method_kwargs(args))
    print(json.dumps(find_payload(result, args.show_nodes), indent=2))
    return 0


def _cmd_core(args: argparse.Namespace) -> int:
    session = _load_session(args)
    print(json.dumps(core_payload(session, args.x, args.y, args.show_nodes), indent=2))
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    session = _load_session(args)
    results = session.top_k(
        args.k, method=args.method, min_density=args.min_density, **_method_kwargs(args)
    )
    print(json.dumps(topk_payload(results), indent=2))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    for spec in dataset_specs():
        print(f"{spec.name:18s} [{spec.tier:6s}] {spec.description} (analogue: {spec.paper_analogue})")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    session = _load_session(args)
    print(json.dumps(session.summary(), indent=2))
    return 0


# ----------------------------------------------------------------------
# batch: many queries through the service tier
# ----------------------------------------------------------------------
def _batch_graph_source(args: argparse.Namespace) -> tuple[str, Any]:
    """The batch's default graph key plus the executor's graph provider.

    The default graph comes from ``--dataset``/``--edge-list`` exactly like
    the single-query commands; per-query ``"dataset"`` fields address any
    registered dataset on top of that.
    """
    if args.dataset is not None:
        default_key = args.dataset
    elif args.edge_list is not None:
        default_key = str(args.edge_list)
    else:
        raise SystemExit("either --dataset or --edge-list is required")

    def provider(key: str) -> DiGraph:
        if args.edge_list is not None and key == str(args.edge_list):
            return read_edge_list(args.edge_list)
        return load_dataset(key)

    return default_key, provider


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        with open(args.queries, "r", encoding="utf-8") as handle:
            queries = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read batch queries from {args.queries!r}: {error}")
    if not isinstance(queries, list):
        raise SystemExit("the batch file must contain a JSON list of query objects")
    default_key, provider = _batch_graph_source(args)
    store = SessionStore(args.store) if args.store is not None else None
    try:
        plan = plan_batch(queries, default_graph_key=default_key, planned=not args.no_plan)
        executor = BatchExecutor(
            provider,
            flow=args.flow_solver,
            max_workers=args.jobs,
            store=store,
            process_pool=args.process_pool,
            remote_hosts=args.remote.split(",") if args.remote else None,
            max_retries=args.max_retries,
            deadline_ms=args.deadline_ms,
        )
        report = executor.execute(plan)
    except ConfigError as error:
        raise SystemExit(f"invalid configuration: {error}")
    except ReproError as error:
        # Unknown method names, malformed entries, bad parameter values, ... —
        # render the same clean one-line error every other CLI path produces.
        raise SystemExit(f"batch query failed: {error}")
    payload: dict[str, Any] = {
        "results": report.results_in_input_order(),
        "session": report.aggregate_stats(),
    }
    if report.executor_stats:
        payload["executor"] = report.executor_stats
    if args.explain:
        explanation = plan.explain()
        explanation["realized"] = report.realized_cache_hits()
        explanation["timings"] = report.timings()
        payload["plan"] = explanation
    if store is not None:
        payload["store"] = report.store_stats
    print(json.dumps(payload, indent=2, default=str))
    return 0


# ----------------------------------------------------------------------
# serve: a shard daemon on this box
# ----------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.net import ShardDaemon

    store = SessionStore(args.store) if args.store is not None else None
    daemon = ShardDaemon(
        store,
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        max_workers=args.jobs,
        flow=args.flow_solver,
    )
    host, port = daemon.start()

    # SIGINT/SIGTERM trigger a graceful drain — stop accepting, finish
    # in-flight work within --drain-grace, flush resident sessions to the
    # store — instead of dropping connections mid-frame.  A second signal
    # falls through to KeyboardInterrupt (SIGINT) or default termination
    # (SIGTERM), so a stuck daemon can still be killed by hand.
    def _drain_once(signum: int, frame: Any) -> None:
        signal.signal(signal.SIGINT, signal.default_int_handler)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        daemon.drain(args.drain_grace)

    signal.signal(signal.SIGINT, _drain_once)
    signal.signal(signal.SIGTERM, _drain_once)
    # One machine-readable ready line (flushed) so wrappers — tests, shell
    # scripts starting a fleet on ephemeral ports — can parse the address.
    print(
        json.dumps({"serving": f"{host}:{port}", "store": args.store}),
        flush=True,
    )
    try:
        daemon.join()
    except KeyboardInterrupt:
        daemon.shutdown()
    print(json.dumps({"stopped": f"{host}:{port}", "stats": daemon.daemon_stats()}))
    return 0


# ----------------------------------------------------------------------
# ping: health-check a shard daemon
# ----------------------------------------------------------------------
def _cmd_ping(args: argparse.Namespace) -> int:
    from repro.exceptions import NetError
    from repro.net.client import ShardClient, parse_host_port

    host, port = parse_host_port(args.address)
    client = ShardClient(host, port, max_retries=args.max_retries)
    try:
        payload = client.ping()
    except NetError as error:
        print(json.dumps({"address": f"{host}:{port}", "reachable": False, "error": str(error)}))
        return 1
    print(json.dumps({"address": f"{host}:{port}", "reachable": True, "pong": payload}, default=str))
    return 0


# ----------------------------------------------------------------------
# warm / store: persistent warm-state management
# ----------------------------------------------------------------------
def _cmd_warm(args: argparse.Namespace) -> int:
    # Open the store before computing anything: an incompatible store must
    # fail fast, not after the expensive solves it could never persist.
    store = SessionStore(args.store)
    graph = _load_graph(args)
    session = DDSSession(graph)
    methods = args.method or ["auto"]
    results = {}
    for method in methods:
        result = session.densest_subgraph(method)
        results[method] = {"method": result.method, "density": result.density}
    if args.max_core:
        core = session.max_xy_core()
        results["max-core"] = {"x": core.x, "y": core.y}
    payload = {
        "fingerprint": graph.content_fingerprint(),
        "computed": results,
        "saved": store.save_session(session),
    }
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    store = SessionStore(args.root)
    if args.clear:
        print(json.dumps({"cleared_graphs": store.clear()}, indent=2))
        return 0
    payload: dict[str, Any] = {"root": str(store.root)}
    if args.evict_older_than is not None or args.max_bytes is not None:
        # Eviction composes with --verify below: sweep first, then report
        # (and integrity-check) what survived.
        payload["evicted"] = store.evict(
            older_than_days=args.evict_older_than, max_bytes=args.max_bytes
        )
    payload["graphs"] = store.inventory()
    if args.verify:
        problems = store.verify()
        payload["problems"] = problems
        print(json.dumps(payload, indent=2))
        return 1 if problems else 0
    print(json.dumps(payload, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="dds-repro",
        description="Densest subgraph discovery on directed graphs (SIGMOD 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    find = subparsers.add_parser("find", help="run a DDS algorithm")
    _add_graph_source(find)
    _add_method_options(find, with_quality=True)
    find.add_argument("--show-nodes", action="store_true", help="include the node lists")
    find.set_defaults(handler=_cmd_find)

    core = subparsers.add_parser("core", help="compute an [x, y]-core")
    _add_graph_source(core)
    core.add_argument("--x", type=int, default=None, help="required out-degree into T")
    core.add_argument("--y", type=int, default=None, help="required in-degree from S")
    core.add_argument("--show-nodes", action="store_true", help="include the node lists")
    core.set_defaults(handler=_cmd_core)

    topk = subparsers.add_parser("top-k", help="greedy edge-disjoint top-k dense pairs")
    _add_graph_source(topk)
    topk.add_argument("--k", type=int, default=3, help="number of pairs to extract")
    _add_method_options(topk, with_quality=True)
    topk.add_argument(
        "--min-density", type=float, default=0.0, help="stop once the best density drops below this"
    )
    topk.set_defaults(handler=_cmd_topk)

    batch = subparsers.add_parser(
        "batch", help="plan and execute a JSON list of queries on a session pool"
    )
    _add_graph_source(batch)
    batch.add_argument(
        "queries",
        help="path to a JSON file holding a list of query objects, e.g. "
        '[{"query": "densest", "method": "core-exact"}, {"query": "top-k", "k": 2}]; '
        'an entry may address another registered dataset with "dataset": "<name>"',
    )
    batch.add_argument(
        "--no-plan",
        action="store_true",
        help="execute in file order instead of the cache-aware planned order "
        "(answers are identical; planned order maximises cache reuse)",
    )
    batch.add_argument(
        "--explain",
        action="store_true",
        help="include the plan (groups, execution order, predicted vs realised "
        "cache hits, per-query timings) in the output payload",
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="maximum concurrent per-graph sessions (default: one per graph); "
        "with the numpy flow backend ('--flow-solver numpy-push-relabel' or "
        "'auto') the per-graph lanes run genuinely in parallel, because the "
        "vectorised solver releases the GIL inside its bulk array operations",
    )
    batch.add_argument(
        "--flow-solver",
        default=None,
        choices=flow_solver_choices(),
        help="max-flow backend applied to every lane session (default: dinic)",
    )
    batch.add_argument(
        "--store",
        default=None,
        help="persistent session-store directory: sessions warm from it before "
        "the first query and save back afterwards",
    )
    batch.add_argument(
        "--process-pool",
        action="store_true",
        help="run lanes in worker processes over shared-memory graph segments "
        "(the GIL-free scale-out path): graphs are routed to workers by "
        "content fingerprint, crashed workers are retried, and the run "
        "degrades to the thread path when shared memory is unavailable",
    )
    batch.add_argument(
        "--remote",
        default=None,
        metavar="HOSTS",
        help="comma-separated 'host:port' shard daemons (started with "
        "'dds-repro serve'): lanes are routed to daemons by content "
        "fingerprint, unreachable daemons are retried with backoff, and "
        "their lanes fall back to solving inline; mutually exclusive with "
        "--process-pool",
    )
    batch.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="process-pool: re-dispatches of a lane lost to a worker crash "
        "or error before it falls back to running inline (default: 1); "
        "--remote: fresh-connection retries per request before the lane "
        "falls back",
    )
    batch.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-lane wall-clock budget: each query gets the budget still "
        "remaining when it starts and answers past it come back as anytime "
        "partials ({\"deadline_exceeded\": true} with certified density "
        "bounds) instead of blocking the batch",
    )
    batch.set_defaults(handler=_cmd_batch)

    serve = subparsers.add_parser(
        "serve", help="run a shard daemon serving DDS answers over sockets"
    )
    serve.add_argument(
        "--store",
        default=None,
        help="session-store directory this daemon owns (omit for in-memory only)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (default: 0 = ephemeral)"
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=8,
        help="resident-session LRU capacity (default: 8); evicted sessions "
        "are saved to the store first",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="per-request worker threads (default: 4); requests for the same "
        "graph serialise on its session regardless",
    )
    serve.add_argument(
        "--flow-solver",
        default=None,
        choices=flow_solver_choices(),
        help="max-flow backend applied to every resident session (default: dinic)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on SIGINT/SIGTERM (or a 'drain' request): stop accepting new "
        "connections, wait up to SECONDS for in-flight requests, flush "
        "resident sessions to the store, then exit 0 (default: 10)",
    )
    serve.set_defaults(handler=_cmd_serve)

    ping = subparsers.add_parser(
        "ping", help="health-check a shard daemon (exit 0 if reachable)"
    )
    ping.add_argument("address", help="daemon address as 'host:port'")
    ping.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="fresh-connection retries before reporting unreachable (default: 0)",
    )
    ping.set_defaults(handler=_cmd_ping)

    warm = subparsers.add_parser(
        "warm", help="precompute a graph's warm state into a persistent store"
    )
    _add_graph_source(warm)
    warm.add_argument("--store", required=True, help="session-store directory to write")
    warm.add_argument(
        "--method",
        action="append",
        default=None,
        choices=["auto"] + available_methods(),
        help="method(s) whose results to precompute (repeatable; default: auto)",
    )
    warm.add_argument(
        "--max-core",
        action="store_true",
        help="also compute (and persist) the maximum-product [x, y]-core",
    )
    warm.set_defaults(handler=_cmd_warm)

    store = subparsers.add_parser("store", help="inspect, verify, or clear a session store")
    store.add_argument("root", help="session-store directory")
    store.add_argument(
        "--verify", action="store_true", help="integrity-check every entry (exit 1 on problems)"
    )
    store.add_argument("--clear", action="store_true", help="delete every stored graph")
    store.add_argument(
        "--evict-older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help="delete result entries whose content has not changed in DAYS days",
    )
    store.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="evict result entries oldest-first (then whole graphs) until the "
        "store occupies at most N bytes on disk",
    )
    store.set_defaults(handler=_cmd_store)

    datasets = subparsers.add_parser("datasets", help="list registered datasets")
    datasets.set_defaults(handler=_cmd_datasets)

    summary = subparsers.add_parser("summary", help="print graph statistics")
    _add_graph_source(summary)
    summary.set_defaults(handler=_cmd_summary)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (returns a process exit code).

    Library errors — unknown datasets, empty graphs, invalid configurations,
    refused node limits, corrupt stores — are rendered as clean one-line
    messages instead of tracebacks; sub-command handlers may still raise more
    specific :class:`SystemExit` messages of their own (e.g. ``batch``).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ConfigError as error:
        raise SystemExit(f"invalid configuration: {error}")
    except ReproError as error:
        raise SystemExit(f"error: {error}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
