"""Command-line interface: ``dds-repro`` (or ``python -m repro``).

Sub-commands
------------
``find``      run a DDS algorithm on an edge-list file or a named dataset
``core``      compute an [x, y]-core or the maximum-product core
``datasets``  list the registered synthetic datasets
``summary``   print structural statistics of a graph
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.api import available_methods, densest_subgraph
from repro.core.topk import top_k_densest
from repro.flow.registry import available_flow_solvers
from repro.core.xycore import max_xy_core, xy_core
from repro.datasets.registry import dataset_specs, load_dataset
from repro.graph.io import read_edge_list
from repro.graph.properties import graph_summary


def _load_graph(args: argparse.Namespace):
    if args.dataset is not None:
        return load_dataset(args.dataset)
    if args.edge_list is not None:
        return read_edge_list(args.edge_list)
    raise SystemExit("either --dataset or --edge-list is required")


def _add_graph_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="name of a registered synthetic dataset")
    parser.add_argument("--edge-list", help="path to a whitespace-separated edge-list file")


def _method_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {}
    if getattr(args, "flow_solver", None) is not None:
        kwargs["flow_solver"] = args.flow_solver
    return kwargs


def _cmd_find(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = densest_subgraph(graph, method=args.method, **_method_kwargs(args))
    payload = {
        "method": result.method,
        "density": result.density,
        "edge_count": result.edge_count,
        "s_size": result.s_size,
        "t_size": result.t_size,
        "is_exact": result.is_exact,
    }
    if "flow_solver" in result.stats:
        payload["flow_solver"] = result.stats["flow_solver"]
    if args.show_nodes:
        payload["s_nodes"] = [str(node) for node in result.s_nodes]
        payload["t_nodes"] = [str(node) for node in result.t_nodes]
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_core(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    if args.x is not None and args.y is not None:
        core = xy_core(graph, args.x, args.y)
    else:
        core = max_xy_core(graph)
    payload = {
        "x": core.x,
        "y": core.y,
        "s_size": len(core.s_nodes),
        "t_size": len(core.t_nodes),
        "empty": core.is_empty,
    }
    if args.show_nodes:
        payload["s_nodes"] = [str(graph.label_of(i)) for i in core.s_nodes]
        payload["t_nodes"] = [str(graph.label_of(i)) for i in core.t_nodes]
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    results = top_k_densest(
        graph, args.k, method=args.method, min_density=args.min_density, **_method_kwargs(args)
    )
    payload = [
        {
            "rank": rank,
            "density": result.density,
            "edge_count": result.edge_count,
            "s_size": result.s_size,
            "t_size": result.t_size,
        }
        for rank, result in enumerate(results, start=1)
    ]
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    for spec in dataset_specs():
        print(f"{spec.name:18s} [{spec.tier:6s}] {spec.description} (analogue: {spec.paper_analogue})")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    print(json.dumps(graph_summary(graph), indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="dds-repro",
        description="Densest subgraph discovery on directed graphs (SIGMOD 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    find = subparsers.add_parser("find", help="run a DDS algorithm")
    _add_graph_source(find)
    find.add_argument(
        "--method",
        default="auto",
        choices=["auto"] + available_methods(),
        help="algorithm to run (default: auto)",
    )
    find.add_argument("--show-nodes", action="store_true", help="include the node lists")
    find.add_argument(
        "--flow-solver",
        default=None,
        choices=available_flow_solvers(),
        help="max-flow backend for the flow-backed exact methods (default: dinic)",
    )
    find.set_defaults(handler=_cmd_find)

    core = subparsers.add_parser("core", help="compute an [x, y]-core")
    _add_graph_source(core)
    core.add_argument("--x", type=int, default=None, help="required out-degree into T")
    core.add_argument("--y", type=int, default=None, help="required in-degree from S")
    core.add_argument("--show-nodes", action="store_true", help="include the node lists")
    core.set_defaults(handler=_cmd_core)

    topk = subparsers.add_parser("top-k", help="greedy edge-disjoint top-k dense pairs")
    _add_graph_source(topk)
    topk.add_argument("--k", type=int, default=3, help="number of pairs to extract")
    topk.add_argument(
        "--method",
        default="auto",
        choices=["auto"] + available_methods(),
        help="algorithm used for each round (default: auto)",
    )
    topk.add_argument(
        "--min-density", type=float, default=0.0, help="stop once the best density drops below this"
    )
    topk.add_argument(
        "--flow-solver",
        default=None,
        choices=available_flow_solvers(),
        help="max-flow backend for the flow-backed exact methods (default: dinic)",
    )
    topk.set_defaults(handler=_cmd_topk)

    datasets = subparsers.add_parser("datasets", help="list registered datasets")
    datasets.set_defaults(handler=_cmd_datasets)

    summary = subparsers.add_parser("summary", help="print graph statistics")
    _add_graph_source(summary)
    summary.set_defaults(handler=_cmd_summary)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
