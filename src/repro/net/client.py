"""``ShardClient``: the calling side of the frame protocol, with retries.

A client is deliberately connectionless at the request granularity: every
request opens a fresh TCP connection, sends one frame, reads one frame,
and closes.  That makes the retry ladder trivial to reason about — a
retry can never be poisoned by a half-written frame on a reused socket —
and matches the batch executor's lane granularity, where a lane is one
solve request and amortising connection setup would save microseconds
against solves measured in milliseconds.

The retry ladder mirrors the process-pool executor's: a *transport*
failure (connect refused, timeout, reset, damaged frame) is retried on a
fresh connection up to ``max_retries`` times with bounded exponential
backoff plus jitter, after which :class:`~repro.exceptions.NetError` is
raised and the executor falls back to solving the lane inline.  A
*semantic* failure — the daemon answered, but with ``status="error"`` —
is raised immediately as :class:`RemoteOpError` and never retried: the
daemon is healthy and re-asking the same malformed question would get the
same answer.

:class:`ShardClientPool` holds one client per daemon of a shard set and
aggregates their counters; the executor's ``remote_hosts`` mode drives it
with the same fingerprint :class:`~repro.service.planner.ShardMap` the
process pool uses, so each graph's requests always land on the daemon
that owns its store shard.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any

from repro.exceptions import ConfigError, NetError, ProtocolError
from repro.net import protocol

#: Default cap on a single backoff sleep, in seconds.
DEFAULT_BACKOFF_MAX = 2.0

#: Default base of the exponential backoff schedule, in seconds.
DEFAULT_BACKOFF_BASE = 0.05

#: Consecutive exhausted retry ladders that open a host's circuit breaker.
#: One is the right default: an exhausted ladder already represents
#: ``max_retries + 1`` fresh-connection failures in a row.
DEFAULT_BREAKER_THRESHOLD = 1

#: Seconds an open breaker waits before letting one half-open probe through.
DEFAULT_BREAKER_COOLDOWN = 5.0


def parse_host_port(text: str, *, default_port: int | None = None) -> tuple[str, int]:
    """Parse ``"host:port"`` (or bare ``"host"`` with a default) to a pair.

    Raises :class:`~repro.exceptions.ConfigError` on anything else;
    bracketed IPv6 literals are not supported by this tier.
    """
    if not isinstance(text, str) or not text.strip():
        raise ConfigError(f"expected 'host:port', got {text!r}")
    text = text.strip()
    if ":" not in text:
        if default_port is None:
            raise ConfigError(f"expected 'host:port', got {text!r}")
        return text, default_port
    host, _, port_text = text.rpartition(":")
    if not host:
        raise ConfigError(f"expected 'host:port', got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(f"port in {text!r} is not an integer") from None
    if not 0 < port < 65536:
        raise ConfigError(f"port {port} in {text!r} is out of range")
    return host, port


class RemoteOpError(NetError):
    """A daemon answered with ``status="error"``: the op itself failed.

    Carries the remote exception's type name (``remote_type``) and message
    (``remote_message``).  Never retried — the transport is healthy.
    """

    def __init__(self, op: str, address: str, remote_type: str, remote_message: str) -> None:
        super().__init__(
            f"remote {op} on {address} failed with {remote_type}: {remote_message}"
        )
        self.op = op
        self.address = address
        self.remote_type = remote_type
        self.remote_message = remote_message


class CircuitOpenError(NetError):
    """Fast-fail: the host's circuit breaker is open, no connection was tried.

    A :class:`~repro.exceptions.NetError` subclass on purpose — callers with
    an inline-fallback path for transport failures (the batch executor)
    handle it with the code they already have, just without paying the
    connect-timeout-times-retry-ladder tax per lane.
    """

    def __init__(self, address: str, state: str) -> None:
        super().__init__(f"circuit breaker for {address} is {state}; failing fast")
        self.address = address
        self.state = state


class CircuitBreaker:
    """Per-host health gate: closed → open on failures, half-open probe after cooldown.

    The breaker watches whole retry *ladders*, not individual connection
    attempts: :meth:`record_failure` means the client exhausted
    ``max_retries + 1`` fresh connections against the host.  After
    ``failure_threshold`` consecutive exhausted ladders the breaker opens
    and :meth:`admit` fails fast (no socket is touched) until ``cooldown_s``
    has elapsed on the monotonic clock; then exactly one request is admitted
    as the *half-open probe* — its success recloses the breaker, its failure
    re-opens it for another cooldown.  Concurrent requests during the probe
    keep failing fast, so a dead host absorbs at most one ladder per
    cooldown period.

    ``clock`` is injectable (monotonic by contract — wall-clock jumps must
    not re-admit a dead host early or pin a healthy one open).
    """

    #: The three classic states; ``state`` is always one of these.
    STATES = ("closed", "open", "half-open")

    def __init__(
        self,
        *,
        failure_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        cooldown_s: float = DEFAULT_BREAKER_COOLDOWN,
        clock=time.monotonic,
    ) -> None:
        if not isinstance(failure_threshold, int) or failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be an int >= 1, got {failure_threshold!r}"
            )
        if not cooldown_s > 0:
            raise ConfigError(f"cooldown_s must be > 0, got {cooldown_s!r}")
        self._threshold = failure_threshold
        self._cooldown = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self.state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._counters = {
            "breaker_opens": 0,
            "breaker_fast_failures": 0,
            "breaker_half_open_probes": 0,
            "breaker_reclosures": 0,
        }

    def stats(self) -> dict[str, int]:
        """Transition counters (ints only — summable across a pool)."""
        with self._lock:
            return dict(self._counters)

    def admit(self, address: str) -> None:
        """Gate one request; raises :class:`CircuitOpenError` unless admitted.

        In the open state, the first caller after the cooldown becomes the
        half-open probe; everyone else fails fast until the probe reports.
        """
        with self._lock:
            if self.state == "closed":
                return
            if self.state == "open" and (
                self._opened_at is None
                or self._clock() - self._opened_at >= self._cooldown
            ):
                self.state = "half-open"
                self._counters["breaker_half_open_probes"] += 1
                return
            self._counters["breaker_fast_failures"] += 1
            raise CircuitOpenError(address, self.state)

    def record_success(self) -> None:
        """The admitted request reached the daemon: reclose if not closed."""
        with self._lock:
            self._consecutive_failures = 0
            if self.state != "closed":
                self.state = "closed"
                self._opened_at = None
                self._counters["breaker_reclosures"] += 1

    def record_failure(self) -> None:
        """An admitted request exhausted its ladder: open (or re-open)."""
        with self._lock:
            self._consecutive_failures += 1
            if self.state == "half-open" or (
                self.state == "closed" and self._consecutive_failures >= self._threshold
            ):
                self.state = "open"
                self._opened_at = self._clock()
                self._counters["breaker_opens"] += 1


class ShardClient:
    """Talk to one :class:`~repro.net.daemon.ShardDaemon`.

    Parameters
    ----------
    host / port:
        The daemon's address.  ``host`` may be ``"host:port"`` with
        ``port`` omitted.
    connect_timeout / read_timeout:
        Seconds allowed for TCP connect and for reading a response frame.
    max_retries:
        How many *fresh-connection* retries a transport failure earns
        before :class:`~repro.exceptions.NetError` (``max_retries + 1``
        attempts in total) — the same knob the executor's process pool
        exposes.
    backoff_base / backoff_max:
        The bounded exponential schedule: attempt ``n`` sleeps
        ``min(backoff_max, backoff_base * 2**n)`` scaled by jitter in
        ``[0.5, 1.0]``.
    rng:
        Jitter source (a ``random.Random``); injectable for deterministic
        tests.
    breaker:
        The per-host :class:`CircuitBreaker` guarding this client; built
        from ``breaker_threshold`` / ``breaker_cooldown`` when omitted.
        Pass an instance to inject a deterministic clock in tests.
    breaker_threshold / breaker_cooldown:
        Exhausted-ladder count that opens the breaker, and seconds before
        the half-open probe (ignored when ``breaker`` is given).
    """

    def __init__(
        self,
        host: str,
        port: int | None = None,
        *,
        connect_timeout: float = 5.0,
        read_timeout: float = 60.0,
        max_retries: int = 2,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_max: float = DEFAULT_BACKOFF_MAX,
        rng: random.Random | None = None,
        breaker: CircuitBreaker | None = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN,
    ) -> None:
        if port is None:
            host, port = parse_host_port(host)
        if not isinstance(max_retries, int) or max_retries < 0:
            raise ConfigError(f"max_retries must be a non-negative int, got {max_retries!r}")
        self.host = host
        self.port = port
        self._connect_timeout = connect_timeout
        self._read_timeout = read_timeout
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._rng = rng if rng is not None else random.Random()
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(
                failure_threshold=breaker_threshold, cooldown_s=breaker_cooldown
            )
        )
        # Lanes of the remote executor share one client per host, so the
        # counters take a lock; the sockets themselves are per-request.
        self._counters_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "retries": 0,
            "failures": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
        }

    @property
    def address(self) -> str:
        """``host:port`` this client targets."""
        return f"{self.host}:{self.port}"

    def stats(self) -> dict[str, int]:
        """A snapshot of this client's transport and breaker counters."""
        with self._counters_lock:
            stats = dict(self._counters)
        stats.update(self.breaker.stats())
        return stats

    def _bump(self, key: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] += amount

    def backoff_delay(self, attempt: int) -> float:
        """The jittered sleep before retry ``attempt`` (0-based)."""
        ceiling = min(self._backoff_max, self._backoff_base * (2**attempt))
        return ceiling * (0.5 + 0.5 * self._rng.random())

    # ------------------------------------------------------------------
    # the retry ladder
    # ------------------------------------------------------------------
    def request(
        self, op: str, payload: dict[str, Any], *, request_id: str | None = None
    ) -> dict[str, Any]:
        """Send one request, retrying transport failures on fresh connections.

        Returns the response payload of an ``"ok"`` answer.  Raises
        :class:`CircuitOpenError` without touching the network while the
        host's breaker is open, :class:`RemoteOpError` on a semantic
        failure (no retry), and :class:`~repro.exceptions.NetError` once
        the ladder is exhausted.
        """
        self.breaker.admit(self.address)
        try:
            result = self._request_with_retries(op, payload, request_id)
        except RemoteOpError:
            # The daemon answered — the transport is healthy; only the op
            # failed.  That must reclose a half-open breaker, not trip it.
            self.breaker.record_success()
            raise
        except NetError:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return result

    def _request_with_retries(
        self, op: str, payload: dict[str, Any], request_id: str | None
    ) -> dict[str, Any]:
        """The retry ladder itself (breaker accounting lives in ``request``)."""
        last_error: Exception | None = None
        for attempt in range(self._max_retries + 1):
            if attempt:
                self._bump("retries")
                time.sleep(self.backoff_delay(attempt - 1))
            try:
                return self._request_once(op, payload, request_id)
            except RemoteOpError:
                raise
            except (ProtocolError, OSError) as error:
                last_error = error
        self._bump("failures")
        raise NetError(
            f"{op} to {self.address} failed after {self._max_retries + 1} attempts "
            f"on fresh connections: {last_error}"
        )

    def _request_once(
        self, op: str, payload: dict[str, Any], request_id: str | None
    ) -> dict[str, Any]:
        """One attempt: fresh connection, one frame out, one frame back."""
        rid = request_id if request_id is not None else protocol.new_request_id()
        frame = protocol.encode_request(rid, op, payload)
        with socket.create_connection(
            (self.host, self.port), timeout=self._connect_timeout
        ) as sock:
            sock.settimeout(self._read_timeout)
            self._bump("bytes_sent", protocol.write_frame(sock, frame))
            framed = protocol.read_frame(sock)
            if framed is None:
                raise ProtocolError(
                    f"daemon at {self.address} closed the connection without responding"
                )
            message, bytes_received = framed
        self._bump("bytes_received", bytes_received)
        self._bump("requests")
        if message.get("request_id") != rid:
            raise ProtocolError(
                f"daemon at {self.address} answered request "
                f"{message.get('request_id')!r}, expected {rid!r}"
            )
        if message.get("status") != "ok":
            error_payload = message.get("payload", {})
            raise RemoteOpError(
                op,
                self.address,
                str(error_payload.get("error", "ReproError")),
                str(error_payload.get("message", "")),
            )
        return message["payload"]

    # ------------------------------------------------------------------
    # op conveniences
    # ------------------------------------------------------------------
    def ping(self, *, echo: Any = None) -> dict[str, Any]:
        """Health-check the daemon."""
        return self.request("ping", {"echo": echo})

    def solve_lane(
        self,
        graph_key: str,
        fingerprint: str,
        entries: list[tuple[int, dict[str, Any]]],
        *,
        graph: dict[str, Any] | None = None,
        flow: dict[str, Any] | None = None,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """Solve one lane: ``entries`` are ``(plan_index, spec)`` pairs.

        ``graph`` is the wire document from :func:`~repro.net.protocol.
        graph_to_wire`; it may be omitted when the graph is known to be
        resident on the daemon (a miss then errors remotely).  ``flow`` is
        an optional plain-dict ``FlowConfig`` the daemon applies when it
        has to *build* the session — a daemon started with its own
        ``flow`` override, or one that already holds the graph resident,
        keeps its configuration.  ``deadline_ms`` is the lane's remaining
        budget: the daemon enforces it across the lane's entries and
        answers entries it had no budget left for with anytime payloads.
        """
        payload: dict[str, Any] = {
            "graph_key": graph_key,
            "fingerprint": fingerprint,
            "entries": [[index, spec] for index, spec in entries],
            "graph": graph,
            "flow": flow,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        return self.request("solve", payload)

    def warm(
        self,
        graph: dict[str, Any],
        *,
        methods: list[str] | None = None,
        max_core: bool = False,
    ) -> dict[str, Any]:
        """Push a graph and precompute warm state on the daemon."""
        return self.request(
            "warm",
            {"graph": graph, "methods": list(methods or []), "max_core": max_core},
        )

    def inventory(self) -> dict[str, Any]:
        """The daemon's counters and its store shard's inventory."""
        return self.request("inventory", {})

    def shutdown_daemon(self) -> dict[str, Any]:
        """Ask the daemon to stop serving after acknowledging."""
        return self.request("shutdown", {})

    def drain(self, *, grace_s: float | None = None) -> dict[str, Any]:
        """Ask the daemon to drain: finish in-flight work, flush, exit cleanly."""
        payload: dict[str, Any] = {}
        if grace_s is not None:
            payload["grace_s"] = float(grace_s)
        return self.request("drain", payload)


class ShardClientPool:
    """One :class:`ShardClient` per daemon of a shard set.

    The pool is the executor-facing surface: ``client_for(shard)`` maps a
    :meth:`ShardMap.shard_of <repro.service.planner.ShardMap.shard_of>`
    index to its host's client, and :meth:`aggregate_stats` sums the
    transport counters across hosts for ``BatchReport.executor_stats``.
    """

    def __init__(self, hosts: list[str], **client_options: Any) -> None:
        if not hosts:
            raise ConfigError("ShardClientPool requires at least one host")
        self._clients = [ShardClient(host, **client_options) for host in hosts]

    def __len__(self) -> int:
        return len(self._clients)

    @property
    def addresses(self) -> list[str]:
        """``host:port`` per pool slot, in shard order."""
        return [client.address for client in self._clients]

    def client_for(self, shard: int) -> ShardClient:
        """The client owning shard index ``shard``."""
        return self._clients[shard % len(self._clients)]

    def aggregate_stats(self) -> dict[str, int]:
        """Transport and breaker counters summed across every client in the pool."""
        totals: dict[str, int] = {}
        for client in self._clients:
            for key, value in client.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def breaker_states(self) -> dict[str, str]:
        """Current breaker state per host address (not summable, hence separate)."""
        return {client.address: client.breaker.state for client in self._clients}
