"""``ShardClient``: the calling side of the frame protocol, with retries.

A client is deliberately connectionless at the request granularity: every
request opens a fresh TCP connection, sends one frame, reads one frame,
and closes.  That makes the retry ladder trivial to reason about — a
retry can never be poisoned by a half-written frame on a reused socket —
and matches the batch executor's lane granularity, where a lane is one
solve request and amortising connection setup would save microseconds
against solves measured in milliseconds.

The retry ladder mirrors the process-pool executor's: a *transport*
failure (connect refused, timeout, reset, damaged frame) is retried on a
fresh connection up to ``max_retries`` times with bounded exponential
backoff plus jitter, after which :class:`~repro.exceptions.NetError` is
raised and the executor falls back to solving the lane inline.  A
*semantic* failure — the daemon answered, but with ``status="error"`` —
is raised immediately as :class:`RemoteOpError` and never retried: the
daemon is healthy and re-asking the same malformed question would get the
same answer.

:class:`ShardClientPool` holds one client per daemon of a shard set and
aggregates their counters; the executor's ``remote_hosts`` mode drives it
with the same fingerprint :class:`~repro.service.planner.ShardMap` the
process pool uses, so each graph's requests always land on the daemon
that owns its store shard.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from typing import Any

from repro.exceptions import ConfigError, NetError, ProtocolError
from repro.net import protocol

#: Default cap on a single backoff sleep, in seconds.
DEFAULT_BACKOFF_MAX = 2.0

#: Default base of the exponential backoff schedule, in seconds.
DEFAULT_BACKOFF_BASE = 0.05


def parse_host_port(text: str, *, default_port: int | None = None) -> tuple[str, int]:
    """Parse ``"host:port"`` (or bare ``"host"`` with a default) to a pair.

    Raises :class:`~repro.exceptions.ConfigError` on anything else;
    bracketed IPv6 literals are not supported by this tier.
    """
    if not isinstance(text, str) or not text.strip():
        raise ConfigError(f"expected 'host:port', got {text!r}")
    text = text.strip()
    if ":" not in text:
        if default_port is None:
            raise ConfigError(f"expected 'host:port', got {text!r}")
        return text, default_port
    host, _, port_text = text.rpartition(":")
    if not host:
        raise ConfigError(f"expected 'host:port', got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(f"port in {text!r} is not an integer") from None
    if not 0 < port < 65536:
        raise ConfigError(f"port {port} in {text!r} is out of range")
    return host, port


class RemoteOpError(NetError):
    """A daemon answered with ``status="error"``: the op itself failed.

    Carries the remote exception's type name (``remote_type``) and message
    (``remote_message``).  Never retried — the transport is healthy.
    """

    def __init__(self, op: str, address: str, remote_type: str, remote_message: str) -> None:
        super().__init__(
            f"remote {op} on {address} failed with {remote_type}: {remote_message}"
        )
        self.op = op
        self.address = address
        self.remote_type = remote_type
        self.remote_message = remote_message


class ShardClient:
    """Talk to one :class:`~repro.net.daemon.ShardDaemon`.

    Parameters
    ----------
    host / port:
        The daemon's address.  ``host`` may be ``"host:port"`` with
        ``port`` omitted.
    connect_timeout / read_timeout:
        Seconds allowed for TCP connect and for reading a response frame.
    max_retries:
        How many *fresh-connection* retries a transport failure earns
        before :class:`~repro.exceptions.NetError` (``max_retries + 1``
        attempts in total) — the same knob the executor's process pool
        exposes.
    backoff_base / backoff_max:
        The bounded exponential schedule: attempt ``n`` sleeps
        ``min(backoff_max, backoff_base * 2**n)`` scaled by jitter in
        ``[0.5, 1.0]``.
    rng:
        Jitter source (a ``random.Random``); injectable for deterministic
        tests.
    """

    def __init__(
        self,
        host: str,
        port: int | None = None,
        *,
        connect_timeout: float = 5.0,
        read_timeout: float = 60.0,
        max_retries: int = 2,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_max: float = DEFAULT_BACKOFF_MAX,
        rng: random.Random | None = None,
    ) -> None:
        if port is None:
            host, port = parse_host_port(host)
        if not isinstance(max_retries, int) or max_retries < 0:
            raise ConfigError(f"max_retries must be a non-negative int, got {max_retries!r}")
        self.host = host
        self.port = port
        self._connect_timeout = connect_timeout
        self._read_timeout = read_timeout
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        self._rng = rng if rng is not None else random.Random()
        # Lanes of the remote executor share one client per host, so the
        # counters take a lock; the sockets themselves are per-request.
        self._counters_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "retries": 0,
            "failures": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
        }

    @property
    def address(self) -> str:
        """``host:port`` this client targets."""
        return f"{self.host}:{self.port}"

    def stats(self) -> dict[str, int]:
        """A snapshot of this client's transport counters."""
        with self._counters_lock:
            return dict(self._counters)

    def _bump(self, key: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] += amount

    def backoff_delay(self, attempt: int) -> float:
        """The jittered sleep before retry ``attempt`` (0-based)."""
        ceiling = min(self._backoff_max, self._backoff_base * (2**attempt))
        return ceiling * (0.5 + 0.5 * self._rng.random())

    # ------------------------------------------------------------------
    # the retry ladder
    # ------------------------------------------------------------------
    def request(
        self, op: str, payload: dict[str, Any], *, request_id: str | None = None
    ) -> dict[str, Any]:
        """Send one request, retrying transport failures on fresh connections.

        Returns the response payload of an ``"ok"`` answer.  Raises
        :class:`RemoteOpError` on a semantic failure (no retry) and
        :class:`~repro.exceptions.NetError` once the ladder is exhausted.
        """
        last_error: Exception | None = None
        for attempt in range(self._max_retries + 1):
            if attempt:
                self._bump("retries")
                time.sleep(self.backoff_delay(attempt - 1))
            try:
                return self._request_once(op, payload, request_id)
            except RemoteOpError:
                raise
            except (ProtocolError, OSError) as error:
                last_error = error
        self._bump("failures")
        raise NetError(
            f"{op} to {self.address} failed after {self._max_retries + 1} attempts "
            f"on fresh connections: {last_error}"
        )

    def _request_once(
        self, op: str, payload: dict[str, Any], request_id: str | None
    ) -> dict[str, Any]:
        """One attempt: fresh connection, one frame out, one frame back."""
        rid = request_id if request_id is not None else protocol.new_request_id()
        frame = protocol.encode_request(rid, op, payload)
        with socket.create_connection(
            (self.host, self.port), timeout=self._connect_timeout
        ) as sock:
            sock.settimeout(self._read_timeout)
            self._bump("bytes_sent", protocol.write_frame(sock, frame))
            framed = protocol.read_frame(sock)
            if framed is None:
                raise ProtocolError(
                    f"daemon at {self.address} closed the connection without responding"
                )
            message, bytes_received = framed
        self._bump("bytes_received", bytes_received)
        self._bump("requests")
        if message.get("request_id") != rid:
            raise ProtocolError(
                f"daemon at {self.address} answered request "
                f"{message.get('request_id')!r}, expected {rid!r}"
            )
        if message.get("status") != "ok":
            error_payload = message.get("payload", {})
            raise RemoteOpError(
                op,
                self.address,
                str(error_payload.get("error", "ReproError")),
                str(error_payload.get("message", "")),
            )
        return message["payload"]

    # ------------------------------------------------------------------
    # op conveniences
    # ------------------------------------------------------------------
    def ping(self, *, echo: Any = None) -> dict[str, Any]:
        """Health-check the daemon."""
        return self.request("ping", {"echo": echo})

    def solve_lane(
        self,
        graph_key: str,
        fingerprint: str,
        entries: list[tuple[int, dict[str, Any]]],
        *,
        graph: dict[str, Any] | None = None,
        flow: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Solve one lane: ``entries`` are ``(plan_index, spec)`` pairs.

        ``graph`` is the wire document from :func:`~repro.net.protocol.
        graph_to_wire`; it may be omitted when the graph is known to be
        resident on the daemon (a miss then errors remotely).  ``flow`` is
        an optional plain-dict ``FlowConfig`` the daemon applies when it
        has to *build* the session — a daemon started with its own
        ``flow`` override, or one that already holds the graph resident,
        keeps its configuration.
        """
        return self.request(
            "solve",
            {
                "graph_key": graph_key,
                "fingerprint": fingerprint,
                "entries": [[index, spec] for index, spec in entries],
                "graph": graph,
                "flow": flow,
            },
        )

    def warm(
        self,
        graph: dict[str, Any],
        *,
        methods: list[str] | None = None,
        max_core: bool = False,
    ) -> dict[str, Any]:
        """Push a graph and precompute warm state on the daemon."""
        return self.request(
            "warm",
            {"graph": graph, "methods": list(methods or []), "max_core": max_core},
        )

    def inventory(self) -> dict[str, Any]:
        """The daemon's counters and its store shard's inventory."""
        return self.request("inventory", {})

    def shutdown_daemon(self) -> dict[str, Any]:
        """Ask the daemon to stop serving after acknowledging."""
        return self.request("shutdown", {})


class ShardClientPool:
    """One :class:`ShardClient` per daemon of a shard set.

    The pool is the executor-facing surface: ``client_for(shard)`` maps a
    :meth:`ShardMap.shard_of <repro.service.planner.ShardMap.shard_of>`
    index to its host's client, and :meth:`aggregate_stats` sums the
    transport counters across hosts for ``BatchReport.executor_stats``.
    """

    def __init__(self, hosts: list[str], **client_options: Any) -> None:
        if not hosts:
            raise ConfigError("ShardClientPool requires at least one host")
        self._clients = [ShardClient(host, **client_options) for host in hosts]

    def __len__(self) -> int:
        return len(self._clients)

    @property
    def addresses(self) -> list[str]:
        """``host:port`` per pool slot, in shard order."""
        return [client.address for client in self._clients]

    def client_for(self, shard: int) -> ShardClient:
        """The client owning shard index ``shard``."""
        return self._clients[shard % len(self._clients)]

    def aggregate_stats(self) -> dict[str, int]:
        """Transport counters summed across every client in the pool."""
        totals: dict[str, int] = {}
        for client in self._clients:
            for key, value in client.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals
