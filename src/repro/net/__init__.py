"""The network tier: shard daemons serving DDS answers over sockets.

``repro.net`` sits above the service tier (layer "4.5"): it moves the
batch executor's graph-affine lane model across the machine boundary.  A
:class:`~repro.net.daemon.ShardDaemon` owns one session-store shard plus
an LRU of live sessions; a :class:`~repro.net.client.ShardClient` speaks
the length-prefixed, checksummed frame protocol of
:mod:`repro.net.protocol` with a retry/backoff ladder; and
``BatchExecutor(remote_hosts=[...])`` routes lanes to daemons by the same
fingerprint :class:`~repro.service.planner.ShardMap` the process pool
uses.  Warm state — residual flows, decision networks — never crosses the
wire: only graphs, query specs, and schema-2 result dicts do.
"""

from repro.net.client import (
    CircuitBreaker,
    CircuitOpenError,
    RemoteOpError,
    ShardClient,
    ShardClientPool,
    parse_host_port,
)
from repro.net.daemon import DAEMON_FAULT_KINDS, DEFAULT_MAX_SESSIONS, ShardDaemon
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_OPS,
    RESPONSE_STATUSES,
    decode_frame_bytes,
    decode_message,
    encode_request,
    encode_response,
    graph_from_wire,
    graph_to_wire,
    new_request_id,
    payload_checksum,
    read_frame,
    write_frame,
)

__all__ = [
    "DAEMON_FAULT_KINDS",
    "DEFAULT_MAX_SESSIONS",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
    "RESPONSE_STATUSES",
    "CircuitBreaker",
    "CircuitOpenError",
    "RemoteOpError",
    "ShardClient",
    "ShardClientPool",
    "ShardDaemon",
    "decode_frame_bytes",
    "decode_message",
    "encode_request",
    "encode_response",
    "graph_from_wire",
    "graph_to_wire",
    "new_request_id",
    "parse_host_port",
    "payload_checksum",
    "read_frame",
    "write_frame",
]
