"""``ShardDaemon``: one store shard served over sockets, sessions kept live.

A daemon is the network tier's unit of ownership: it holds one
:class:`~repro.service.store.SessionStore` shard plus an LRU of live
:class:`~repro.session.DDSSession` objects keyed by graph
:meth:`content_fingerprint
<repro.graph.digraph.DiGraph.content_fingerprint>`, and answers the
protocol ops of :mod:`repro.net.protocol` over TCP.  The remote executor
routes every graph to exactly one daemon (the fingerprint
:class:`~repro.service.planner.ShardMap`), so a daemon's store shard has a
single network writer and its resident sessions accumulate warm state —
decision networks, residual flows, push-relabel heights — across requests
the way a lane session does across queries.  That state never crosses the
wire: requests carry graphs and query specs in, schema-2 result dicts come
back out, and everything expensive stays resident behind the socket.

Concurrency model
-----------------
One *selector loop* thread owns every socket: it accepts connections and
watches them for readability.  A readable connection is unregistered and
handed to a small worker-thread pool, which reads exactly one frame,
serves it, writes the response, and hands the socket back to the loop (via
a self-pipe wakeup) for the next request.  Two requests for the *same*
graph serialise on the session's lock — sessions are single-threaded by
contract — while requests for distinct graphs run concurrently, which is
the same graph-affinity rule the batch executor's lanes follow.

Instrumentation: :meth:`ShardDaemon.daemon_stats` exposes per-op request
counts, session-LRU hits/misses, sessions resident/evicted, bytes in/out,
connection counts, and errors; the ``ping`` and ``inventory`` ops serve the
same numbers remotely.

The ``fault_injection`` hook makes partition handling deterministically
testable: ``{"op": "solve", "kind": "close" | "exit", "times": N}`` drops
the connection without a response on the first ``N`` matching requests
(``"close"``), or additionally kills the whole daemon (``"exit"`` — the
loopback stand-in for SIGKILL / a severed machine), which is what the
client retry ladder and the executor's inline fallback are tested against.
"""

from __future__ import annotations

import collections
import selectors
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.core.config import FlowConfig
from repro.exceptions import ConfigError, NetError, ProtocolError, ReproError
from repro.net import protocol
from repro.runtime import Deadline
from repro.service.queries import run_batch_query
from repro.service.store import SessionStore
from repro.session import DDSSession
from repro.session.session import DEFAULT_RESULT_CACHE_SIZE
from repro.utils.timer import time_call

#: Fault kinds the daemon's chaos hook understands.
DAEMON_FAULT_KINDS = ("close", "exit")

#: Default capacity of the resident-session LRU.
DEFAULT_MAX_SESSIONS = 8

#: Default seconds a drain waits for in-flight requests before stopping anyway.
DEFAULT_DRAIN_GRACE = 10.0

#: Seconds granted to each daemon-owned thread at shutdown before it is
#: declared unjoined (a hygiene failure surfaced in ``daemon_stats()``).
THREAD_JOIN_TIMEOUT = 10.0


@dataclass
class _SessionEntry:
    """One resident session: the session, its serving lock, pending counters."""

    session: DDSSession
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Store-warm counters from session creation, reported (once) by the
    #: first solve that serves this session.
    pending_warm: dict[str, int] = field(default_factory=dict)


class ShardDaemon:
    """Serve one store shard's DDS answers over the frame protocol.

    Parameters
    ----------
    store:
        The shard this daemon owns: a :class:`~repro.service.store.
        SessionStore`, a path to open one at, or ``None`` for a storeless
        daemon (sessions still cache in memory; nothing persists).
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port; read the real
        one from :attr:`port` after :meth:`start`.
    max_sessions:
        Capacity of the resident-session LRU.  Evicted sessions are saved
        to the store (when one is attached) before being dropped.
    max_workers:
        Width of the per-request worker-thread pool.
    flow:
        Session-wide :class:`~repro.core.config.FlowConfig` (or solver
        name) applied to every resident session.
    result_cache_size:
        Result-cache capacity of each resident session.
    read_timeout:
        Per-connection receive timeout (seconds) of the worker threads.
    fault_injection:
        Chaos/test hook — see the module docstring.
    """

    def __init__(
        self,
        store: SessionStore | str | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        max_workers: int = 4,
        flow: FlowConfig | str | None = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        read_timeout: float = 60.0,
        fault_injection: dict[str, Any] | None = None,
    ) -> None:
        if isinstance(store, (str,)) or hasattr(store, "__fspath__"):
            store = SessionStore(store)
        if not isinstance(max_sessions, int) or max_sessions < 1:
            raise ConfigError(f"max_sessions must be a positive int, got {max_sessions!r}")
        if not isinstance(max_workers, int) or max_workers < 1:
            raise ConfigError(f"max_workers must be a positive int, got {max_workers!r}")
        if fault_injection is not None:
            fault_injection = dict(fault_injection)
            if fault_injection.get("kind") not in DAEMON_FAULT_KINDS:
                raise ConfigError(
                    f"fault_injection kind must be one of {DAEMON_FAULT_KINDS}, "
                    f"got {fault_injection.get('kind')!r}"
                )
        self._store = store
        self._host = host
        self._requested_port = port
        self._max_sessions = max_sessions
        self._max_workers = max_workers
        self._flow = flow
        self._result_cache_size = result_cache_size
        self._read_timeout = read_timeout
        self._fault = fault_injection
        self._fault_budget = int(fault_injection.get("times", 1)) if fault_injection else 0

        self._sessions: collections.OrderedDict[str, _SessionEntry] = collections.OrderedDict()
        self._sessions_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._counters: dict[str, Any] = {
            "requests": {},
            "errors": 0,
            "session_cache_hits": 0,
            "session_cache_misses": 0,
            "sessions_evicted": 0,
            "sessions_flushed": 0,
            "bytes_in": 0,
            "bytes_out": 0,
            "connections_accepted": 0,
            "deadline_hits": 0,
            "deadline_rejections": 0,
            "unjoined_threads": 0,
        }
        self._in_flight = 0

        self._stop = threading.Event()
        self._draining = threading.Event()
        self._thread: threading.Thread | None = None
        self._listen: socket.socket | None = None
        self._bound_port: int | None = None
        self._selector: selectors.BaseSelector | None = None
        self._conns: set[socket.socket] = set()
        self._reregister: collections.deque[socket.socket] = collections.deque()
        self._waker_recv: socket.socket | None = None
        self._waker_send: socket.socket | None = None
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bind host."""
        return self._host

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._bound_port is None:
            raise NetError("daemon is not started; no port is bound yet")
        return self._bound_port

    @property
    def address(self) -> str:
        """``host:port`` of the bound socket."""
        return f"{self.host}:{self.port}"

    def start(self) -> tuple[str, int]:
        """Bind, spawn the selector loop in a background thread, return the address."""
        if self._thread is not None:
            raise NetError("daemon is already started")
        self._listen = socket.create_server(
            (self._host, self._requested_port), reuse_port=False
        )
        self._listen.setblocking(False)
        self._bound_port = self._listen.getsockname()[1]
        self._waker_recv, self._waker_send = socket.socketpair()
        self._waker_recv.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listen, selectors.EVENT_READ)
        self._selector.register(self._waker_recv, selectors.EVENT_READ)
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="dds-shard-worker"
        )
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._serve_loop, name=f"dds-shard-daemon-{self._bound_port}", daemon=True
        )
        self._thread.start()
        return self._host, self._bound_port

    def serve_forever(self) -> None:
        """Blocking serve: :meth:`start` (if needed) then wait for shutdown."""
        if self._thread is None:
            self.start()
        self.join()

    def join(self, timeout: float | None = None) -> None:
        """Wait until the selector loop exits (after :meth:`shutdown`)."""
        if self._thread is not None:
            self._thread.join(timeout)

    def shutdown(self) -> None:
        """Stop serving and release every socket; idempotent and thread-safe.

        Threads that fail to join within :data:`THREAD_JOIN_TIMEOUT` are
        counted as ``unjoined_threads`` in :meth:`daemon_stats` — the E6
        hygiene gate's signal that a daemon is leaking threads at shutdown.
        """
        self._request_stop()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=THREAD_JOIN_TIMEOUT)
            if thread.is_alive():
                self._count("unjoined_threads")

    def drain(self, grace_s: float = DEFAULT_DRAIN_GRACE) -> None:
        """Begin a graceful drain; returns immediately (``join`` observes the exit).

        The drain contract: stop accepting new connections, let in-flight
        requests finish (up to ``grace_s`` seconds), flush the resident
        sessions to the store, release every socket, and let
        :meth:`serve_forever` return — the CLI then exits 0.  Idempotent;
        also the target of the ``serve`` sub-command's SIGINT/SIGTERM
        handlers and of the remote ``drain`` op.
        """
        if isinstance(grace_s, bool) or not isinstance(grace_s, (int, float)) or not grace_s > 0:
            raise ConfigError(f"drain grace must be a positive number of seconds, got {grace_s!r}")
        if self._draining.is_set():
            return
        self._draining.set()
        self._wake()
        threading.Thread(
            target=self._await_drain, args=(float(grace_s),), name="dds-shard-drain", daemon=True
        ).start()

    def _await_drain(self, grace_s: float) -> None:
        """Wait (monotonic clock) for in-flight work, then stop the loop."""
        give_up_at = time.monotonic() + grace_s
        while time.monotonic() < give_up_at:
            with self._stats_lock:
                busy = self._in_flight
            if busy <= 0:
                break
            time.sleep(0.02)
        self._request_stop()

    def __enter__(self) -> "ShardDaemon":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def _request_stop(self) -> None:
        """Set the stop flag and poke the selector loop awake."""
        self._stop.set()
        self._wake()

    def _wake(self) -> None:
        """Nudge the selector loop (self-pipe write); safe from any thread."""
        waker = self._waker_send
        if waker is not None:
            try:
                waker.send(b"x")
            except OSError:  # pragma: no cover - loop already tearing down
                pass

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def daemon_stats(self) -> dict[str, Any]:
        """A snapshot of the daemon's serving counters.

        Keys: ``requests`` (per-op counts), ``errors`` (error responses
        sent), ``session_cache_hits`` / ``session_cache_misses`` (resident-
        session LRU), ``sessions_resident`` / ``sessions_evicted`` /
        ``sessions_flushed`` (teardown saves to the store), ``bytes_in`` /
        ``bytes_out`` (frame bytes over all connections),
        ``connections_accepted``, ``open_connections``, ``in_flight``,
        ``draining``, ``deadline_hits`` (entries answered with anytime
        payloads), ``deadline_rejections`` (entries the lane budget left no
        time for), and ``unjoined_threads`` (shutdown hygiene — threads
        alive after their :data:`THREAD_JOIN_TIMEOUT` join).
        """
        with self._stats_lock:
            snapshot = {
                key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self._counters.items()
            }
            snapshot["open_connections"] = len(self._conns)
            snapshot["in_flight"] = self._in_flight
        snapshot["draining"] = self._draining.is_set()
        with self._sessions_lock:
            snapshot["sessions_resident"] = len(self._sessions)
        return snapshot

    def open_connections(self) -> int:
        """How many client connections are currently open (hygiene probe)."""
        with self._stats_lock:
            return len(self._conns)

    def _count(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[key] += amount

    def _count_request(self, op: str) -> None:
        with self._stats_lock:
            requests = self._counters["requests"]
            requests[op] = requests.get(op, 0) + 1

    # ------------------------------------------------------------------
    # the selector loop
    # ------------------------------------------------------------------
    def _serve_loop(self) -> None:
        """Accept connections and dispatch readable ones to worker threads."""
        assert self._selector is not None and self._listen is not None
        try:
            while not self._stop.is_set():
                if self._draining.is_set():
                    self._close_listener()
                events = self._selector.select(timeout=0.2)
                for key, _ in events:
                    sock = key.fileobj
                    if sock is self._listen:
                        self._accept()
                    elif sock is self._waker_recv:
                        self._drain_waker()
                    else:
                        # One request at a time per connection: the socket
                        # leaves the selector while a worker owns it.
                        try:
                            self._selector.unregister(sock)
                        except (KeyError, ValueError):  # pragma: no cover
                            continue
                        assert self._pool is not None
                        self._pool.submit(self._serve_one, sock)
        finally:
            self._teardown()

    def _close_listener(self) -> None:
        """Stop accepting new connections (drain): close the listening socket.

        Runs on the selector thread only, so it cannot race :meth:`_accept`;
        established connections stay registered and keep being served.
        """
        listen = self._listen
        if listen is None:
            return
        self._listen = None
        assert self._selector is not None
        try:
            self._selector.unregister(listen)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        listen.close()

    def _accept(self) -> None:
        """Accept one pending connection and register it for reads."""
        assert self._listen is not None and self._selector is not None
        try:
            conn, _ = self._listen.accept()
        except OSError:  # pragma: no cover - raced with shutdown
            return
        conn.settimeout(self._read_timeout)
        with self._stats_lock:
            self._conns.add(conn)
            self._counters["connections_accepted"] += 1
        self._selector.register(conn, selectors.EVENT_READ)

    def _drain_waker(self) -> None:
        """Consume wakeup bytes and re-register sockets workers handed back."""
        assert self._waker_recv is not None and self._selector is not None
        try:
            while self._waker_recv.recv(4096):
                pass
        except BlockingIOError:
            pass
        while self._reregister:
            sock = self._reregister.popleft()
            if self._stop.is_set():
                self._close_conn(sock)
                continue
            try:
                self._selector.register(sock, selectors.EVENT_READ)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                self._close_conn(sock)

    def _teardown(self) -> None:
        """Stop the pool, flush resident sessions, close every socket (loop thread only)."""
        assert self._selector is not None
        if self._pool is not None:
            # Bounded join with per-thread accounting instead of a blocking
            # shutdown(wait=True): a worker stuck past the timeout (e.g. on a
            # dead peer's read) is *counted*, not waited on forever.
            self._pool.shutdown(wait=False)
            for worker in list(self._pool._threads):
                worker.join(timeout=THREAD_JOIN_TIMEOUT)
                if worker.is_alive():
                    self._count("unjoined_threads")
        self._flush_sessions()
        self._selector.close()
        if self._listen is not None:
            self._listen.close()
        with self._stats_lock:
            conns = list(self._conns)
        for conn in conns:
            self._close_conn(conn)
        for waker in (self._waker_recv, self._waker_send):
            if waker is not None:
                waker.close()

    def _flush_sessions(self) -> None:
        """Save every resident session's warm state to the store (best effort).

        The second half of the drain contract: residency is only a cache, so
        nothing a resident session learned may die with the daemon when a
        store is attached.  Runs after the worker pool has stopped, so no
        request can be mutating a session mid-save.
        """
        if self._store is None:
            return
        with self._sessions_lock:
            entries = list(self._sessions.values())
        for entry in entries:
            with entry.lock:
                try:
                    self._store.save_session(entry.session)
                except ReproError:  # pragma: no cover - keep tearing down
                    continue
            self._count("sessions_flushed")

    def _close_conn(self, sock: socket.socket) -> None:
        """Close one client connection and forget it."""
        with self._stats_lock:
            self._conns.discard(sock)
        try:
            sock.close()
        except OSError:  # pragma: no cover - already gone
            pass

    # ------------------------------------------------------------------
    # per-request serving (worker threads)
    # ------------------------------------------------------------------
    def _take_fault(self, op: str) -> str | None:
        """Consume one unit of the chaos budget for ``op``; returns the kind."""
        if self._fault is None:
            return None
        with self._stats_lock:
            if self._fault_budget <= 0:
                return None
            if self._fault.get("op", "solve") != op:
                return None
            self._fault_budget -= 1
            return str(self._fault["kind"])

    def _serve_one(self, sock: socket.socket) -> None:
        """Read one frame from ``sock``, serve it, write back, hand back."""
        try:
            framed = protocol.read_frame(sock)
        except (ProtocolError, OSError):
            # A damaged or half-closed connection: drop it.  The client's
            # retry ladder opens a fresh one.
            self._close_conn(sock)
            return
        if framed is None:  # clean EOF between frames
            self._close_conn(sock)
            return
        message, bytes_in = framed
        self._count("bytes_in", bytes_in)
        op = message.get("op")
        request_id = message["request_id"]
        if op is None:
            # A response frame sent at a daemon: protocol misuse; drop it.
            self._close_conn(sock)
            return
        self._count_request(op)
        with self._stats_lock:
            self._in_flight += 1
        try:
            self._serve_request(sock, op, request_id, message)
        finally:
            with self._stats_lock:
                self._in_flight -= 1

    def _serve_request(
        self, sock: socket.socket, op: str, request_id: str, message: dict[str, Any]
    ) -> None:
        """Dispatch, respond, and hand the socket back (in-flight already counted)."""
        fault = self._take_fault(op)
        if fault is not None:
            # Simulated partition: vanish without a response.  ``exit``
            # additionally takes the whole daemon down — the loopback
            # equivalent of SIGKILL on a remote box.
            self._close_conn(sock)
            if fault == "exit":
                self._request_stop()
            return
        try:
            payload = self._dispatch(op, message["payload"])
            frame = protocol.encode_response(request_id, payload)
        except ReproError as error:
            self._count("errors")
            frame = protocol.encode_response(
                request_id,
                {"error": type(error).__name__, "message": str(error)},
                status="error",
            )
        except Exception as error:  # noqa: BLE001 - a bug must not kill serving
            self._count("errors")
            frame = protocol.encode_response(
                request_id,
                {"error": type(error).__name__, "message": str(error)},
                status="error",
            )
        # Count before sending: a client can read the reply and snapshot
        # daemon_stats() before this thread is scheduled again, and the
        # counter must already reflect the frame it just received.
        self._count("bytes_out", len(frame))
        try:
            protocol.write_frame(sock, frame)
        except OSError:
            self._close_conn(sock)
            return
        if op == "shutdown":
            self._close_conn(sock)
            self._request_stop()
            return
        self._reregister.append(sock)
        self._wake()

    def _dispatch(self, op: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Route one request payload to its op handler."""
        if op == "ping":
            return self._op_ping(payload)
        if op == "solve":
            return self._op_solve(payload)
        if op == "warm":
            return self._op_warm(payload)
        if op == "inventory":
            return self._op_inventory(payload)
        if op == "drain":
            return self._op_drain(payload)
        if op == "shutdown":
            return {"stopping": True}
        raise NetError(f"unhandled op {op!r}")  # pragma: no cover - decode rejects these

    # ------------------------------------------------------------------
    # resident sessions
    # ------------------------------------------------------------------
    def _session_for(
        self,
        fingerprint: str,
        wire_graph: dict[str, Any] | None,
        flow_doc: dict[str, Any] | None = None,
    ) -> tuple[_SessionEntry, bool]:
        """The resident session of ``fingerprint``, built from the wire if absent.

        Returns ``(entry, cache_hit)``.  A miss with no graph document in
        the request raises :class:`~repro.exceptions.NetError` — the client
        must resend with the graph inline.  Evicted LRU sessions are saved
        to the store first, so residency is a cache, never the only copy.

        ``flow_doc`` is the requester's plain-dict ``FlowConfig``; it is
        applied only when this call *builds* the session and the daemon was
        not started with its own ``flow`` override — a daemon's explicit
        serve-time configuration always wins, and a resident session keeps
        whatever configuration built it.
        """
        evicted: _SessionEntry | None = None
        with self._sessions_lock:
            entry = self._sessions.get(fingerprint)
            if entry is not None:
                self._sessions.move_to_end(fingerprint)
                self._count("session_cache_hits")
                return entry, True
            self._count("session_cache_misses")
            if wire_graph is None:
                raise NetError(
                    f"graph {fingerprint[:12]}... is not resident on this daemon and "
                    "the request carried no graph document"
                )
            graph = protocol.graph_from_wire(wire_graph)
            if graph.content_fingerprint() != fingerprint:
                raise NetError(
                    "solve request fingerprint does not match the graph document it carries"
                )
            flow = self._flow
            if flow is None and flow_doc is not None:
                if not isinstance(flow_doc, dict):
                    raise NetError("'flow' must be an object of FlowConfig fields")
                flow = FlowConfig.resolve(None, **flow_doc)
            session = DDSSession(
                graph, flow=flow, result_cache_size=self._result_cache_size
            )
            entry = _SessionEntry(session=session)
            if self._store is not None:
                entry.pending_warm = dict(self._store.warm_session(session))
            self._sessions[fingerprint] = entry
            if len(self._sessions) > self._max_sessions:
                _, evicted = self._sessions.popitem(last=False)
                self._count("sessions_evicted")
        if evicted is not None and self._store is not None:
            # Save outside the dict lock: an in-flight request may still
            # hold the evicted entry's lock for a long solve.
            with evicted.lock:
                self._store.save_session(evicted.session)
        return entry, False

    # ------------------------------------------------------------------
    # op handlers
    # ------------------------------------------------------------------
    def _op_ping(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Health check: protocol version, residency, and echo."""
        with self._sessions_lock:
            resident = len(self._sessions)
        return {
            "pong": True,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "sessions_resident": resident,
            "echo": payload.get("echo"),
        }

    def _op_solve(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Serve one lane: a list of batch entries against one graph.

        Payload: ``{"graph_key", "fingerprint", "entries": [[index, spec],
        ...], "graph": <wire document> | null, "flow": <FlowConfig fields>
        | null}``.  The response mirrors the
        process-pool worker's lane message — per-entry executions with
        schema-2 result payloads, the session's cache-stats snapshot, and
        store counters — so the executor assembles remote and local lanes
        identically.
        """
        fingerprint = payload.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise NetError("solve payload requires a 'fingerprint' string")
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise NetError("solve payload requires an 'entries' list")
        lane_deadline_ms = payload.get("deadline_ms")
        if lane_deadline_ms is not None:
            if (
                isinstance(lane_deadline_ms, bool)
                or not isinstance(lane_deadline_ms, (int, float))
                or not lane_deadline_ms > 0
            ):
                raise NetError(
                    f"solve 'deadline_ms' must be a positive number, got {lane_deadline_ms!r}"
                )
        # The lane budget starts at acceptance: session residency lookup,
        # graph decode, and queueing behind another request for the same
        # graph all spend it, exactly like local executor lanes.
        lane_deadline = (
            Deadline(float(lane_deadline_ms)) if lane_deadline_ms is not None else None
        )
        entry, cache_hit = self._session_for(
            fingerprint, payload.get("graph"), payload.get("flow")
        )
        with entry.lock:
            store_counters = entry.pending_warm
            entry.pending_warm = {}
            executions: list[dict[str, Any]] = []
            for item in entries:
                if not (isinstance(item, (list, tuple)) and len(item) == 2):
                    raise NetError(f"solve entry must be an [index, spec] pair, got {item!r}")
                index, spec = item
                if not isinstance(spec, dict):
                    raise NetError(f"solve entry {index!r} spec must be an object")
                remaining_ms = (
                    lane_deadline.remaining_ms() if lane_deadline is not None else None
                )
                if remaining_ms is not None and remaining_ms <= 0:
                    # No budget left for this entry: answer it as a deadline
                    # hit without doing (or corrupting) any work.
                    self._count("deadline_rejections")
                    executions.append(
                        {
                            "index": int(index),
                            "kind": spec.get("query", "densest"),
                            "seconds": 0.0,
                            "payload": {"deadline_exceeded": True, "is_exact": False},
                        }
                    )
                    continue
                result_payload, seconds = time_call(
                    lambda: run_batch_query(entry.session, spec, deadline_ms=remaining_ms)
                )
                if isinstance(result_payload, dict) and result_payload.get(
                    "deadline_exceeded"
                ):
                    self._count("deadline_hits")
                executions.append(
                    {
                        "index": int(index),
                        "kind": spec.get("query", "densest"),
                        "seconds": seconds,
                        "payload": result_payload,
                    }
                )
            if self._store is not None:
                for key, value in self._store.save_session(entry.session).items():
                    store_counters[key] = store_counters.get(key, 0) + value
            stats_snapshot = entry.session.cache_stats()
        return {
            "executions": executions,
            "stats": stats_snapshot,
            "store": store_counters,
            "session_cache_hit": cache_hit,
        }

    def _op_warm(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Precompute warm state for a pushed graph (the remote ``warm``).

        Payload: ``{"graph": <wire document>, "methods": [...], "max_core":
        bool}``.  Results land in the resident session and — when a store
        is attached — on disk, exactly like ``dds-repro warm`` run on the
        daemon's box.
        """
        wire_graph = payload.get("graph")
        if not isinstance(wire_graph, dict):
            raise NetError("warm payload requires a 'graph' document")
        fingerprint = wire_graph.get("fingerprint")
        if not isinstance(fingerprint, str):
            raise ProtocolError("wire graph is missing its fingerprint")
        methods = payload.get("methods") or ["auto"]
        entry, cache_hit = self._session_for(fingerprint, wire_graph)
        with entry.lock:
            computed: dict[str, Any] = {}
            for method in methods:
                result = entry.session.densest_subgraph(str(method))
                computed[str(method)] = {"method": result.method, "density": result.density}
            if payload.get("max_core"):
                core = entry.session.max_xy_core()
                computed["max-core"] = {"x": core.x, "y": core.y}
            saved = (
                self._store.save_session(entry.session) if self._store is not None else {}
            )
        return {
            "fingerprint": fingerprint,
            "computed": computed,
            "saved": saved,
            "session_cache_hit": cache_hit,
        }

    def _op_inventory(self, payload: dict[str, Any]) -> dict[str, Any]:
        """The daemon's counters plus its store shard's inventory rows."""
        return {
            "daemon": self.daemon_stats(),
            "store_root": str(self._store.root) if self._store is not None else None,
            "store": self._store.inventory() if self._store is not None else None,
        }

    def _op_drain(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Acknowledge, then drain: the response leaves before serving stops.

        Payload: ``{"grace_s": <seconds> | absent}``.  The reported
        ``in_flight`` excludes this drain request itself.
        """
        grace = payload.get("grace_s", DEFAULT_DRAIN_GRACE)
        if isinstance(grace, bool) or not isinstance(grace, (int, float)) or not grace > 0:
            raise NetError(f"drain 'grace_s' must be a positive number, got {grace!r}")
        with self._stats_lock:
            in_flight = self._in_flight
        self.drain(float(grace))
        return {"draining": True, "grace_s": float(grace), "in_flight": max(in_flight - 1, 0)}
