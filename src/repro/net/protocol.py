"""The wire protocol of the network tier: length-prefixed JSON frames.

Every message between a :class:`~repro.net.client.ShardClient` and a
:class:`~repro.net.daemon.ShardDaemon` is one *frame*::

    [ 4 bytes ]  payload length, unsigned big-endian (network byte order)
    [ N bytes ]  UTF-8 JSON message body

and every message body is a checksummed envelope::

    {"protocol_version": 1,
     "request_id":       "<caller-chosen echo token>",
     "op":               "solve" | "warm" | "inventory" | "ping" | "shutdown",
     "checksum":         sha256(canonical-json(payload)),
     "payload":          {...}}

Responses replace ``"op"`` with ``"status": "ok" | "error"`` and echo the
request id, so a client can verify it is reading the answer to the question
it asked.  The checksum reuses the :mod:`repro.service.store` convention —
SHA-256 over the canonical (sorted-keys, compact-separator) JSON text of the
payload — so a store entry and a wire payload are verified by the same
arithmetic.

Decoding is **strict**: a truncated frame, an oversized length prefix, a
body that is not a JSON object, a missing envelope field, a version
mismatch, or a checksum failure each raise
:class:`~repro.exceptions.ProtocolError` naming the defect.  A damaged
frame is never partially interpreted — the retry ladder in
:mod:`repro.net.client` treats it exactly like a dropped connection.

Graphs cross the wire through :func:`graph_to_wire` /
:func:`graph_from_wire`: node labels in insertion order, the edge list, the
self-loop policy, and the graph's :meth:`content_fingerprint
<repro.graph.digraph.DiGraph.content_fingerprint>`.  The receiver rebuilds
the graph and re-fingerprints it — the same bit-identity guarantee the
shared-memory attach path gives in-machine (:mod:`repro.service.shm`).
Labels that would not survive a JSON round trip refuse to serialise
(:class:`~repro.exceptions.NetError`); the remote executor runs such lanes
inline instead of shipping a lossy approximation.

What deliberately never crosses the wire: decision networks, residual
flows, and push-relabel height stashes.  They are process-local by
construction (their cache keys embed ``state_token``, and ``retune``
mutates capacities in place); warm state lives behind the daemon in its
:class:`~repro.service.store.SessionStore` shard, which is the whole point
of routing each graph to exactly one daemon.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
import uuid
from typing import Any

from repro.core.results import json_native_label
from repro.exceptions import GraphError, NetError, ProtocolError
from repro.graph.digraph import DiGraph

#: Version of the frame envelope.  Bump on any incompatible change; a frame
#: speaking a different version is refused outright.
PROTOCOL_VERSION = 1

#: Request operations a :class:`~repro.net.daemon.ShardDaemon` understands.
#: ``drain`` (graceful stop-accepting/finish-in-flight/flush/exit) is additive
#: — an op name, not a message-shape change — so the version stays at 1.
REQUEST_OPS = ("solve", "warm", "inventory", "ping", "shutdown", "drain")

#: Response statuses: ``"ok"`` carries a result payload, ``"error"`` carries
#: ``{"error": <exception type name>, "message": <text>}``.
RESPONSE_STATUSES = ("ok", "error")

#: Frame length prefix: 4-byte unsigned big-endian (network byte order).
_HEADER = struct.Struct("!I")

#: Hard cap on a single frame body.  A length prefix above this is treated
#: as corruption, not as a request to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text — the byte-stable form the checksum hashes.

    Identical to the session store's canonical form, so both layers verify
    payloads with the same arithmetic.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON text of ``payload``.

    Raises :class:`~repro.exceptions.ProtocolError` when the payload is not
    JSON-serialisable — the encode paths surface that as a protocol defect,
    never as a bare ``TypeError`` mid-frame.
    """
    try:
        text = canonical_json(payload)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"payload is not JSON-serialisable: {error}")
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def new_request_id() -> str:
    """A fresh unique request id (UUID4 hex)."""
    return uuid.uuid4().hex


def _encode_message(message: dict[str, Any]) -> bytes:
    """Serialise an already-enveloped message into one framed byte string."""
    try:
        body = canonical_json(message).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"message is not JSON-serialisable: {error}")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(body)) + body


def encode_request(request_id: str, op: str, payload: dict[str, Any]) -> bytes:
    """Frame one request message (length prefix included).

    ``op`` must be one of :data:`REQUEST_OPS`; the payload must be a JSON
    object.  Raises :class:`~repro.exceptions.ProtocolError` on either
    violation — a malformed request must fail on the client, not on the
    daemon.
    """
    if op not in REQUEST_OPS:
        raise ProtocolError(f"unknown request op {op!r}; expected one of {REQUEST_OPS}")
    if not isinstance(payload, dict):
        raise ProtocolError(f"request payload must be an object, got {type(payload).__name__}")
    return _encode_message(
        {
            "protocol_version": PROTOCOL_VERSION,
            "request_id": str(request_id),
            "op": op,
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
    )


def encode_response(
    request_id: str, payload: dict[str, Any], *, status: str = "ok"
) -> bytes:
    """Frame one response message echoing ``request_id``."""
    if status not in RESPONSE_STATUSES:
        raise ProtocolError(
            f"unknown response status {status!r}; expected one of {RESPONSE_STATUSES}"
        )
    if not isinstance(payload, dict):
        raise ProtocolError(f"response payload must be an object, got {type(payload).__name__}")
    return _encode_message(
        {
            "protocol_version": PROTOCOL_VERSION,
            "request_id": str(request_id),
            "status": status,
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
    )


def decode_message(body: bytes) -> dict[str, Any]:
    """Strictly decode one frame *body* (no length prefix) into its message.

    Verifies the envelope shape, the protocol version, the op/status
    vocabulary, and the payload checksum.  Raises
    :class:`~repro.exceptions.ProtocolError` naming the first defect found.
    """
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}")
    if not isinstance(message, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(message).__name__}")
    version = message.get("protocol_version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"frame speaks protocol version {version!r}; this build speaks {PROTOCOL_VERSION}"
        )
    if not isinstance(message.get("request_id"), str):
        raise ProtocolError("frame is missing its request_id")
    is_request = "op" in message
    is_response = "status" in message
    if is_request == is_response:
        raise ProtocolError("frame must carry exactly one of 'op' (request) or 'status' (response)")
    if is_request and message["op"] not in REQUEST_OPS:
        raise ProtocolError(f"frame carries unknown op {message['op']!r}")
    if is_response and message["status"] not in RESPONSE_STATUSES:
        raise ProtocolError(f"frame carries unknown status {message['status']!r}")
    if "payload" not in message or not isinstance(message["payload"], dict):
        raise ProtocolError("frame is missing its payload object")
    if message.get("checksum") != payload_checksum(message["payload"]):
        raise ProtocolError("frame payload fails its integrity checksum")
    return message


def decode_frame_bytes(frame: bytes) -> dict[str, Any]:
    """Decode one complete framed byte string (prefix + body), strictly.

    Exactly one whole frame must be present: a short prefix, a truncated
    body, trailing garbage, or an oversized length each raise
    :class:`~repro.exceptions.ProtocolError`.  The socket paths use
    :func:`read_frame`; this form exists for tests and in-memory transports.
    """
    if len(frame) < _HEADER.size:
        raise ProtocolError(
            f"truncated frame: {len(frame)} bytes cannot hold the {_HEADER.size}-byte length prefix"
        )
    (length,) = _HEADER.unpack(frame[: _HEADER.size])
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length prefix {length} exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    body = frame[_HEADER.size :]
    if len(body) != length:
        raise ProtocolError(
            f"truncated frame: length prefix promises {length} bytes, got {len(body)}"
        )
    return decode_message(bytes(body))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or ``None`` on EOF before the first byte.

    EOF *inside* a frame (after at least one byte arrived) is a truncation
    and raises :class:`~repro.exceptions.ProtocolError` — the peer died
    mid-sentence, which the retry ladder must see as a failure, not as a
    clean close.
    """
    chunks: list[bytes] = []
    received = 0
    while received < count:
        chunk = sock.recv(count - received)
        if not chunk:
            if received == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({received} of {count} bytes received)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[dict[str, Any], int] | None:
    """Read and decode one frame from ``sock``.

    Returns ``(message, bytes_read)``, or ``None`` when the peer closed the
    connection cleanly between frames.  Timeouts (``socket.timeout``) and
    transport errors propagate as-is — the caller owns the retry policy.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length prefix {length} exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between the length prefix and the body")
    return decode_message(body), _HEADER.size + length


def write_frame(sock: socket.socket, frame: bytes) -> int:
    """Send one already-framed byte string; returns the bytes written."""
    sock.sendall(frame)
    return len(frame)


# ----------------------------------------------------------------------
# graphs on the wire
# ----------------------------------------------------------------------
def graph_to_wire(graph: DiGraph) -> dict[str, Any]:
    """Serialise ``graph`` into a JSON-ready wire document.

    Node labels travel in insertion order (the order
    :meth:`content_fingerprint
    <repro.graph.digraph.DiGraph.content_fingerprint>` hashes), so the
    receiver's rebuild reproduces the fingerprint bit for bit.  Labels that
    would not survive a JSON round trip raise
    :class:`~repro.exceptions.NetError` — the caller keeps such lanes local
    instead of shipping a lossy graph.
    """
    nodes = graph.nodes()
    for label in nodes:
        if not json_native_label(label):
            raise NetError(
                f"graph label {label!r} of type {type(label).__name__} does not survive "
                "a JSON round trip; this graph cannot cross the wire losslessly"
            )
    return {
        "nodes": nodes,
        "edges": [[u, v] for u, v in graph.edges()],
        "allow_self_loops": graph.allow_self_loops,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "fingerprint": graph.content_fingerprint(),
    }


def graph_from_wire(document: dict[str, Any]) -> DiGraph:
    """Rebuild a :class:`~repro.graph.digraph.DiGraph` from its wire document.

    Verifies the recorded shape and — the cross-machine bit-identity
    guarantee — that the rebuilt graph's fingerprint equals the sender's.
    Raises :class:`~repro.exceptions.ProtocolError` on any mismatch or
    malformed field.
    """
    if not isinstance(document, dict):
        raise ProtocolError(f"wire graph must be an object, got {type(document).__name__}")
    try:
        nodes = document["nodes"]
        edges = document["edges"]
        fingerprint = document["fingerprint"]
        graph = DiGraph.from_edges(
            ((u, v) for u, v in edges),
            nodes=nodes,
            allow_self_loops=bool(document["allow_self_loops"]),
        )
    except (KeyError, TypeError, ValueError, GraphError) as error:
        raise ProtocolError(f"malformed wire graph: {error!r}")
    if graph.num_nodes != document.get("num_nodes") or graph.num_edges != document.get(
        "num_edges"
    ):
        raise ProtocolError(
            f"wire graph shape mismatch: rebuilt {graph.num_nodes} nodes / "
            f"{graph.num_edges} edges, document records "
            f"{document.get('num_nodes')} / {document.get('num_edges')}"
        )
    if graph.content_fingerprint() != fingerprint:
        raise ProtocolError(
            "wire graph failed verification: rebuilt fingerprint does not match "
            "the sender's (labels, edges, or loop policy were damaged in transit)"
        )
    return graph
