"""Push–relabel (preflow) maximum flow with FIFO selection and the gap heuristic.

This is the third, independent max-flow implementation in the package.  The
DDS solvers default to Dinic (:mod:`repro.flow.dinic`), but push–relabel has
a better worst-case bound (``O(V^3)`` with FIFO selection) and behaves
differently on the short, wide networks produced by the density reduction,
so it is exposed both for experimentation (``flow_solver="push-relabel"``)
and as yet another cross-check in the test suite (three solvers agreeing is
a strong correctness signal for all of them).

Like Dinic the solver runs its inner loops over the cached list view of the
network's CSR topology (:meth:`~repro.flow.network.FlowNetwork.solver_views`)
plus a capacity snapshot, writing the residual capacities back once at the
end of ``max_flow``.
"""

from __future__ import annotations

from array import array
from collections import deque

from repro.exceptions import FlowError
from repro.flow.network import EPSILON, FlowNetwork

#: Discharge sweeps between two deadline checkpoints: frequent enough that a
#: budget overrun is bounded by a few sweeps' work, cheap enough that the
#: no-deadline path pays one ``is None`` test per sweep batch.
DISCHARGE_CHECK_INTERVAL = 64


class PushRelabelSolver:
    """Stateful FIFO push–relabel solver bound to one :class:`FlowNetwork`.

    Like the other solvers it mutates the network's residual capacities; call
    :meth:`FlowNetwork.reset_flow` to reuse the network afterwards.
    ``arcs_pushed`` counts individual push operations.

    With ``warm_start=True`` the network's residual state is taken as a
    valid feasible flow to continue from: its value is credited to the
    sink's excess up front, and the usual initialisation then saturates
    only the *remaining* residual capacity out of the source.  Because the
    source keeps height ``n`` and no residual source arcs survive the
    saturation, the standard height labelling stays valid, so the preflow
    discharge loop is unchanged — it simply starts much closer to done.

    Warm solves additionally **reuse the height labels** of the previous
    solve on the same network when the network has them stashed
    (:meth:`~repro.flow.network.FlowNetwork.stashed_heights`): instead of
    re-deriving the labelling from all-zeros through relabel operations, the
    solver adopts the stashed labels and *repairs* them — lowering any label
    a between-solve retune made invalid — which is sound because validity
    admits arbitrary lowering (see :meth:`_repair_heights`).  The reuse is
    reported as ``height_reused`` and surfaces as the engine counter
    ``height_reuses`` (stats glossary in :mod:`repro.flow.engine`).
    """

    name = "push-relabel"

    #: Advertises to :class:`~repro.flow.engine.FlowEngine` that this solver
    #: can continue from a nonzero feasible flow (as an initial preflow).
    supports_warm_start = True

    #: Optional :class:`repro.runtime.Deadline`, attached by the engine.
    #: Checked every :data:`DISCHARGE_CHECK_INTERVAL` discharge sweeps; an
    #: abort discards the local caps/height snapshots before write-back, so
    #: the network keeps the valid feasible flow it held at solve entry
    #: (a mid-solve preflow is *not* a feasible flow — it must never be
    #: committed) and a later warm retune is bit-identical.
    deadline = None

    def __init__(
        self, network: FlowNetwork, source: int, sink: int, warm_start: bool = False
    ) -> None:
        if source == sink:
            raise FlowError("source and sink must differ")
        network._check_node(source)
        network._check_node(sink)
        self.network = network
        self.source = source
        self.sink = sink
        self.warm_start = warm_start
        self.arcs_pushed = 0
        #: Whether this solve adopted the previous solve's height labels.
        self.height_reused = False
        n = network.num_nodes
        self._height = [0] * n
        self._excess = [0.0] * n
        self._current_arc = [0] * n
        # Number of nodes at each height, for the gap heuristic.
        self._height_count = [0] * (2 * n + 1)
        # Scratch list views of the network, bound during max_flow().
        self._heads: list[list[int]] = []
        self._targets: list[int] = []
        self._caps: list[float] = []

    # ------------------------------------------------------------------
    def max_flow(self) -> float:
        """Run push–relabel to completion and return the max-flow value."""
        network = self.network
        n = network.num_nodes
        heads, targets = network.solver_views()
        caps_arr = network.arc_capacities
        caps = caps_arr.tolist()
        self._heads, self._targets, self._caps = heads, targets, caps
        height = self._height
        excess = self._excess
        height_count = self._height_count

        if self.warm_start:
            # Credit the value of the pre-existing feasible flow to the sink
            # before saturating what is left of the source arcs; a valid
            # flow has zero excess at every interior node, so the sink is
            # the only node that needs seeding.
            excess[self.sink] = network.flow_value(self.source)
            stashed = network.stashed_heights(self.source, self.sink)
            if stashed is not None:
                # Adopt the previous solve's labels (clamped into the gap
                # array's range); _repair_heights below makes them valid for
                # the residual graph this solve actually sees.
                limit = 2 * n
                for node in range(n):
                    label = stashed[node]
                    height[node] = label if 0 <= label <= limit else limit
                self.height_reused = True

        # Initialise the preflow: saturate every arc out of the source.
        height[self.source] = n
        active: deque[int] = deque()
        for arc_index in heads[self.source]:
            capacity = caps[arc_index]
            if capacity > EPSILON:
                target = targets[arc_index]
                caps[arc_index] = 0.0
                caps[arc_index ^ 1] += capacity
                excess[target] += capacity
                self.arcs_pushed += 1
                if target not in (self.source, self.sink) and excess[target] == capacity:
                    active.append(target)
        if self.height_reused:
            height[self.sink] = 0
            self._repair_heights()
        for node in range(n):
            height_count[height[node]] += 1

        sweeps = 0
        while active:
            if self.deadline is not None:
                sweeps += 1
                if sweeps >= DISCHARGE_CHECK_INTERVAL:
                    sweeps = 0
                    self.deadline.check("push-relabel discharge sweep")
            node = active.popleft()
            self._discharge(node, active)

        caps_arr[:] = array("d", caps)
        network.stash_heights(self.source, self.sink, height)
        return excess[self.sink]

    def min_cut_source_side(self) -> list[int]:
        """Source side of a minimum cut (valid after :meth:`max_flow`)."""
        reachable = self.network.residual_reachable(self.source)
        return [node for node, flag in enumerate(reachable) if flag]

    # ------------------------------------------------------------------
    def _repair_heights(self) -> None:
        """Lower reused height labels until they are valid for the current residual graph.

        A stashed labelling was valid for the residual graph of the solve
        that produced it; a retune in between may have created residual arcs
        ``(u, v)`` that violate ``h(u) <= h(v) + 1``.  Validity admits any
        *lowering* (a label is just a certified lower bound on residual
        distance — shrinking the certificate never lies), so each violated
        node is relaxed to ``min(h(v) + 1)`` over its residual arcs and its
        residual predecessors — whose own constraint the lowering may have
        broken — are re-examined.  Labels only decrease and are bounded
        below by 0, so the pass terminates; its fixpoint satisfies every
        constraint, which is exactly the precondition the discharge loop
        needs.  The source keeps height ``n`` (it has no outgoing residual
        arcs after the saturating initialisation, hence no constraint).

        In the hot warm-start pattern — small capacity retunes between
        binary-search guesses — almost every label survives untouched, so
        the discharge loop starts from near-final heights instead of
        re-earning them one relabel at a time.
        """
        heads = self._heads
        targets = self._targets
        caps = self._caps
        height = self._height
        source = self.source
        n = self.network.num_nodes
        pending: deque[int] = deque(node for node in range(n) if node != source)
        queued = [True] * n
        queued[source] = False
        while pending:
            node = pending.popleft()
            queued[node] = False
            best = height[node]
            for arc_index in heads[node]:
                if caps[arc_index] > EPSILON:
                    candidate = height[targets[arc_index]] + 1
                    if candidate < best:
                        best = candidate
            if best < height[node]:
                height[node] = best
                # ``caps[arc_index ^ 1] > 0`` means the twin — an arc from
                # ``targets[arc_index]`` into this node — is residual, so
                # that neighbour's constraint must be re-checked.
                for arc_index in heads[node]:
                    if caps[arc_index ^ 1] > EPSILON:
                        neighbour = targets[arc_index]
                        if (
                            neighbour != source
                            and height[neighbour] > best + 1
                            and not queued[neighbour]
                        ):
                            queued[neighbour] = True
                            pending.append(neighbour)

    def _discharge(self, node: int, active: deque[int]) -> None:
        """Push excess out of ``node`` until it is gone or the node is relabelled dry."""
        heads = self._heads
        targets = self._targets
        caps = self._caps
        height = self._height
        excess = self._excess
        current_arc = self._current_arc
        node_heads = heads[node]

        while excess[node] > EPSILON:
            if current_arc[node] >= len(node_heads):
                self._relabel(node)
                current_arc[node] = 0
                if height[node] > 2 * self.network.num_nodes:
                    break
                continue
            arc_index = node_heads[current_arc[node]]
            target = targets[arc_index]
            if caps[arc_index] > EPSILON and height[node] == height[target] + 1:
                amount = min(excess[node], caps[arc_index])
                caps[arc_index] -= amount
                caps[arc_index ^ 1] += amount
                excess[node] -= amount
                self.arcs_pushed += 1
                had_no_excess = excess[target] <= EPSILON
                excess[target] += amount
                if had_no_excess and target not in (self.source, self.sink):
                    active.append(target)
            else:
                current_arc[node] += 1

    def _relabel(self, node: int) -> None:
        """Raise ``node`` just above its lowest admissible neighbour (with gap heuristic)."""
        heads = self._heads
        targets = self._targets
        caps = self._caps
        height = self._height
        height_count = self._height_count
        num_nodes = self.network.num_nodes

        old_height = height[node]
        minimum = 2 * num_nodes
        for arc_index in heads[node]:
            if caps[arc_index] > EPSILON:
                minimum = min(minimum, height[targets[arc_index]])
        new_height = minimum + 1

        height_count[old_height] -= 1
        # Gap heuristic: if no node remains at old_height, every node above it
        # (below n) can never reach the sink again — lift them past n at once.
        if height_count[old_height] == 0 and old_height < num_nodes:
            for other in range(num_nodes):
                if old_height < height[other] < num_nodes and other != node:
                    height_count[height[other]] -= 1
                    height[other] = num_nodes + 1
                    height_count[height[other]] += 1
        height[node] = new_height
        if new_height < len(height_count):
            height_count[new_height] += 1


def push_relabel_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Convenience wrapper: run push–relabel on ``network`` and return the flow value."""
    return PushRelabelSolver(network, source, sink).max_flow()
