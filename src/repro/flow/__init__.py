"""Max-flow / min-cut substrate.

The DDS exact algorithms reduce the density decision problem to a minimum
``s``–``t`` cut.  This subpackage provides the flow machinery from scratch:

* :class:`FlowNetwork` — an arc-list residual network with float capacities,
* :func:`dinic_max_flow` / :class:`DinicSolver` — the primary solver
  (Dinic's blocking-flow algorithm, ``O(V^2 E)`` worst case, much faster on
  the unit-capacity-heavy networks produced by the density reduction),
* :func:`push_relabel_max_flow` / :class:`PushRelabelSolver` — FIFO
  push–relabel with the gap heuristic, an alternative solver with a better
  worst-case bound,
* :func:`edmonds_karp_max_flow` — a simple reference solver used to
  cross-check the other two in the test suite.
"""

from repro.flow.dinic import DinicSolver, dinic_max_flow
from repro.flow.edmonds_karp import edmonds_karp_max_flow
from repro.flow.network import INFINITY, FlowNetwork
from repro.flow.push_relabel import PushRelabelSolver, push_relabel_max_flow

__all__ = [
    "FlowNetwork",
    "INFINITY",
    "DinicSolver",
    "dinic_max_flow",
    "edmonds_karp_max_flow",
    "PushRelabelSolver",
    "push_relabel_max_flow",
]
