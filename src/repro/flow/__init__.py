"""Max-flow / min-cut substrate — the ``FlowEngine`` subsystem.

The DDS exact algorithms reduce the density decision problem to a minimum
``s``–``t`` cut.  This subpackage provides the flow machinery from scratch:

* :class:`FlowNetwork` — a CSR-backed residual network (``array('d')``
  capacities, ``array('q')`` targets and per-node arc slices) with float
  capacities, in-place capacity retuning (:meth:`FlowNetwork.set_capacity` +
  :meth:`FlowNetwork.reset_flow`) so a built network can be re-solved for
  many parameter guesses without rebuilding,
* :class:`DinicSolver` / :func:`dinic_max_flow` — the primary solver
  (Dinic's blocking-flow algorithm, ``O(V^2 E)`` worst case, much faster on
  the unit-capacity-heavy networks produced by the density reduction),
* :class:`PushRelabelSolver` / :func:`push_relabel_max_flow` — FIFO
  push–relabel with the gap heuristic, an alternative solver with a better
  worst-case bound,
* :class:`EdmondsKarpSolver` / :func:`edmonds_karp_max_flow` — a simple
  reference solver used to cross-check the other two in the test suite,
* ``NumpyPushRelabelSolver`` (:mod:`repro.flow.numpy_backend`) — the
  vectorised bulk-synchronous push–relabel backend running on zero-copy
  numpy views of the CSR buffers (``None`` here, and unlisted in the
  registry, when numpy is not installed),
* :mod:`repro.flow.registry` — the name → solver-class registry behind the
  ``flow_solver=`` parameter of the exact APIs and the ``--flow-solver``
  CLI flag,
* :class:`FlowEngine` — per-run solver selection + instrumentation
  (``flow_calls``, ``networks_built``, ``arcs_pushed``).

Adding a solver
---------------
Implement the solver protocol — ``Solver(network, source, sink)``,
``max_flow() -> float``, ``min_cut_source_side() -> list[int]``, and an
``arcs_pushed`` counter attribute — then register it under a name::

    from repro.flow import register_solver

    class MySolver:
        def __init__(self, network, source, sink): ...
        def max_flow(self) -> float: ...
        def min_cut_source_side(self) -> list[int]: ...
        arcs_pushed = 0

    register_solver("my-solver", MySolver)

Every exact API (``flow_exact``, ``dc_exact``, ``core_exact``) and the CLI
then accept the new name: ``dc_exact(graph, flow_solver="my-solver")`` or
``dds-repro find --dataset foodweb-tiny --flow-solver my-solver``.  The
cross-solver property suite (``tests/test_flow_property.py``) is the
cheapest way to validate a new backend against the built-ins.
"""

from repro.flow.dinic import DinicSolver, dinic_max_flow
from repro.flow.edmonds_karp import EdmondsKarpSolver, edmonds_karp_max_flow
from repro.flow.engine import FlowEngine
from repro.flow.network import INFINITY, FlowNetwork
from repro.flow.push_relabel import PushRelabelSolver, push_relabel_max_flow
from repro.flow.registry import (
    AUTO_SOLVER,
    DEFAULT_SOLVER,
    VECTOR_SOLVER,
    NumpyPushRelabelSolver,
    available_flow_solvers,
    flow_solver_choices,
    get_solver_class,
    has_vector_backend,
    register_solver,
    resolve_auto_solver,
    unregister_solver,
)

__all__ = [
    "FlowNetwork",
    "INFINITY",
    "FlowEngine",
    "DinicSolver",
    "dinic_max_flow",
    "EdmondsKarpSolver",
    "edmonds_karp_max_flow",
    "PushRelabelSolver",
    "push_relabel_max_flow",
    "NumpyPushRelabelSolver",
    "AUTO_SOLVER",
    "DEFAULT_SOLVER",
    "VECTOR_SOLVER",
    "available_flow_solvers",
    "flow_solver_choices",
    "get_solver_class",
    "has_vector_backend",
    "register_solver",
    "resolve_auto_solver",
    "unregister_solver",
]
