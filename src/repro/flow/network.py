"""Residual flow-network representation shared by all max-flow solvers.

The network stores arcs in a flat list where arc ``i`` and arc ``i ^ 1`` are
mutual residuals (the classic pairing trick), so pushing flow on an arc and
its reverse is an O(1) index operation.  Capacities are floats because the
DDS reduction uses capacities such as ``g / sqrt(a)``; all solvers treat
residual capacities below :data:`EPSILON` as zero to keep floating-point
noise from creating phantom augmenting paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import FlowError

#: Capacity used for "uncuttable" arcs.
INFINITY = float("inf")

#: Residual capacities smaller than this are treated as zero.
EPSILON = 1e-9


@dataclass(frozen=True)
class Arc:
    """Read-only view of one arc (used for inspection and debugging)."""

    source: int
    target: int
    capacity: float
    flow: float


class FlowNetwork:
    """A directed flow network over nodes ``0 .. num_nodes-1``.

    Examples
    --------
    >>> net = FlowNetwork(4)
    >>> _ = net.add_edge(0, 1, 3.0)
    >>> _ = net.add_edge(1, 3, 2.0)
    >>> from repro.flow import dinic_max_flow
    >>> dinic_max_flow(net, 0, 3)
    2.0
    """

    __slots__ = ("num_nodes", "_heads", "_to", "_cap", "_sources")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise FlowError(f"num_nodes must be >= 0, got {num_nodes}")
        self.num_nodes = num_nodes
        self._heads: list[list[int]] = [[] for _ in range(num_nodes)]
        self._to: list[int] = []
        self._cap: list[float] = []
        self._sources: list[int] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self) -> int:
        """Append a new node and return its index."""
        self._heads.append([])
        self.num_nodes += 1
        return self.num_nodes - 1

    def add_edge(self, source: int, target: int, capacity: float) -> int:
        """Add arc ``source -> target`` with ``capacity`` (reverse gets 0).

        Returns the arc index, which can be passed to :meth:`arc_flow`.
        """
        self._check_node(source)
        self._check_node(target)
        if capacity < 0:
            raise FlowError(f"capacity must be >= 0, got {capacity}")
        arc_index = len(self._to)
        self._to.append(target)
        self._cap.append(float(capacity))
        self._sources.append(source)
        self._heads[source].append(arc_index)
        self._to.append(source)
        self._cap.append(0.0)
        self._sources.append(target)
        self._heads[target].append(arc_index + 1)
        return arc_index

    # ------------------------------------------------------------------
    # solver-facing accessors (kept as raw lists for speed)
    # ------------------------------------------------------------------
    @property
    def heads(self) -> list[list[int]]:
        """Outgoing arc indices per node (includes residual arcs)."""
        return self._heads

    @property
    def arc_targets(self) -> list[int]:
        """Target node of every arc."""
        return self._to

    @property
    def arc_capacities(self) -> list[float]:
        """Mutable residual capacities of every arc."""
        return self._cap

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (2x the number of added edges)."""
        return len(self._to)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def arcs(self) -> Iterator[Arc]:
        """Iterate over the forward arcs with their current flow."""
        for index in range(0, len(self._to), 2):
            original = self._original_capacity(index)
            residual = self._cap[index]
            yield Arc(
                source=self._sources[index],
                target=self._to[index],
                capacity=original,
                flow=original - residual,
            )

    def arc_flow(self, arc_index: int) -> float:
        """Flow currently routed on the forward arc ``arc_index``."""
        if arc_index % 2 != 0:
            raise FlowError("arc_flow expects the index returned by add_edge (even)")
        return self._original_capacity(arc_index) - self._cap[arc_index]

    def reset_flow(self) -> None:
        """Restore all residual capacities to the original capacities."""
        for index in range(0, len(self._cap), 2):
            original = self._original_capacity(index)
            self._cap[index] = original
            self._cap[index + 1] = 0.0

    def residual_reachable(self, source: int) -> list[bool]:
        """Nodes reachable from ``source`` using arcs with positive residual capacity.

        After a max-flow computation this is exactly the source side of a
        minimum cut.
        """
        self._check_node(source)
        seen = [False] * self.num_nodes
        seen[source] = True
        stack = [source]
        while stack:
            node = stack.pop()
            for arc_index in self._heads[node]:
                if self._cap[arc_index] > EPSILON:
                    target = self._to[arc_index]
                    if not seen[target]:
                        seen[target] = True
                        stack.append(target)
        return seen

    def _original_capacity(self, forward_index: int) -> float:
        residual = self._cap[forward_index]
        pushed_back = self._cap[forward_index + 1]
        if residual == INFINITY:
            return INFINITY
        return residual + pushed_back

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise FlowError(f"node {node} out of range [0, {self.num_nodes})")
