"""Residual flow-network representation shared by all max-flow solvers.

The network stores arcs in a flat list where arc ``i`` and arc ``i ^ 1`` are
mutual residuals (the classic pairing trick), so pushing flow on an arc and
its reverse is an O(1) index operation.  Capacities are floats because the
DDS reduction uses capacities such as ``g / sqrt(a)``; all solvers treat
residual capacities below :data:`EPSILON` as zero to keep floating-point
noise from creating phantom augmenting paths.

Storage is CSR-style and array-backed: arc targets/tails live in
``array('q')`` buffers and capacities in ``array('d')`` buffers, with the
per-node adjacency expressed as slices ``csr_order[csr_starts[u] :
csr_starts[u + 1]]`` over a flat arc-index array rather than a list of
Python lists.  The CSR index is (re)built lazily after construction, so
``add_edge`` stays O(1) amortised and a built network can be retuned
(capacities updated in place via :meth:`set_capacity` + :meth:`reset_flow`)
and re-solved without ever touching the topology again — the hot pattern in
the binary-search exact DDS algorithms.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import FlowError

try:  # optional vectorised fast paths; everything works scalar without numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI lane
    _np = None

#: Capacity used for "uncuttable" arcs.
INFINITY = float("inf")

#: Residual capacities smaller than this are treated as zero.
EPSILON = 1e-9


@dataclass(frozen=True)
class Arc:
    """Read-only view of one arc (used for inspection and debugging)."""

    source: int
    target: int
    capacity: float
    flow: float


class FlowNetwork:
    """A directed flow network over nodes ``0 .. num_nodes-1``.

    Examples
    --------
    >>> net = FlowNetwork(4)
    >>> _ = net.add_edge(0, 1, 3.0)
    >>> _ = net.add_edge(1, 3, 2.0)
    >>> from repro.flow import dinic_max_flow
    >>> dinic_max_flow(net, 0, 3)
    2.0
    """

    __slots__ = (
        "num_nodes",
        "_to",
        "_cap",
        "_base",
        "_tails",
        "_csr_starts",
        "_csr_order",
        "_csr_dirty",
        "_csr_lists",
        "_np_views",
        "_height_stash",
    )

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise FlowError(f"num_nodes must be >= 0, got {num_nodes}")
        self.num_nodes = num_nodes
        self._to = array("q")
        self._cap = array("d")
        self._base = array("d")  # original capacities (reverse arcs hold 0.0)
        self._tails = array("q")
        self._csr_starts = array("q", bytes(8 * (num_nodes + 1)))
        self._csr_order = array("q")
        self._csr_dirty = False
        self._csr_lists: tuple[list[list[int]], list[int]] | None = None
        self._np_views: tuple | None = None
        self._height_stash: dict[tuple[int, int], list[int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self) -> int:
        """Append a new node and return its index."""
        self.num_nodes += 1
        self._csr_dirty = True
        self._np_views = None
        self._height_stash.clear()
        return self.num_nodes - 1

    def add_edge(self, source: int, target: int, capacity: float) -> int:
        """Add arc ``source -> target`` with ``capacity`` (reverse gets 0).

        Returns the arc index, which can be passed to :meth:`arc_flow`.
        """
        self._check_node(source)
        self._check_node(target)
        if capacity < 0:
            raise FlowError(f"capacity must be >= 0, got {capacity}")
        arc_index = len(self._to)
        capacity = float(capacity)
        # Drop our cached numpy views before resizing: a live buffer export
        # would make the appends below raise BufferError.  (Views handed out
        # by numpy_csr() and still held by callers do keep the buffers
        # pinned — growing a network mid-solve is an error either way.)
        self._np_views = None
        appends = (
            (self._to, target),
            (self._cap, capacity),
            (self._base, capacity),
            (self._tails, source),
            (self._to, source),
            (self._cap, 0.0),
            (self._base, 0.0),
            (self._tails, target),
        )
        done = 0
        try:
            for buffer, value in appends:
                buffer.append(value)
                done += 1
        except BufferError:
            # A caller-held view pins one of the buffers mid-sequence; the
            # parallel arrays must stay aligned, so undo the partial appends
            # (only non-pinned buffers were touched, so the pops succeed)
            # before re-raising.
            for buffer, _ in reversed(appends[:done]):
                buffer.pop()
            raise
        self._csr_dirty = True
        self._height_stash.clear()
        return arc_index

    def append_paired_arcs(self, tails, targets, capacities, base_capacities) -> int:
        """Bulk-append already-paired arcs and return the first new arc index.

        The four sequences are *arc-indexed* (not edge-indexed): position
        ``i`` and ``i ^ 1`` must already be residual twins, exactly as the
        flat buffers store them — this is the fast path the block-diagonal
        stacking layer uses to copy whole member networks (whose buffers are
        already interleaved) into one big network without a per-edge
        ``add_edge`` loop.  All four sequences must have the same even
        length; numpy arrays take a zero-copy ``tobytes`` path, any other
        sequence is extended element-wise.
        """
        length = len(tails)
        if length % 2 != 0:
            raise FlowError("append_paired_arcs expects an even number of arcs")
        if not (len(targets) == len(capacities) == len(base_capacities) == length):
            raise FlowError("append_paired_arcs sequences must have equal lengths")
        first_index = len(self._to)
        # Same BufferError discipline as add_edge: drop cached views first,
        # and keep the parallel buffers aligned if a pinned buffer raises.
        self._np_views = None
        if _np is not None:
            columns = (
                (self._to, _np.ascontiguousarray(targets, dtype=_np.int64)),
                (self._cap, _np.ascontiguousarray(capacities, dtype=_np.float64)),
                (self._base, _np.ascontiguousarray(base_capacities, dtype=_np.float64)),
                (self._tails, _np.ascontiguousarray(tails, dtype=_np.int64)),
            )
            done: list[array] = []
            try:
                for buffer, column in columns:
                    buffer.frombytes(column.tobytes())
                    done.append(buffer)
            except BufferError:
                for buffer in reversed(done):
                    del buffer[first_index:]
                raise
        else:
            self._to.extend(int(value) for value in targets)
            self._cap.extend(float(value) for value in capacities)
            self._base.extend(float(value) for value in base_capacities)
            self._tails.extend(int(value) for value in tails)
        if length:
            endpoints = (
                min(self._tails[first_index:]),
                max(self._tails[first_index:]),
                min(self._to[first_index:]),
                max(self._to[first_index:]),
            )
            bad = next(
                (node for node in endpoints if not 0 <= node < self.num_nodes), None
            )
            if bad is not None:
                del self._to[first_index:]
                del self._cap[first_index:]
                del self._base[first_index:]
                del self._tails[first_index:]
                raise FlowError(f"node {bad} out of range [0, {self.num_nodes})")
        self._csr_dirty = True
        self._height_stash.clear()
        return first_index

    def arc_state_views(self) -> tuple:
        """Read-only ``memoryview``s ``(tails, targets, capacities, base)``.

        Zero-copy exports of the flat paired-arc buffers in the exact shape
        :meth:`append_paired_arcs` (and :meth:`attach_paired_arcs`) accept —
        int64 tails/targets, float64 capacities/base — so a network's arc
        state can be copied into another process's network, or published
        into a shared-memory segment, without materialising Python objects
        per arc.  The views pin the underlying buffers: release them (or
        drop them) before the next topology mutation, which needs to resize
        those buffers.
        """
        return (
            memoryview(self._tails),
            memoryview(self._to),
            memoryview(self._cap),
            memoryview(self._base),
        )

    @classmethod
    def attach_paired_arcs(
        cls, num_nodes: int, tails, targets, capacities, base_capacities
    ) -> "FlowNetwork":
        """Build a network by *reading* arc buffers mapped elsewhere.

        The read-only attach path of the process-pool executor: the four
        arc-indexed sequences — typically ``memoryview`` casts or numpy
        views over a shared-memory segment, shaped exactly like
        :meth:`arc_state_views` — are bulk-copied through
        :meth:`append_paired_arcs` into a fresh network that owns its own
        buffers.  The source is never written (solvers mutate only the new
        network's capacity copy), so any number of processes can attach to
        one published segment concurrently and still satisfy the
        bit-identity guarantees: an attached network's :meth:`numpy_csr`
        views are element-for-element identical to the publisher's.
        """
        network = cls(num_nodes)
        network.append_paired_arcs(tails, targets, capacities, base_capacities)
        return network

    def clone(self) -> "FlowNetwork":
        """Deep copy of the topology *and* the current residual state.

        The flat arc buffers are copied, so retunes and solves on the clone
        never touch the original (and vice versa); the CSR index, list/numpy
        views and the height stash are per-instance caches and are rebuilt
        lazily on the clone.  This is how the incremental layer seeds a
        ``top_k`` round's working cache from the session's warm networks
        without corrupting them.
        """
        twin = FlowNetwork(self.num_nodes)
        twin._to = array("q", self._to)
        twin._cap = array("d", self._cap)
        twin._base = array("d", self._base)
        twin._tails = array("q", self._tails)
        twin._csr_dirty = True
        return twin

    def set_capacity(self, arc_index: int, capacity: float) -> None:
        """Replace the original capacity of forward arc ``arc_index`` in place.

        The residual state of the arc is reset (full capacity forward, zero
        backward); callers that retune several arcs between solver runs should
        finish with :meth:`reset_flow` so the untouched arcs are reset too.
        The network topology is untouched, so the CSR index stays valid.
        """
        if arc_index % 2 != 0:
            raise FlowError("set_capacity expects the index returned by add_edge (even)")
        if capacity < 0:
            raise FlowError(f"capacity must be >= 0, got {capacity}")
        capacity = float(capacity)
        self._base[arc_index] = capacity
        self._cap[arc_index] = capacity
        self._cap[arc_index + 1] = 0.0

    def set_capacity_preserving_flow(self, arc_index: int, capacity: float) -> float:
        """Replace the capacity of forward arc ``arc_index``, keeping its flow.

        This is the warm-start counterpart of :meth:`set_capacity`: the flow
        currently routed on the arc survives the capacity change.  When the
        new capacity is below the current flow, the flow is clamped down to
        the new capacity and the clamped amount is returned — flow
        conservation at the arc's tail is then broken by exactly that excess,
        and the caller must repair it (see :meth:`return_excess`).  Returns
        0.0 when the existing flow already fits under the new capacity.
        """
        if arc_index % 2 != 0:
            raise FlowError(
                "set_capacity_preserving_flow expects the index returned by add_edge (even)"
            )
        if capacity < 0:
            raise FlowError(f"capacity must be >= 0, got {capacity}")
        capacity = float(capacity)
        flow = self._cap[arc_index + 1]
        self._base[arc_index] = capacity
        if flow <= capacity:
            self._cap[arc_index] = capacity - flow
            return 0.0
        self._cap[arc_index] = 0.0
        self._cap[arc_index + 1] = capacity
        return flow - capacity

    def withdraw_flow(self, arc_index: int, amount: float) -> None:
        """Cancel ``amount`` units of flow on forward arc ``arc_index`` in place.

        The inverse of pushing flow on one arc: the forward residual grows by
        ``amount`` and the reverse residual (which *is* the arc's flow)
        shrinks by the same.  Conservation is intentionally broken at both
        endpoints — the tail is left with an inflow surplus and the head with
        a deficit — so this is a surgical primitive for callers that repair
        the imbalance themselves (the incremental decision-network patcher
        cancels a deleted edge's flow here and walks the tail surplus back to
        the source via :meth:`return_excess`).  Raises if the arc carries
        less than ``amount`` flow (beyond float noise); sub-noise overshoot
        is clamped so retune loops cannot accumulate negative flow.
        """
        if arc_index % 2 != 0:
            raise FlowError("withdraw_flow expects the index returned by add_edge (even)")
        if amount < 0:
            raise FlowError(f"amount must be >= 0, got {amount}")
        flow = self._cap[arc_index + 1]
        if amount > flow + EPSILON:
            raise FlowError(
                f"cannot withdraw {amount!r} from arc {arc_index} carrying {flow!r}"
            )
        amount = min(float(amount), flow)
        self._cap[arc_index + 1] = flow - amount
        self._cap[arc_index] += amount

    def return_excess(self, excess: list[tuple[int, float]], source: int) -> float:
        """Restore flow conservation by pushing node excesses back to ``source``.

        ``excess`` lists ``(node, amount)`` pairs of inflow surpluses (as
        produced by clamping in :meth:`set_capacity_preserving_flow`).  Each
        surplus is cancelled against arcs that currently carry flow *into*
        the node, walking backwards along flow-carrying paths until the
        excess is absorbed at the source — turning a clamped preflow back
        into a valid flow whose value is lower by the returned total.

        The walk terminates because it strictly cancels path flow; it assumes
        the current flow is acyclic (always true on DAG networks such as the
        DDS decision networks, and for any flow produced by augmenting-path
        solvers).  Even sub-``EPSILON`` excesses are walked back while
        matching inflow exists — cached networks are retuned indefinitely
        across a session's lifetime, so tiny imbalances must not be allowed
        to accumulate.  Raises :class:`FlowError` if an excess beyond float
        noise cannot be returned, which indicates the residual state was not
        a clamped valid flow.

        When numpy is importable the walk runs as round-based bulk array
        operations (:meth:`_return_excess_vectorised`) — per round, every
        surplus cancels greedily against its node's flow-carrying incoming
        arcs in the same CSR order the scalar walk scans, so the two paths
        route the cancellation along the same arcs.
        """
        self._check_node(source)
        if _np is not None and len(self._to):
            return self._return_excess_vectorised(excess, source)
        heads, targets = self.solver_views()
        cap = self._cap
        returned = 0.0
        stack = [(node, amount) for node, amount in excess if amount > 0.0]
        while stack:
            node, amount = stack.pop()
            if node == source:
                returned += amount
                continue
            self._check_node(node)
            remaining = amount
            for arc_index in heads[node]:
                if remaining <= 0.0:
                    break
                # Odd arcs are residual twins: positive capacity there means
                # flow on the forward arc ``arc_index ^ 1`` *into* this node.
                if arc_index & 1 and cap[arc_index] > 0.0:
                    delta = min(remaining, cap[arc_index])
                    cap[arc_index] -= delta
                    cap[arc_index ^ 1] += delta
                    stack.append((targets[arc_index], delta))
                    remaining -= delta
            if remaining > EPSILON:
                raise FlowError(
                    f"cannot return {remaining!r} units of excess from node {node}: "
                    "no flow-carrying incoming arcs (residual state is not a clamped flow)"
                )
        return returned

    def _return_excess_vectorised(
        self,
        excess: list[tuple[int, float]],
        source: int,
        on_moves: "object | None" = None,
    ) -> float:
        """Bulk-array implementation of the excess-return walk (numpy present).

        Round-based: each round cancels every surplus-holding node against
        its flow-carrying incoming arcs (positive-capacity odd twins),
        greedily in CSR order via a per-segment exclusive prefix sum, and
        scatters the cancelled amounts onto the predecessor nodes as the
        next round's surpluses — excess hops one arc towards the source per
        round instead of one arc per interpreted loop iteration.  A round
        that can move nothing while an above-``EPSILON`` surplus remains
        raises :class:`FlowError`, mirroring the scalar walk.

        ``on_moves``, when given, is called once per round with the array of
        arc indices whose residuals the round updated — the hook the
        vectorised solver uses to keep its ``arcs_pushed`` counter (and,
        for block-diagonal batched networks, its per-owner push attribution)
        honest when it reuses this walk as the second phase of the preflow
        algorithm.
        """
        starts, order, _, caps, _, _ = self.numpy_csr()
        _, pos_head, seg_starts, empty_seg, _, counts, valid_segments = (
            self.numpy_position_index()
        )
        # True (unclipped) reduceat boundaries of the non-trailing-empty
        # segments; trailing arc-less nodes are covered by the zero fill.
        reduce_starts = starts[:valid_segments]
        exc = _np.zeros(self.num_nodes, dtype=_np.float64)
        for node, amount in excess:
            self._check_node(node)
            if amount > 0.0:
                exc[node] += amount
        pos_odd = (order & 1) == 1
        returned = 0.0
        while True:
            if exc[source] > 0.0:
                returned += float(exc[source])
                exc[source] = 0.0
            if not (exc > 0.0).any():
                return returned
            pos_caps = caps[order]
            # Odd arcs with positive capacity are residual twins: capacity
            # there is flow on the forward arc *into* this position's tail.
            cand = _np.where(pos_odd & (pos_caps > 0.0), pos_caps, 0.0)
            cum = _np.cumsum(cand)
            exclusive = cum - cand
            # The per-segment prefix comes from differences of one global
            # cumsum; rounding can leave it a few ulps negative, which would
            # manufacture phantom surplus at zero-excess nodes — clamp.
            prefix = _np.maximum(
                exclusive - _np.repeat(exclusive[seg_starts], counts), 0.0
            )
            room = _np.repeat(exc, counts)
            delta = _np.minimum(_np.maximum(room - prefix, 0.0), cand)
            moved_positions = _np.flatnonzero(delta > 0.0)
            if moved_positions.size == 0:
                stuck = float(exc.max())
                if stuck > EPSILON:
                    node = int(exc.argmax())
                    raise FlowError(
                        f"cannot return {stuck!r} units of excess from node {node}: "
                        "no flow-carrying incoming arcs (residual state is not a clamped flow)"
                    )
                return returned
            arcs = order[moved_positions]
            moved = delta[moved_positions]
            caps[arcs] -= moved
            caps[arcs ^ 1] += moved
            if on_moves is not None:
                on_moves(arcs)
            sent = _np.zeros(self.num_nodes, dtype=_np.float64)
            if valid_segments:
                sent[:valid_segments] = _np.add.reduceat(delta, reduce_starts)
            sent[empty_seg] = 0.0
            exc = _np.maximum(exc - sent, 0.0)
            _np.add.at(exc, pos_head[moved_positions], moved)

    def flow_value(self, source: int) -> float:
        """Net flow currently leaving ``source`` (the value of a valid flow).

        Computed from the residual state alone: forward arcs out of the
        source contribute the flow pushed onto their residual twins, forward
        arcs *into* the source subtract theirs.  Only meaningful when the
        residual state encodes a conservative flow (e.g. after a completed
        solve or a warm-start :meth:`~repro.core.flow_network.DecisionNetwork.retune`).
        """
        self._check_node(source)
        heads, _ = self.solver_views()
        cap = self._cap
        total = 0.0
        for arc_index in heads[source]:
            if arc_index & 1:
                total -= cap[arc_index]
            else:
                total += cap[arc_index ^ 1]
        return total

    # ------------------------------------------------------------------
    # solver-facing accessors (flat arrays for speed)
    # ------------------------------------------------------------------
    def csr(self) -> tuple[array, array, array, array]:
        """``(starts, order, targets, capacities)`` — the solver hot-path view.

        ``order[starts[u] : starts[u + 1]]`` lists the arc indices (forward
        and residual) leaving node ``u``; ``targets``/``capacities`` are
        indexed by arc index.  The index is rebuilt lazily if the topology
        changed since the last call.
        """
        if self._csr_dirty:
            self._rebuild_csr()
        return self._csr_starts, self._csr_order, self._to, self._cap

    def solver_views(self) -> tuple[list[list[int]], list[int]]:
        """``(heads, targets)`` as plain nested/flat lists, cached per topology.

        Indexing ``array`` objects boxes a fresh Python object per read, so
        the solvers run their inner loops over list snapshots of the CSR
        topology: ``heads[u]`` is the list of arc indices leaving ``u``
        (``csr_order`` sliced per node) and ``targets`` a flat list indexed
        by arc.  Capacities change between runs and are snapshotted by each
        solver individually.  The cache is invalidated whenever the topology
        changes, so building the view is O(m) once per network, not per
        max-flow call.
        """
        if self._csr_dirty or self._csr_lists is None:
            starts, order, _, _ = self.csr()
            heads = [
                order[starts[node] : starts[node + 1]].tolist()
                for node in range(self.num_nodes)
            ]
            self._csr_lists = (heads, self._to.tolist())
        return self._csr_lists

    def numpy_csr(self) -> tuple:
        """Zero-copy numpy views ``(starts, order, targets, capacities, tails, base)``.

        Every array is a ``numpy.frombuffer`` view over this network's flat
        CSR storage — ``int64`` over the ``array('q')`` buffers, ``float64``
        over the ``array('d')`` capacities — so vectorised solvers read *and
        write* the canonical residual state directly: a write through the
        capacities view is immediately visible via :attr:`arc_capacities`
        (and vice versa), with no snapshot or write-back step.  The views
        are cached per topology and rebuilt lazily, like :meth:`csr`.

        numpy is imported lazily here; callers are expected to be
        import-guarded themselves (see :mod:`repro.flow.registry`), so a
        missing numpy surfaces as the backend not being registered rather
        than as an import error in this core module.
        """
        import numpy

        if self._csr_dirty:
            self._rebuild_csr()
        if self._np_views is None:
            self._np_views = (
                numpy.frombuffer(self._csr_starts, dtype=numpy.int64),
                numpy.frombuffer(self._csr_order, dtype=numpy.int64),
                numpy.frombuffer(self._to, dtype=numpy.int64),
                numpy.frombuffer(self._cap, dtype=numpy.float64),
                numpy.frombuffer(self._tails, dtype=numpy.int64),
                numpy.frombuffer(self._base, dtype=numpy.float64),
            )
        return self._np_views[:6]

    def numpy_position_index(self) -> tuple:
        """Derived position-space index for vectorised per-node segment reductions.

        ``(pos_tail, pos_head, seg_starts, empty_seg, pos_of_arc, counts,
        valid_segments)``, all cached per topology: the tail/head node of
        the arc at each CSR position, gather-safe segment start indices
        (clipped to ``m - 1``, only ever dereferenced for segments that
        repeat a positive count) with the matching empty-segment mask, the
        inverse permutation mapping an arc index to its CSR position, the
        per-node arc counts (segment lengths), and the number of leading
        segments whose *true* start is below ``m``.  ``reduceat`` callers
        must slice the true ``starts`` to ``valid_segments`` — passing the
        clipped indices would silently truncate the last non-empty segment
        whenever trailing nodes have no arcs.  Unlike :meth:`numpy_csr`
        these are *computed* (O(m), once per topology), not views — they
        never change between retunes, which is exactly why they are cached
        on the network rather than rebuilt per solve.
        """
        import numpy

        views = self.numpy_csr()
        if len(self._np_views) == 6:
            starts, order, targets, _, tails, _ = views
            m = len(order)
            pos_tail = tails[order]
            pos_head = targets[order]
            seg_starts = numpy.minimum(starts[:-1], max(m - 1, 0))
            empty_seg = starts[:-1] == starts[1:]
            pos_of_arc = numpy.empty(m, dtype=numpy.int64)
            pos_of_arc[order] = numpy.arange(m, dtype=numpy.int64)
            counts = numpy.diff(starts)
            valid_segments = int(numpy.searchsorted(starts[:-1], m, side="left"))
            self._np_views = views + (
                pos_tail,
                pos_head,
                seg_starts,
                empty_seg,
                pos_of_arc,
                counts,
                valid_segments,
            )
        return self._np_views[6:]

    @property
    def heads(self) -> list[list[int]]:
        """Outgoing arc indices per node (includes residual arcs).

        Materialised from the CSR index (cached per topology); treat the
        returned lists as read-only.
        """
        return self.solver_views()[0]

    @property
    def arc_targets(self) -> array:
        """Target node of every arc (``array('q')``)."""
        return self._to

    @property
    def arc_capacities(self) -> array:
        """Mutable residual capacities of every arc (``array('d')``)."""
        return self._cap

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (2x the number of added edges)."""
        return len(self._to)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def arcs(self) -> Iterator[Arc]:
        """Iterate over the forward arcs with their current flow.

        The flow on a forward arc equals the residual capacity pushed back
        onto its reverse arc, which stays finite (and correct) even for
        infinite-capacity arcs where ``capacity - residual`` would be
        ``inf - inf = nan``.
        """
        for index in range(0, len(self._to), 2):
            yield Arc(
                source=self._tails[index],
                target=self._to[index],
                capacity=self._base[index],
                flow=self._cap[index + 1],
            )

    def arc_flow(self, arc_index: int) -> float:
        """Flow currently routed on the forward arc ``arc_index``."""
        if arc_index % 2 != 0:
            raise FlowError("arc_flow expects the index returned by add_edge (even)")
        return self._cap[arc_index + 1]

    def arc_base_capacity(self, arc_index: int) -> float:
        """Original (base) capacity of the forward arc ``arc_index``."""
        if arc_index % 2 != 0:
            raise FlowError(
                "arc_base_capacity expects the index returned by add_edge (even)"
            )
        return self._base[arc_index]

    def reset_flow(self) -> None:
        """Restore all residual capacities to the original capacities."""
        self._cap[:] = self._base

    # ------------------------------------------------------------------
    # solver label stash (push-relabel height reuse)
    # ------------------------------------------------------------------
    def stash_heights(self, source: int, sink: int, heights: list[int]) -> None:
        """Remember a solver's final height labels for ``(source, sink)``.

        Push–relabel finishes every solve holding a height labelling that is
        valid for the network's final residual graph; stashing it lets the
        *next* warm solve on this network start from those labels instead of
        re-deriving them from zero (see
        :class:`~repro.flow.push_relabel.PushRelabelSolver`).  The labels are
        advisory: capacities may be retuned between solves, so a consumer
        must repair them against the residual graph it actually sees.  The
        stash is dropped whenever the topology changes.
        """
        self._height_stash[(source, sink)] = list(heights)

    def stashed_heights(self, source: int, sink: int) -> list[int] | None:
        """The last stashed height labels for ``(source, sink)``, if any."""
        heights = self._height_stash.get((source, sink))
        if heights is None or len(heights) != self.num_nodes:
            return None
        return heights

    def residual_reachable(self, source: int) -> list[bool]:
        """Nodes reachable from ``source`` using arcs with positive residual capacity.

        After a max-flow computation this is exactly the source side of a
        minimum cut.
        """
        self._check_node(source)
        heads, targets = self.solver_views()
        caps = self._cap.tolist()
        seen = [False] * self.num_nodes
        seen[source] = True
        stack = [source]
        while stack:
            node = stack.pop()
            for arc_index in heads[node]:
                if caps[arc_index] > EPSILON:
                    target = targets[arc_index]
                    if not seen[target]:
                        seen[target] = True
                        stack.append(target)
        return seen

    # ------------------------------------------------------------------
    def _rebuild_csr(self) -> None:
        """Recompute the per-node arc slices (counting sort by arc tail).

        With numpy available the counting sort is replaced by a stable
        ``argsort`` on the tail array — bit-identical output (a stable sort
        by tail *is* the counting sort: arcs keep their index order within
        each node's segment) without the per-arc interpreted loop, which
        matters for the block-diagonal batched networks whose CSR spans many
        stacked members.
        """
        num_nodes = self.num_nodes
        tails = self._tails
        if _np is not None and len(tails):
            np_tails = _np.frombuffer(tails, dtype=_np.int64)
            counts = _np.bincount(np_tails, minlength=num_nodes)
            starts_np = _np.zeros(num_nodes + 1, dtype=_np.int64)
            _np.cumsum(counts, out=starts_np[1:])
            order_np = _np.argsort(np_tails, kind="stable")
            starts = array("q")
            starts.frombytes(starts_np.tobytes())
            order = array("q")
            order.frombytes(_np.ascontiguousarray(order_np, dtype=_np.int64).tobytes())
        else:
            starts = array("q", bytes(8 * (num_nodes + 1)))
            for tail in tails:
                starts[tail + 1] += 1
            for node in range(num_nodes):
                starts[node + 1] += starts[node]
            order = array("q", bytes(8 * len(tails)))
            cursor = starts.tolist()
            for arc_index, tail in enumerate(tails):
                order[cursor[tail]] = arc_index
                cursor[tail] += 1
        self._csr_starts = starts
        self._csr_order = order
        self._csr_dirty = False
        self._csr_lists = None
        self._np_views = None

    def _original_capacity(self, forward_index: int) -> float:
        return self._base[forward_index]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise FlowError(f"node {node} out of range [0, {self.num_nodes})")
