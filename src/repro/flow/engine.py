"""The :class:`FlowEngine` — solver selection plus run-wide instrumentation.

Every exact DDS run owns one engine.  The engine resolves the solver name
through the registry once, then every min-cut in the run goes through
:meth:`FlowEngine.min_cut`, which accumulates the three counters the
experiments (and the regression tests) care about:

* ``flow_calls`` — number of max-flow computations,
* ``networks_built`` — number of decision networks constructed from scratch
  (with the retune path this is one per fixed-ratio search, not one per
  binary-search guess),
* ``arcs_pushed`` — total per-arc residual updates across all solver runs,
  a machine-independent proxy for flow work.

The counters land in ``DDSResult.stats`` via :meth:`stats`.
"""

from __future__ import annotations

from typing import Any

from repro.flow.network import FlowNetwork
from repro.flow.registry import DEFAULT_SOLVER, get_solver_class


class FlowEngine:
    """Pluggable min-cut executor with per-run instrumentation."""

    __slots__ = ("solver_name", "solver_class", "flow_calls", "networks_built", "arcs_pushed")

    def __init__(self, flow_solver: str = DEFAULT_SOLVER) -> None:
        self.solver_name = flow_solver
        self.solver_class = get_solver_class(flow_solver)
        self.flow_calls = 0
        self.networks_built = 0
        self.arcs_pushed = 0

    def note_network_built(self) -> None:
        """Record that a decision network was constructed from scratch."""
        self.networks_built += 1

    def min_cut(self, network: FlowNetwork, source: int, sink: int) -> tuple[float, Any]:
        """Run one max-flow/min-cut and return ``(cut_value, solver)``.

        The returned solver instance exposes ``min_cut_source_side()`` for
        cut extraction; the engine's counters are already updated.
        """
        solver = self.solver_class(network, source, sink)
        value = solver.max_flow()
        self.flow_calls += 1
        self.arcs_pushed += getattr(solver, "arcs_pushed", 0)
        return value, solver

    def stats(self) -> dict[str, Any]:
        """Instrumentation snapshot merged into ``DDSResult.stats``."""
        return {
            "flow_solver": self.solver_name,
            "flow_calls": self.flow_calls,
            "networks_built": self.networks_built,
            "arcs_pushed": self.arcs_pushed,
        }
