"""The :class:`FlowEngine` — solver selection plus run-wide instrumentation.

Every exact DDS run owns (or borrows) one engine.  The engine resolves the
solver name through the registry once, then every min-cut in the run goes
through :meth:`FlowEngine.min_cut`, which accumulates the counters the
experiments (and the regression tests) care about.

Stats-key glossary
------------------
This module is the **canonical definition** of the flow-engine counters.
They appear, as deltas or lifetime totals, in ``DDSResult.stats``,
:meth:`DDSSession.cache_stats() <repro.session.DDSSession.cache_stats>`,
and the benchmark tables; the cache-level ``network_cache_*`` keys are
defined in :mod:`repro.core.network_cache`.

``flow_calls``
    Number of max-flow/min-cut computations executed.  Always equals
    ``warm_starts_used + cold_starts``.
``networks_built``
    Number of decision networks constructed from scratch (with the retune
    path this is at most one per fixed-ratio search, not one per
    binary-search guess).
``networks_reused``
    Number of fixed-ratio searches served a cached network (see
    :mod:`repro.core.network_cache`) instead of building one.
``arcs_pushed``
    Total per-arc residual updates across all solver runs — a
    machine-independent proxy for flow work, and the quantity the E6 smoke
    gate pins when asserting that warm starts do strictly less work.
``warm_starts_used``
    Min-cut computations that continued from the feasible flow left by the
    previous solve (``warm_start=True`` through a warm-capable solver)
    instead of starting from zero flow.
``cold_starts``
    Min-cut computations that started from zero flow — either because warm
    starting was disabled, because the network was freshly built, or
    because the solver fell back (see ``warm_start_fallbacks``).
``warm_start_fallbacks``
    Times a warm start was requested but the solver does not support it
    (e.g. ``edmonds-karp``); the run proceeded cold and the engine recorded
    why in ``warm_start_fallback_reason``.
``height_reuses``
    Warm push–relabel solves that adopted (and repaired) the height labels
    stashed by the previous solve on the same network instead of
    re-deriving the labelling from zero (see
    :meth:`~repro.flow.network.FlowNetwork.stashed_heights`).  Always 0 for
    solvers without height labels (``dinic``, ``edmonds-karp``).
``backend_selections``
    Min-cut computations for which the ``"auto"`` policy chose the backend
    per network (vectorised ``numpy-push-relabel`` at or above the arc
    threshold, ``dinic`` below — see
    :func:`repro.flow.registry.resolve_auto_solver`) or per *batch* (the
    aggregate rule of :func:`repro.flow.registry.resolve_auto_solver_batch`;
    every member of a batched solve counts once).  Always 0 for engines
    configured with a concrete solver name; the per-backend breakdown is
    exposed as :attr:`FlowEngine.auto_backend_choices` (surfaced by
    :meth:`DDSSession.cache_stats() <repro.session.DDSSession.cache_stats>`
    as ``auto_backends``).
``batched_solves``
    Block-diagonal batched solves executed through :meth:`FlowEngine.min_cut_batch`
    (one per *stacked* solver run, however many members it carried; the
    members themselves count under ``flow_calls``).  Always 0 for engines
    configured with a concrete solver name — only the ``"auto"`` policy
    batches.
``small_vector_solves``
    Min-cut computations a *forced* ``numpy-push-relabel`` engine ran on a
    network below the ``auto`` arc threshold — the small-workload regime
    where the vectorised backend is known to lose to ``dinic``
    (``BENCH_flow.json``, small workloads).  The session layer surfaces a
    once-per-session ``backend_mismatch`` advisory when this counter moves;
    the ``"auto"`` policy never increments it (it batches or falls back to
    ``dinic`` instead).
``deadline_hits``
    Min-cut computations cancelled (or refused before starting) by an
    expired :class:`repro.runtime.Deadline` armed on the engine.  Always 0
    when no deadline is configured — the no-deadline fast path is a single
    ``is None`` test per phase, which is what the bench-trajectory
    checkpoint-overhead gate pins below 2%.

A :class:`~repro.session.DDSSession` keeps one engine per solver for its
whole lifetime, so the counters are *cumulative across queries*; algorithms
that need per-run numbers take a :meth:`snapshot` at entry and report
:meth:`stats_since` that snapshot in ``DDSResult.stats``.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import DeadlineExceeded, FlowError
from repro.flow.network import FlowNetwork
from repro.flow.registry import (
    AUTO_ARC_THRESHOLD,
    AUTO_SOLVER,
    DEFAULT_SOLVER,
    VECTOR_SOLVER,
    batch_eligible,
    get_solver_class,
    resolve_auto_solver,
    resolve_auto_solver_batch,
)

#: Counter attribute names, in the order used by :meth:`FlowEngine.snapshot`.
_COUNTERS = (
    "flow_calls",
    "networks_built",
    "networks_reused",
    "arcs_pushed",
    "warm_starts_used",
    "cold_starts",
    "warm_start_fallbacks",
    "height_reuses",
    "backend_selections",
    "batched_solves",
    "small_vector_solves",
    "deadline_hits",
)


def zero_snapshot() -> tuple[int, ...]:
    """The snapshot of a freshly constructed engine (all counters zero)."""
    return (0,) * len(_COUNTERS)


class FlowEngine:
    """Pluggable min-cut executor with per-run instrumentation."""

    __slots__ = (
        "solver_name",
        "solver_class",
        "warm_start_fallback_reason",
        "auto_backend_choices",
        "deadline",
    ) + _COUNTERS

    def __init__(self, flow_solver: str = DEFAULT_SOLVER) -> None:
        self.solver_name = flow_solver
        # ``"auto"`` is a per-network selection policy, not a class: the
        # concrete backend is resolved inside min_cut() from the network's
        # arc count (and counted as ``backend_selections``).
        self.solver_class = None if flow_solver == AUTO_SOLVER else get_solver_class(flow_solver)
        self.warm_start_fallback_reason: str | None = None
        #: Lifetime ``{backend name: times chosen}`` of the auto policy
        #: (empty for engines configured with a concrete solver).
        self.auto_backend_choices: dict[str, int] = {}
        #: The active :class:`repro.runtime.Deadline`, or ``None``.  Armed by
        #: the session layer for the duration of one query; every min-cut
        #: checks it before starting and hands it to the solver for
        #: phase-boundary cancellation checkpoints.
        self.deadline = None
        for name in _COUNTERS:
            setattr(self, name, 0)

    @property
    def warm_capable(self) -> bool:
        """Whether the configured solver can continue from a nonzero flow.

        Both backends the ``"auto"`` policy can pick (``dinic`` and the
        vectorised push–relabel) support warm starts, so an auto engine is
        warm-capable by construction.
        """
        if self.solver_class is None:
            return True
        return bool(getattr(self.solver_class, "supports_warm_start", False))

    def _resolve_class(self, network: FlowNetwork):
        """The concrete solver class for ``network`` (auto policy applied)."""
        if self.solver_class is not None:
            return self.solver_class
        name, solver_class = resolve_auto_solver(network.num_arcs)
        self.backend_selections += 1
        self.auto_backend_choices[name] = self.auto_backend_choices.get(name, 0) + 1
        return solver_class

    def note_network_built(self) -> None:
        """Record that a decision network was constructed from scratch."""
        self.networks_built += 1

    def note_network_reused(self) -> None:
        """Record that a fixed-ratio search reused a cached decision network."""
        self.networks_reused += 1

    def note_warm_fallback(self) -> None:
        """Record that a requested warm start fell back to cold solves (and why)."""
        self.warm_start_fallbacks += 1
        self.warm_start_fallback_reason = (
            f"solver {self.solver_name!r} does not support warm starts"
        )

    def min_cut(
        self, network: FlowNetwork, source: int, sink: int, warm_start: bool = False
    ) -> tuple[float, Any]:
        """Run one max-flow/min-cut and return ``(cut_value, solver)``.

        With ``warm_start=True`` the network's residual state must be a
        valid feasible flow (e.g. left by a warm
        :meth:`~repro.core.flow_network.DecisionNetwork.retune`) and the
        solver continues from it; if the solver cannot (see the glossary's
        ``warm_start_fallbacks``), the engine resets the network and solves
        cold — same answer, more work.  The returned solver instance exposes
        ``min_cut_source_side()`` for cut extraction; the engine's counters
        are already updated.
        """
        if self.deadline is not None and self.deadline.expired:
            # Refuse before touching the network: its residual state stays
            # exactly as the caller left it, ready for a later warm retune.
            self.deadline_hits += 1
            self.deadline.check("engine.min_cut admission")
        if warm_start and not self.warm_capable:
            self.note_warm_fallback()
            network.reset_flow()
            warm_start = False
        solver_class = self._resolve_class(network)
        if warm_start:
            solver = solver_class(network, source, sink, warm_start=True)
            self.warm_starts_used += 1
        else:
            solver = solver_class(network, source, sink)
            self.cold_starts += 1
        if self.deadline is not None:
            solver.deadline = self.deadline
        try:
            value = solver.max_flow()
        except DeadlineExceeded:
            # The solver aborted at a phase boundary without committing its
            # in-progress snapshot; the partial work is still accounted for
            # (keeping flow_calls == warm_starts_used + cold_starts).
            self.deadline_hits += 1
            self.flow_calls += 1
            self.arcs_pushed += getattr(solver, "arcs_pushed", 0)
            raise
        self.flow_calls += 1
        self.arcs_pushed += getattr(solver, "arcs_pushed", 0)
        if getattr(solver, "height_reused", False):
            self.height_reuses += 1
        if (
            self.solver_name == VECTOR_SOLVER
            and network.num_arcs < AUTO_ARC_THRESHOLD
        ):
            # A forced vectorised solve under the auto threshold: the known
            # small-workload regression regime (see the glossary and the
            # session layer's ``backend_mismatch`` advisory).
            self.small_vector_solves += 1
        return value, solver

    def supports_batching(self, arc_counts: list[int]) -> bool:
        """Whether these networks should be solved as one block-diagonal batch.

        True only for ``"auto"`` engines (an explicit solver choice is
        honoured verbatim, never widened into a batch) whose family passes
        the registry's aggregate gate: every member below the arc threshold,
        the aggregate at or above it, and the vectorised backend available.
        """
        return self.solver_class is None and batch_eligible(arc_counts)

    def min_cut_batch(
        self,
        batch: Any,
        active: list[int],
        warm_flags: list[bool],
    ) -> list[tuple[float, list[int], int]]:
        """One block-diagonal solve of ``batch``'s active members.

        ``batch`` is a :class:`~repro.flow.batch.BatchedFlowNetwork`;
        ``active`` lists the member indices to solve this round (the rest
        stay masked) and ``warm_flags`` says, per active member, whether its
        residual state should be counted as a warm continuation — mirroring
        exactly what a sequential solve of that member would have recorded.
        Returns, per active member, ``(flow_value, member-local cut source
        side, arcs pushed inside that block)``.

        Counting policy: each active member counts as one ``flow_calls`` /
        ``backend_selections`` / warm-or-cold start (the batched path must
        be counter-compatible with the sequential path it replaces), the
        stacked run itself counts once under ``batched_solves``, and the
        backend chosen by the aggregate policy is charged once per member in
        :attr:`auto_backend_choices`.  The policy is resolved on the *whole
        family's* aggregate (the engagement decision), not the active
        subset, so a batch stays on the vectorised backend as its members
        converge and drop out.
        """
        if self.solver_class is not None:
            raise FlowError(
                "batched solves are only available under the 'auto' policy; "
                f"engine is configured with {self.solver_name!r}"
            )
        if not active:
            return []
        name, solver_class = resolve_auto_solver_batch(batch.member_arc_counts)
        if name != VECTOR_SOLVER:
            raise FlowError(
                "batched solve requires the vectorised backend for the aggregate "
                "arc count; gate with supports_batching() first"
            )
        if self.deadline is not None and self.deadline.expired:
            self.deadline_hits += 1
            self.deadline.check("engine.min_cut_batch admission")
        import numpy

        batch.gather(active)
        if any(warm_flags):
            solver = solver_class(
                batch.network, batch.source, batch.sink, warm_start=True
            )
        else:
            solver = solver_class(batch.network, batch.source, batch.sink)
        solver.arc_owner = batch.arc_owner
        solver.owner_pushes = numpy.zeros(batch.num_members, dtype=numpy.int64)
        if self.deadline is not None:
            solver.deadline = self.deadline
        try:
            solver.max_flow()
        except DeadlineExceeded:
            # Cancellation skips the scatter: the *member* networks keep the
            # residual flows they held at gather time (the stacked scratch
            # buffers are rebuilt by the next gather), so every member still
            # retunes bit-identically.
            self.deadline_hits += 1
            raise
        batch.scatter(active)

        members = len(active)
        warm = sum(1 for flag in warm_flags if flag)
        self.flow_calls += members
        self.warm_starts_used += warm
        self.cold_starts += members - warm
        self.backend_selections += members
        self.auto_backend_choices[name] = (
            self.auto_backend_choices.get(name, 0) + members
        )
        self.arcs_pushed += solver.arcs_pushed
        if solver.height_reused:
            self.height_reuses += members
        self.batched_solves += 1

        source_side = solver.min_cut_source_side()
        return [
            (
                batch.block_flow_value(index),
                batch.block_cut(source_side, index),
                int(solver.owner_pushes[index]),
            )
            for index in active
        ]

    def snapshot(self) -> tuple[int, ...]:
        """Opaque counter snapshot for later :meth:`stats_since` deltas."""
        return tuple(getattr(self, name) for name in _COUNTERS)

    def stats_since(self, snapshot: tuple[int, ...]) -> dict[str, Any]:
        """Per-run instrumentation delta since ``snapshot`` (plus the solver name)."""
        stats: dict[str, Any] = {"flow_solver": self.solver_name}
        for name, start in zip(_COUNTERS, snapshot):
            stats[name] = getattr(self, name) - start
        if stats.get("warm_start_fallbacks", 0) > 0 and self.warm_start_fallback_reason:
            stats["warm_start_fallback_reason"] = self.warm_start_fallback_reason
        return stats

    def stats(self) -> dict[str, Any]:
        """Lifetime instrumentation snapshot (cumulative across queries)."""
        return self.stats_since(zero_snapshot())
