"""The :class:`FlowEngine` — solver selection plus run-wide instrumentation.

Every exact DDS run owns (or borrows) one engine.  The engine resolves the
solver name through the registry once, then every min-cut in the run goes
through :meth:`FlowEngine.min_cut`, which accumulates the counters the
experiments (and the regression tests) care about:

* ``flow_calls`` — number of max-flow computations,
* ``networks_built`` — number of decision networks constructed from scratch
  (with the retune path this is at most one per fixed-ratio search, not one
  per binary-search guess),
* ``networks_reused`` — number of fixed-ratio searches served a cached
  network (see :mod:`repro.core.network_cache`) instead of building one,
* ``arcs_pushed`` — total per-arc residual updates across all solver runs,
  a machine-independent proxy for flow work.

A :class:`~repro.session.DDSSession` keeps one engine per solver for its
whole lifetime, so the counters are *cumulative across queries*; algorithms
that need per-run numbers take a :meth:`snapshot` at entry and report
:meth:`stats_since` that snapshot in ``DDSResult.stats``.
"""

from __future__ import annotations

from typing import Any

from repro.flow.network import FlowNetwork
from repro.flow.registry import DEFAULT_SOLVER, get_solver_class

#: Counter attribute names, in the order used by :meth:`FlowEngine.snapshot`.
_COUNTERS = ("flow_calls", "networks_built", "networks_reused", "arcs_pushed")


class FlowEngine:
    """Pluggable min-cut executor with per-run instrumentation."""

    __slots__ = (
        "solver_name",
        "solver_class",
        "flow_calls",
        "networks_built",
        "networks_reused",
        "arcs_pushed",
    )

    def __init__(self, flow_solver: str = DEFAULT_SOLVER) -> None:
        self.solver_name = flow_solver
        self.solver_class = get_solver_class(flow_solver)
        self.flow_calls = 0
        self.networks_built = 0
        self.networks_reused = 0
        self.arcs_pushed = 0

    def note_network_built(self) -> None:
        """Record that a decision network was constructed from scratch."""
        self.networks_built += 1

    def note_network_reused(self) -> None:
        """Record that a fixed-ratio search reused a cached decision network."""
        self.networks_reused += 1

    def min_cut(self, network: FlowNetwork, source: int, sink: int) -> tuple[float, Any]:
        """Run one max-flow/min-cut and return ``(cut_value, solver)``.

        The returned solver instance exposes ``min_cut_source_side()`` for
        cut extraction; the engine's counters are already updated.
        """
        solver = self.solver_class(network, source, sink)
        value = solver.max_flow()
        self.flow_calls += 1
        self.arcs_pushed += getattr(solver, "arcs_pushed", 0)
        return value, solver

    def snapshot(self) -> tuple[int, ...]:
        """Opaque counter snapshot for later :meth:`stats_since` deltas."""
        return tuple(getattr(self, name) for name in _COUNTERS)

    def stats_since(self, snapshot: tuple[int, ...]) -> dict[str, Any]:
        """Per-run instrumentation delta since ``snapshot`` (plus the solver name)."""
        stats: dict[str, Any] = {"flow_solver": self.solver_name}
        for name, start in zip(_COUNTERS, snapshot):
            stats[name] = getattr(self, name) - start
        return stats

    def stats(self) -> dict[str, Any]:
        """Lifetime instrumentation snapshot (cumulative across queries)."""
        return self.stats_since((0,) * len(_COUNTERS))
