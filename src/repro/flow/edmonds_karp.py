"""Edmonds–Karp maximum flow (reference implementation).

This solver exists purely as an independent implementation against which
Dinic and push–relabel are cross-checked in the unit and property tests.  It
is the textbook BFS-augmenting-path algorithm; no attempt is made to
optimise it, but it satisfies the same solver protocol (``max_flow()`` /
``min_cut_source_side()`` / ``arcs_pushed``) so it can be selected through
the registry (``flow_solver="edmonds-karp"``) like the serious solvers.
"""

from __future__ import annotations

from array import array
from collections import deque

from repro.exceptions import FlowError
from repro.flow.network import EPSILON, FlowNetwork


class EdmondsKarpSolver:
    """Stateful Edmonds–Karp solver bound to one :class:`FlowNetwork`.

    The solver deliberately does **not** support warm starts
    (``supports_warm_start = False``): its value accounting assumes it
    pushed every unit of flow itself, and teaching the reference
    implementation to start from a nonzero flow would compromise its role
    as the simplest possible cross-check.  When a warm start is requested
    through the :class:`~repro.flow.engine.FlowEngine`, the engine resets
    the network and runs this solver cold, recording the fallback in its
    ``cold_starts`` / ``warm_start_fallbacks`` counters.
    """

    name = "edmonds-karp"

    #: See the class docstring — warm starts fall back to cold runs.
    supports_warm_start = False

    def __init__(self, network: FlowNetwork, source: int, sink: int) -> None:
        if source == sink:
            raise FlowError("source and sink must differ")
        network._check_node(source)
        network._check_node(sink)
        self.network = network
        self.source = source
        self.sink = sink
        self.arcs_pushed = 0

    def max_flow(self) -> float:
        """Compute the maximum ``source``–``sink`` flow with Edmonds–Karp."""
        network = self.network
        heads, targets = network.solver_views()
        caps_arr = network.arc_capacities
        caps = caps_arr.tolist()
        source, sink = self.source, self.sink
        total = 0.0

        while True:
            # BFS to find the shortest augmenting path; remember the arc used
            # to reach every node so the path can be reconstructed.
            parent_arc = [-1] * network.num_nodes
            parent_arc[source] = -2
            queue = deque([source])
            found = False
            while queue and not found:
                node = queue.popleft()
                for arc_index in heads[node]:
                    target = targets[arc_index]
                    if parent_arc[target] == -1 and caps[arc_index] > EPSILON:
                        parent_arc[target] = arc_index
                        if target == sink:
                            found = True
                            break
                        queue.append(target)
            if not found:
                caps_arr[:] = array("d", caps)
                return total

            # Compute the bottleneck along the path and push it.
            bottleneck = float("inf")
            node = sink
            while node != source:
                arc_index = parent_arc[node]
                bottleneck = min(bottleneck, caps[arc_index])
                node = targets[arc_index ^ 1]
            node = sink
            while node != source:
                arc_index = parent_arc[node]
                caps[arc_index] -= bottleneck
                caps[arc_index ^ 1] += bottleneck
                self.arcs_pushed += 1
                node = targets[arc_index ^ 1]
            total += bottleneck

    def min_cut_source_side(self) -> list[int]:
        """Source side of a minimum cut (valid after :meth:`max_flow`)."""
        reachable = self.network.residual_reachable(self.source)
        return [node for node, flag in enumerate(reachable) if flag]


def edmonds_karp_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Convenience wrapper: run Edmonds–Karp on ``network`` and return the flow value."""
    return EdmondsKarpSolver(network, source, sink).max_flow()
