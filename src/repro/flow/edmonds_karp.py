"""Edmonds–Karp maximum flow (reference implementation).

This solver exists purely as an independent implementation against which
Dinic is cross-checked in the unit and property tests.  It is the textbook
BFS-augmenting-path algorithm; no attempt is made to optimise it.
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import FlowError
from repro.flow.network import EPSILON, FlowNetwork


def edmonds_karp_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Compute the maximum ``source``–``sink`` flow with Edmonds–Karp."""
    if source == sink:
        raise FlowError("source and sink must differ")
    network._check_node(source)
    network._check_node(sink)

    heads = network.heads
    caps = network.arc_capacities
    targets = network.arc_targets
    total = 0.0

    while True:
        # BFS to find the shortest augmenting path; remember the arc used to
        # reach every node so the path can be reconstructed.
        parent_arc = [-1] * network.num_nodes
        parent_arc[source] = -2
        queue = deque([source])
        found = False
        while queue and not found:
            node = queue.popleft()
            for arc_index in heads[node]:
                target = targets[arc_index]
                if parent_arc[target] == -1 and caps[arc_index] > EPSILON:
                    parent_arc[target] = arc_index
                    if target == sink:
                        found = True
                        break
                    queue.append(target)
        if not found:
            return total

        # Compute the bottleneck along the path and push it.
        bottleneck = float("inf")
        node = sink
        while node != source:
            arc_index = parent_arc[node]
            bottleneck = min(bottleneck, caps[arc_index])
            node = targets[arc_index ^ 1]
        node = sink
        while node != source:
            arc_index = parent_arc[node]
            caps[arc_index] -= bottleneck
            caps[arc_index ^ 1] += bottleneck
            node = targets[arc_index ^ 1]
        total += bottleneck
