"""Named registry of max-flow solver implementations.

The exact DDS algorithms accept a ``flow_solver=`` name (and the CLI a
``--flow-solver`` flag) instead of hard-coding a solver class; this module
is the single source of truth mapping those names to classes.

A solver class must satisfy the protocol shared by the built-ins:

* ``Solver(network, source, sink)`` binds to one
  :class:`~repro.flow.network.FlowNetwork`;
* ``max_flow() -> float`` runs to completion, mutating the network's
  residual capacities;
* ``min_cut_source_side() -> list[int]`` returns the source side of a
  minimum cut (valid after ``max_flow``);
* an ``arcs_pushed`` integer attribute counting per-arc residual updates
  (used by the :class:`~repro.flow.engine.FlowEngine` instrumentation).

Optionally a solver may set a class attribute ``supports_warm_start = True``
and accept ``Solver(network, source, sink, warm_start=True)``: it is then
expected to treat the network's residual state as a valid feasible flow and
continue from it, still returning the *total* max-flow value.  Solvers
without the attribute (or with it ``False``) are always constructed with the
three positional arguments and run cold — the engine resets the network and
records a ``warm_start_fallbacks`` count when a warm start was requested
(see the glossary in :mod:`repro.flow.engine`).

Third-party backends (e.g. a Rust-accelerated solver) plug in via
:func:`register_solver` without touching any algorithm code::

    from repro.flow.registry import register_solver
    register_solver("my-solver", MySolverClass)
    dc_exact(graph, flow_solver="my-solver")

The built-in vectorised backend (:mod:`repro.flow.numpy_backend`) is
registered the same way, but **import-guarded**: when numpy is not
importable the registry simply does not list ``numpy-push-relabel`` and
everything else keeps working on the pure-python solvers.

Besides concrete solver names, configs and the CLI accept the *policy* name
:data:`AUTO_SOLVER` (``"auto"``): the engine then picks a backend per
network — the vectorised backend for networks with at least
:data:`AUTO_ARC_THRESHOLD` stored arcs (where bulk array ops amortise their
per-call overhead), ``dinic`` below that, and ``dinic`` everywhere when
numpy is missing.  When a whole *family* of closely related networks is
solved together, the policy judges the family's **aggregate** arc count
instead (:func:`resolve_auto_solver_batch`): many sub-threshold networks
stacked block-diagonally fill the vector width that none of them fills
alone (:func:`batch_eligible`, :class:`~repro.flow.batch.BatchedFlowNetwork`).
``"auto"`` is deliberately not a registry entry: it names a selection rule,
not a solver class (see :func:`resolve_auto_solver` and the
``backend_selections`` counter in :mod:`repro.flow.engine`).
"""

from __future__ import annotations

from typing import Type

from repro.exceptions import FlowError
from repro.flow.dinic import DinicSolver
from repro.flow.edmonds_karp import EdmondsKarpSolver
from repro.flow.push_relabel import PushRelabelSolver

try:  # the vectorised backend only exists where numpy does
    from repro.flow.numpy_backend import NumpyPushRelabelSolver
except ImportError:  # pragma: no cover - exercised by the no-numpy CI lane
    NumpyPushRelabelSolver = None  # type: ignore[assignment]

#: The default solver used when no name is given.
DEFAULT_SOLVER = "dinic"

#: Registry name of the vectorised numpy backend (absent without numpy).
VECTOR_SOLVER = "numpy-push-relabel"

#: Policy name accepted by configs/CLI: per-network backend selection.
AUTO_SOLVER = "auto"

#: Networks with at least this many stored arcs are routed to the vectorised
#: backend by the ``"auto"`` policy; smaller ones run ``dinic``, whose
#: per-arc Python loop beats numpy's per-call overhead at that scale.  The
#: value was calibrated with ``tools/bench_trajectory.py`` (see
#: ``BENCH_flow.json``).
AUTO_ARC_THRESHOLD = 4096

_SOLVERS: dict[str, Type] = {
    "dinic": DinicSolver,
    "push-relabel": PushRelabelSolver,
    "edmonds-karp": EdmondsKarpSolver,
}
if NumpyPushRelabelSolver is not None:
    _SOLVERS[VECTOR_SOLVER] = NumpyPushRelabelSolver


def available_flow_solvers() -> list[str]:
    """Registered solver names, sorted."""
    return sorted(_SOLVERS)


def has_vector_backend() -> bool:
    """Whether the numpy-vectorised backend is registered (numpy importable)."""
    return VECTOR_SOLVER in _SOLVERS


def flow_solver_choices() -> list[str]:
    """Every name a ``flow_solver=`` knob accepts: registered solvers + ``"auto"``."""
    return sorted([*_SOLVERS, AUTO_SOLVER])


def validate_solver_choice(name: str) -> None:
    """Validate a ``flow_solver=`` value eagerly (``"auto"`` included).

    Raises :class:`~repro.exceptions.FlowError` for unknown names, like
    :func:`get_solver_class`, but additionally accepts the ``"auto"``
    policy — which resolves to a concrete class per network, not here.
    """
    if name != AUTO_SOLVER:
        get_solver_class(name)


def resolve_auto_solver(num_arcs: int) -> tuple[str, Type]:
    """The ``"auto"`` policy: pick ``(name, class)`` for a network of ``num_arcs``.

    Vectorised backend at or above :data:`AUTO_ARC_THRESHOLD` stored arcs
    when it is registered; ``dinic`` otherwise (small networks, or numpy
    missing).
    """
    if num_arcs >= AUTO_ARC_THRESHOLD and VECTOR_SOLVER in _SOLVERS:
        return VECTOR_SOLVER, _SOLVERS[VECTOR_SOLVER]
    return DEFAULT_SOLVER, _SOLVERS[DEFAULT_SOLVER]


def resolve_auto_solver_batch(arc_counts: list[int]) -> tuple[str, Type]:
    """The ``"auto"`` policy over a *batch*: resolve on aggregate arcs.

    This is the crossover fix for block-diagonal batched solves: a family
    of networks that are each below :data:`AUTO_ARC_THRESHOLD` — and would
    therefore each resolve to ``dinic`` on their own — fills the vectorised
    backend's vector width once they are stacked, so the policy must judge
    the *sum* of their stored arcs, not each member.  A batch whose
    aggregate still sits under the threshold (or an empty batch) resolves
    exactly like a single network of that size.
    """
    return resolve_auto_solver(sum(arc_counts))


def batch_eligible(arc_counts: list[int]) -> bool:
    """Whether a family of networks should be solved block-diagonally.

    True when stacking pays: at least two members, every member *below*
    :data:`AUTO_ARC_THRESHOLD` (an at-or-above-threshold member already
    fills the vector width alone and resolves to the vectorised backend
    per network), the aggregate at or above the threshold, and the
    vectorised backend registered.  This gate only ever widens the
    ``"auto"`` policy — explicit solver selections are never batched.
    """
    return (
        len(arc_counts) >= 2
        and VECTOR_SOLVER in _SOLVERS
        and all(count < AUTO_ARC_THRESHOLD for count in arc_counts)
        and sum(arc_counts) >= AUTO_ARC_THRESHOLD
    )


def get_solver_class(name: str = DEFAULT_SOLVER) -> Type:
    """Look up a solver class by registry name."""
    solver = _SOLVERS.get(name)
    if solver is None:
        raise FlowError(
            f"unknown flow solver {name!r}; available: {', '.join(available_flow_solvers())}"
        )
    return solver


def register_solver(name: str, solver_class: Type) -> None:
    """Register (or replace) a solver class under ``name``.

    The class is validated lightly: it must be constructible with
    ``(network, source, sink)`` and expose ``max_flow`` and
    ``min_cut_source_side`` callables.
    """
    if not name:
        raise FlowError("solver name must be non-empty")
    for required in ("max_flow", "min_cut_source_side"):
        if not callable(getattr(solver_class, required, None)):
            raise FlowError(f"solver class {solver_class!r} lacks a callable {required}()")
    _SOLVERS[name] = solver_class


def unregister_solver(name: str) -> None:
    """Remove a registered solver (built-ins included — use with care)."""
    if name not in _SOLVERS:
        raise FlowError(f"unknown flow solver {name!r}")
    del _SOLVERS[name]
