"""Named registry of max-flow solver implementations.

The exact DDS algorithms accept a ``flow_solver=`` name (and the CLI a
``--flow-solver`` flag) instead of hard-coding a solver class; this module
is the single source of truth mapping those names to classes.

A solver class must satisfy the protocol shared by the built-ins:

* ``Solver(network, source, sink)`` binds to one
  :class:`~repro.flow.network.FlowNetwork`;
* ``max_flow() -> float`` runs to completion, mutating the network's
  residual capacities;
* ``min_cut_source_side() -> list[int]`` returns the source side of a
  minimum cut (valid after ``max_flow``);
* an ``arcs_pushed`` integer attribute counting per-arc residual updates
  (used by the :class:`~repro.flow.engine.FlowEngine` instrumentation).

Optionally a solver may set a class attribute ``supports_warm_start = True``
and accept ``Solver(network, source, sink, warm_start=True)``: it is then
expected to treat the network's residual state as a valid feasible flow and
continue from it, still returning the *total* max-flow value.  Solvers
without the attribute (or with it ``False``) are always constructed with the
three positional arguments and run cold — the engine resets the network and
records a ``warm_start_fallbacks`` count when a warm start was requested
(see the glossary in :mod:`repro.flow.engine`).

Third-party backends (e.g. a numpy- or Rust-accelerated solver) plug in via
:func:`register_solver` without touching any algorithm code::

    from repro.flow.registry import register_solver
    register_solver("my-solver", MySolverClass)
    dc_exact(graph, flow_solver="my-solver")
"""

from __future__ import annotations

from typing import Type

from repro.exceptions import FlowError
from repro.flow.dinic import DinicSolver
from repro.flow.edmonds_karp import EdmondsKarpSolver
from repro.flow.push_relabel import PushRelabelSolver

#: The default solver used when no name is given.
DEFAULT_SOLVER = "dinic"

_SOLVERS: dict[str, Type] = {
    "dinic": DinicSolver,
    "push-relabel": PushRelabelSolver,
    "edmonds-karp": EdmondsKarpSolver,
}


def available_flow_solvers() -> list[str]:
    """Registered solver names, sorted."""
    return sorted(_SOLVERS)


def get_solver_class(name: str = DEFAULT_SOLVER) -> Type:
    """Look up a solver class by registry name."""
    solver = _SOLVERS.get(name)
    if solver is None:
        raise FlowError(
            f"unknown flow solver {name!r}; available: {', '.join(available_flow_solvers())}"
        )
    return solver


def register_solver(name: str, solver_class: Type) -> None:
    """Register (or replace) a solver class under ``name``.

    The class is validated lightly: it must be constructible with
    ``(network, source, sink)`` and expose ``max_flow`` and
    ``min_cut_source_side`` callables.
    """
    if not name:
        raise FlowError("solver name must be non-empty")
    for required in ("max_flow", "min_cut_source_side"):
        if not callable(getattr(solver_class, required, None)):
            raise FlowError(f"solver class {solver_class!r} lacks a callable {required}()")
    _SOLVERS[name] = solver_class


def unregister_solver(name: str) -> None:
    """Remove a registered solver (built-ins included — use with care)."""
    if name not in _SOLVERS:
        raise FlowError(f"unknown flow solver {name!r}")
    del _SOLVERS[name]
