"""Vectorised push-relabel max flow over zero-copy numpy views of the CSR buffers.

This is the registry's long-reserved "numpy backend slot" filled in: a
preflow-push solver whose *entire* mutable state — residual capacities, arc
targets/tails, CSR segment boundaries — lives in numpy arrays created with
``numpy.frombuffer`` over the network's flat ``array('d')``/``array('q')``
storage (:meth:`~repro.flow.network.FlowNetwork.numpy_csr`).  No copy is ever
taken of the capacities: the solver's writes land directly in the network's
residual state, so there is no snapshot/write-back step at all (the scalar
solvers pay one O(m) list snapshot and one O(m) write-back per solve).

Execution model
---------------
The scalar solvers run one interpreted Python iteration per *arc*; this
backend runs one per *phase*.  Each superstep is a handful of O(m) bulk
array operations (the Goldberg–Tarjan parallel "pulse" formulation):

1. **Bulk push (saturation sweep)** — compute the admissible-arc mask
   (``residual & active(tail) & height(tail) == height(head) + 1``) over
   every arc at once, then discharge every active node along *all* of its
   admissible arcs simultaneously: a per-segment exclusive prefix sum of
   the admissible capacities, clipped against each node's excess, yields
   exactly the greedy sequential fill (arc ``i`` of a node carries
   ``clip(excess - prefix_before_i, 0, cap_i)``) for every node in one
   O(m) pass.  An arc and its residual twin can never both be admissible
   (their height conditions are mutually exclusive), so the fancy-indexed
   capacity updates are race-free, and only the scatter-add into receiving
   nodes' excess needs ``numpy.add.at``.  Pushes read a *fixed* height
   labelling, and a push never invalidates validity (it creates a residual
   twin going downhill by one), so the bulk sweep is equivalent to
   executing its pushes in any sequential order.
2. **Bulk relabel** — every still-active node with no admissible arc lifts to
   ``1 + min(height(head))`` over its residual arcs, computed for all nodes
   at once with ``numpy.minimum.reduceat`` over the CSR segments.
   Simultaneous relabels are sound because capacities are fixed during the
   phase: for a residual arc ``(u, v)`` the new ``h'(u) = 1 + min <= 1 +
   h(v) <= 1 + h'(v)`` (relabels only raise labels), so validity is
   preserved — the textbook argument, applied in bulk.

Two classic heuristics, both absent from the pure-python
:class:`~repro.flow.push_relabel.PushRelabelSolver`, keep the superstep count
low:

* **Global relabeling** — every :data:`GLOBAL_RELABEL_INTERVAL` supersteps
  (and once at the start of every cold solve) the labels are reset to exact
  residual BFS distances (``d(v, t)``, else ``n + d(v, s)``), computed as a
  frontier-per-iteration vectorised BFS.  The new labels are merged with
  ``numpy.maximum`` — the elementwise max of two valid labellings is itself
  valid, and labels stay monotone.
* **Gap heuristic** — after each relabel phase a ``numpy.bincount`` of the
  labels finds empty levels below ``n``; every node stranded above the
  lowest gap is lifted past ``n`` at once (it can no longer reach the sink).

Warm starts compose with the machinery from PRs 3–4 exactly like the scalar
push–relabel: the network's residual state is credited as a feasible flow
(sink excess seeded with its value), and stashed height labels from the
previous solve on the same network (:meth:`FlowNetwork.stash_heights
<repro.flow.network.FlowNetwork.stash_heights>`) are adopted and *repaired*
by a vectorised lower-only fixpoint pass (:meth:`_repair_heights`) instead
of the scalar worklist — same fixpoint, bulk arithmetic.

Answers are bit-identical to the scalar solvers' by construction:
``min_cut_source_side`` returns the canonical cut (nodes residual-reachable
from the source), which is invariant across maximum flows, computed here as
a vectorised BFS using the same :data:`~repro.flow.network.EPSILON`
threshold the scalar walk uses.

This module imports numpy at module scope **on purpose**: the registry
import-guards it, so environments without numpy simply do not list the
``numpy-push-relabel`` backend (and the ``auto`` policy falls back to
``dinic``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DeadlineExceeded, FlowError
from repro.flow.network import EPSILON, FlowNetwork

#: Supersteps between two global relabels.  Decision networks are shallow
#: (source → out-copies → in-copies → sink), so exact distance labels are
#: cheap to recompute and pay for themselves quickly; the interval mainly
#: bounds how long the excess-return phase can wander before being handed
#: exact route-to-source labels.
GLOBAL_RELABEL_INTERVAL = 16

#: Additionally trigger a global relabel once this fraction of the nodes has
#: been relabelled since the last one (the hi_pr-style work trigger).  Bulk
#: relabel phases lift whole node classes one level per superstep; exact BFS
#: labels replace that climb with a single pass, which is what keeps the
#: superstep count per solve small.
GLOBAL_RELABEL_NODE_FRACTION = 0.4


class NumpyPushRelabelSolver:
    """Bulk-synchronous push–relabel bound to one :class:`FlowNetwork`.

    Satisfies the registry's solver protocol (``max_flow`` /
    ``min_cut_source_side`` / ``arcs_pushed``) and the warm-start extension:
    with ``warm_start=True`` the network's residual state is continued from
    as a feasible flow, and stashed height labels are adopted after a
    vectorised validity repair (reported as ``height_reused``, surfacing as
    the engine counter ``height_reuses``).

    Unlike the scalar solvers this one mutates the network's capacities
    *in place through zero-copy views* — there is no snapshot to write
    back.  ``arcs_pushed`` counts individual arc pushes exactly like the
    scalar solvers (each selected arc in a bulk push counts once), so the
    engine glossary's meaning of the counter is preserved.
    """

    name = "numpy-push-relabel"

    #: Advertises to :class:`~repro.flow.engine.FlowEngine` that this solver
    #: can continue from a nonzero feasible flow (as an initial preflow).
    supports_warm_start = True

    #: Optional :class:`repro.runtime.Deadline`, attached by the engine.
    #: Checked once per superstep.  Because this backend writes *directly*
    #: into the network's residual capacities (zero-copy views, no
    #: write-back step to skip), arming a deadline makes :meth:`max_flow`
    #: take one O(m) capacity backup up front and restore it on
    #: cancellation — the only way a mid-phase preflow can be rolled back
    #: to the valid entry flow so a later warm retune stays bit-identical.
    #: Undeadlined solves take no backup and are unchanged.
    deadline = None

    def __init__(
        self, network: FlowNetwork, source: int, sink: int, warm_start: bool = False
    ) -> None:
        if source == sink:
            raise FlowError("source and sink must differ")
        network._check_node(source)
        network._check_node(sink)
        self.network = network
        self.source = source
        self.sink = sink
        self.warm_start = warm_start
        self.arcs_pushed = 0
        #: Optional per-arc owner labels for block-diagonal batched solves.
        #: When :class:`~repro.flow.batch.BatchedFlowNetwork` assigns these
        #: (an ``int64`` array over arc indices plus a zeroed per-owner
        #: accumulator) before :meth:`max_flow`, every counted push is also
        #: attributed to the owning block in ``owner_pushes`` — the split
        #: the engine reports per member network.
        self.arc_owner: np.ndarray | None = None
        self.owner_pushes: np.ndarray | None = None
        #: Whether this solve adopted the previous solve's height labels.
        self.height_reused = False
        #: Number of global-relabel passes this solve ran (instrumentation).
        self.global_relabels = 0
        # Views and position-space constants, bound during max_flow().
        self._caps: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._pos_arc: np.ndarray | None = None
        self._pos_tail: np.ndarray | None = None
        self._pos_head: np.ndarray | None = None
        self._seg_starts: np.ndarray | None = None
        self._empty_seg: np.ndarray | None = None
        self._pos_of_arc: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._starts: np.ndarray | None = None
        self._valid_segments = 0
        self._reduce_starts: np.ndarray | None = None
        # Final reachability mask (the cut certificate), cached by max_flow.
        self._seen: np.ndarray | None = None

    # ------------------------------------------------------------------
    def max_flow(self) -> float:
        """Run bulk-synchronous push–relabel to completion; return the flow value."""
        network = self.network
        n = network.num_nodes
        source, sink = self.source, self.sink
        starts, order, targets, caps, tails, _ = network.numpy_csr()
        m = caps.shape[0]
        if m == 0:
            return 0.0
        limit = 2 * n
        big = np.int64(2 * limit + 4)  # "unreachable" label, safely above any real one

        # Position space: arcs permuted into CSR order, so each node's arcs
        # occupy the contiguous slice starts[u]:starts[u+1] — the layout the
        # per-node segment reductions (reduceat) need.  The index is cached
        # on the network per topology, so repeated solves on a retuned
        # network pay nothing here.
        pos_arc = order
        pos_tail, pos_head, seg_starts, empty_seg, pos_of_arc, counts, valid_segments = (
            network.numpy_position_index()
        )
        self._caps, self._targets = caps, targets
        self._pos_arc, self._pos_tail, self._pos_head = pos_arc, pos_tail, pos_head
        self._seg_starts, self._empty_seg = seg_starts, empty_seg
        self._pos_of_arc, self._counts = pos_of_arc, counts
        self._starts = starts
        # True reduceat boundaries: trailing arc-less nodes must be excluded
        # rather than clipped, or the last non-empty segment is truncated.
        self._valid_segments = valid_segments
        self._reduce_starts = starts[:valid_segments]

        height = np.zeros(n, dtype=np.int64)
        excess = np.zeros(n, dtype=np.float64)

        if self.warm_start:
            # Credit the pre-existing feasible flow to the sink; the solve
            # below then only tops it up (same contract as the scalar warm
            # starts, see PushRelabelSolver).  Computed in bulk over the
            # source's CSR segment: forward arcs contribute the flow pushed
            # onto their twins, residual twins subtract theirs.
            src_lo, src_hi = int(starts[source]), int(starts[source + 1])
            src_all = order[src_lo:src_hi]
            src_odd = src_all & 1 == 1
            excess[sink] = float(
                caps[src_all[~src_odd] ^ 1].sum() - caps[src_all[src_odd]].sum()
            )
            stashed = network.stashed_heights(source, sink)
            if stashed is not None:
                np.clip(np.asarray(stashed, dtype=np.int64), 0, limit, out=height)
                self.height_reused = True

        height[source] = n
        if self.height_reused:
            height[sink] = 0

        interior = np.ones(n, dtype=bool)
        interior[source] = interior[sink] = False
        relabel_trigger = max(int(GLOBAL_RELABEL_NODE_FRACTION * n), 1)
        src_segment = order[int(starts[source]) : int(starts[source + 1])]

        # Budgeted flood with a certified-cut fallback.  Every unit of flow
        # must enter the sink through the sink's incoming residual capacity,
        # so saturating more than that out of the source only manufactures
        # excess that phase 2 has to cancel straight back — on warm retunes
        # (where the sink-side headroom is a small delta) that cancelled
        # flood is almost all of the textbook algorithm's work.  The first
        # attempt therefore floods only up to the sink-side headroom,
        # greedily over the source's arcs in CSR order.  The budget can
        # under-shoot when the flooded excess hits interior bottlenecks
        # while other source arcs could still route, so after each attempt
        # the residual reachability of the sink is checked (the same BFS
        # that certifies the min cut): still reachable ⇒ flood everything
        # that is left and run again — the second attempt is the classic
        # fully-flooded algorithm, whose termination guarantees the cut.
        cap_backup = caps.copy() if self.deadline is not None else None
        try:
            self._flood_attempts(
                caps, targets, excess, height, interior, relabel_trigger,
                src_segment, big,
            )
        except DeadlineExceeded:
            # Roll the zero-copy residual state back to the entry flow: a
            # mid-phase preflow is not a feasible flow and must never be
            # left behind for a warm retune to continue from.
            caps[:] = cap_backup
            self._seen = None
            raise

        network.stash_heights(source, sink, height.tolist())
        return float(excess[sink])

    def _flood_attempts(
        self,
        caps: np.ndarray,
        targets: np.ndarray,
        excess: np.ndarray,
        height: np.ndarray,
        interior: np.ndarray,
        relabel_trigger: int,
        src_segment: np.ndarray,
        big: np.int64,
    ) -> None:
        """The budgeted-flood / certify loop of :meth:`max_flow` (see there)."""
        sink = self.sink
        for attempt in range(3):
            src_live = src_segment[caps[src_segment] > EPSILON]
            if src_live.size:
                src_caps = caps[src_live]
                sink_in = float(caps[np.flatnonzero(targets == sink)].sum())
                total_src = float(src_caps.sum())
                if attempt == 0 and np.isfinite(sink_in) and np.isfinite(total_src):
                    # Proportional fill: spread the budget over every source
                    # arc instead of saturating the first few in CSR order —
                    # a retune opens sink-side headroom across *all* penalty
                    # arcs, so a spread flood routes in a couple of sweeps
                    # where a concentrated one thrashes against per-arc
                    # bottlenecks.
                    ratio = min(sink_in / total_src, 1.0) if total_src > 0.0 else 0.0
                    amounts = src_caps * ratio
                    chosen = np.flatnonzero(amounts > 0.0)
                    src_sel = src_live[chosen]
                    amounts = amounts[chosen]
                else:
                    src_sel = src_live
                    amounts = src_caps.copy()
                if src_sel.size:
                    caps[src_sel] -= amounts
                    caps[src_sel ^ 1] += amounts
                    np.add.at(excess, targets[src_sel], amounts)
                    self._tally_pushes(src_sel)
            if (excess[interior] > EPSILON).any():
                if attempt == 0 and self.height_reused:
                    self._repair_heights(height, big)
                # Every attempt starts phase 1 from exact residual distance
                # labels; for warm solves the global relabel max-merges them
                # with the repaired stash, so labels the retune left valid
                # (e.g. nodes frozen past n by the previous solve) survive
                # while everything else jumps straight to its true distance.
                self._global_relabel(height, big)
                self._phase_one(height, excess, interior, relabel_trigger, big)
                self._cancel_stranded(excess, interior)
            self._seen = self._residual_seen()
            if not self._seen[sink]:
                break
        else:  # pragma: no cover - defensive: two attempts always certify
            raise FlowError(
                "numpy push-relabel failed to certify a minimum cut after a full flood"
            )

    def _phase_one(
        self,
        height: np.ndarray,
        excess: np.ndarray,
        interior: np.ndarray,
        relabel_trigger: int,
        big: np.int64,
    ) -> None:
        """Drive a maximum preflow into the sink (active nodes below height n).

        Only nodes below height ``n`` can still reach the sink, so
        everything at or above ``n`` is frozen; when no active node remains
        below ``n`` the preflow is maximum.  :meth:`_cancel_stranded` then
        converts it into a flow by cancelling the stranded excess along
        flow-carrying arcs (the flow-decomposition walk) instead of
        push-relabelling it back over height ``n`` — the climb that
        dominates the textbook single-phase variant.
        """
        network = self.network
        n = network.num_nodes
        m = len(self._pos_arc)
        limit = 2 * n
        caps = self._caps
        starts = self._starts
        pos_arc, pos_tail, pos_head = self._pos_arc, self._pos_tail, self._pos_head
        seg_starts, empty_seg = self._seg_starts, self._empty_seg
        pos_of_arc, counts = self._pos_of_arc, self._counts
        since_relabel = 0
        relabelled_nodes = 0
        stalled = False
        pos_caps = caps[pos_arc]
        while True:
            if self.deadline is not None:
                # Cooperative cancellation checkpoint (one per superstep);
                # max_flow's backup/restore undoes the in-place writes.
                self.deadline.check("numpy-push-relabel superstep")
            active = interior & (height < n) & (excess > EPSILON)
            active_nodes = np.flatnonzero(active)
            if not active_nodes.size:
                break
            if since_relabel >= GLOBAL_RELABEL_INTERVAL or relabelled_nodes >= relabel_trigger:
                self._global_relabel(height, big)
                since_relabel = 0
                relabelled_nodes = 0
                continue
            since_relabel += 1

            # Saturation-sweep push: every active node discharges along ALL
            # of its admissible arcs at once, greedily in CSR order.  The
            # per-arc amounts come from a per-segment exclusive prefix sum
            # of the admissible capacities clipped against the node's
            # excess — arc i of a node receives
            # ``clip(excess - prefix_before_i, 0, cap_i)`` — which is
            # exactly the greedy sequential fill, computed in bulk.
            #
            # Two layouts of the same superstep: a *dense* one over all m
            # CSR positions (right after a flood, when most nodes hold
            # excess), and a *frontier-sparse* one over just the active
            # nodes' CSR segments — warm retune solves quickly shrink to a
            # handful of active nodes, where scanning all m arcs per
            # superstep would dwarf the actual work.
            seg_cnt = counts[active_nodes]
            sub_total = int(seg_cnt.sum())
            sparse = 4 * sub_total < m
            progressed = False
            if sparse:
                if sub_total == 0:
                    # Active nodes without a single arc can never discharge;
                    # freeze them (cannot happen on preflows, where excess
                    # always arrives over a twin arc — defensive).
                    height[active_nodes] = limit + 1
                    relabelled_nodes += int(active_nodes.size)
                    continue
                # Concatenate the active nodes' CSR segments: position index
                # built from a ragged arange (global arange minus each
                # segment's running offset).
                sub_off = np.cumsum(seg_cnt) - seg_cnt
                sub_pos = (
                    np.arange(sub_total, dtype=np.int64)
                    - np.repeat(sub_off, seg_cnt)
                    + np.repeat(starts[active_nodes], seg_cnt)
                )
                safe_off = np.minimum(sub_off, sub_total - 1)
                sub_empty = seg_cnt == 0
                # reduceat boundaries: only segments whose true offset is in
                # range; clipping trailing empties into the last segment
                # would truncate it (see numpy_position_index).
                valid_sub = int(np.searchsorted(sub_off, sub_total, side="left"))

                def sub_reduce(op: np.ufunc, values: np.ndarray, fill) -> np.ndarray:
                    """Per-active-node reduceat over the concatenated segments."""
                    out = np.full(active_nodes.size, fill, dtype=values.dtype)
                    if valid_sub:
                        out[:valid_sub] = op.reduceat(values, sub_off[:valid_sub])
                    out[sub_empty] = fill
                    return out
                sub_arc = pos_arc[sub_pos]
                sub_caps = caps[sub_arc]
                sub_head = pos_head[sub_pos]
                h_head = height[sub_head]
                h_tail = np.repeat(height[active_nodes], seg_cnt)
                admissible = (sub_caps > EPSILON) & (h_tail == h_head + 1)
                adm_caps = np.where(admissible, sub_caps, 0.0)
                exc_active = excess[active_nodes]
                fill_caps = np.minimum(adm_caps, max(float(exc_active.max()), 1.0))
                cum = np.cumsum(fill_caps)
                exclusive = cum - fill_caps
                prefix = np.maximum(
                    exclusive - np.repeat(exclusive[safe_off], seg_cnt), 0.0
                )
                room = np.repeat(exc_active, seg_cnt)
                delta = np.minimum(np.maximum(room - prefix, 0.0), adm_caps)
                pushed = np.flatnonzero(delta > 0.0)
                if pushed.size:
                    sel_arcs = sub_arc[pushed]
                    twins = sel_arcs ^ 1
                    moved = delta[pushed]
                    caps[sel_arcs] -= moved
                    caps[twins] += moved
                    excess[active_nodes] -= sub_reduce(np.add, delta, 0.0)
                    np.add.at(excess, sub_head[pushed], moved)
                    self._tally_pushes(sel_arcs)
                    # Keep the dense pos_caps mirror coherent for later
                    # dense supersteps.
                    pos_caps[sub_pos[pushed]] = caps[sel_arcs]
                    pos_caps[pos_of_arc[twins]] = caps[twins]
                    sub_caps = caps[sub_arc]
                    progressed = True

                still = (
                    interior[active_nodes]
                    & (height[active_nodes] < n)
                    & (excess[active_nodes] > EPSILON)
                )
                if still.any():
                    head_h = np.where(sub_caps > EPSILON, h_head, big)
                    seg_min = sub_reduce(np.minimum, head_h, big)
                    relabel = still & (seg_min >= height[active_nodes])
                    if relabel.any():
                        nodes = active_nodes[relabel]
                        height[nodes] = np.minimum(seg_min[relabel] + 1, limit + 1)
                        relabelled_nodes += int(nodes.size)
                        progressed = True
                        self._gap_lift(height, n)
            else:
                h_head = height[pos_head]
                admissible = (
                    (pos_caps > EPSILON)
                    & active[pos_tail]
                    & (height[pos_tail] == h_head + 1)
                )
                adm_caps = np.where(admissible, pos_caps, 0.0)
                # The prefix sum must stay finite under INFINITY capacities;
                # any surrogate at least as large as a node's excess fills
                # the same way (later arcs see a prefix >= excess and carry
                # nothing), so clip at the largest excess for the cumsum.
                fill_caps = np.minimum(adm_caps, max(float(excess.max()), 1.0))
                cum = np.cumsum(fill_caps)
                exclusive = cum - fill_caps
                # Clamp: differences of one global cumsum can go a few ulps
                # negative, which would overfill a segment's first arc.
                prefix = np.maximum(
                    exclusive - np.repeat(exclusive[seg_starts], counts), 0.0
                )
                room = np.repeat(excess, counts)
                delta = np.minimum(np.maximum(room - prefix, 0.0), adm_caps)
                pushed = np.flatnonzero(delta > 0.0)
                if pushed.size:
                    sel_arcs = pos_arc[pushed]
                    twins = sel_arcs ^ 1
                    moved = delta[pushed]
                    caps[sel_arcs] -= moved
                    caps[twins] += moved
                    excess -= self._segment_reduce(np.add, delta, 0.0)
                    np.add.at(excess, pos_head[pushed], moved)
                    self._tally_pushes(sel_arcs)
                    # Incremental residual-capacity maintenance: only the
                    # pushed arcs and their twins changed.
                    pos_caps[pushed] = caps[sel_arcs]
                    pos_caps[pos_of_arc[twins]] = caps[twins]
                    progressed = True

                # Relabel every still-active node with no admissible arc left.
                still = interior & (height < n) & (excess > EPSILON)
                if still.any():
                    head_h = np.where(pos_caps > EPSILON, h_head, big)
                    seg_min = self._segment_reduce(np.minimum, head_h, big)
                    # Under a valid labelling, "min residual head height >=
                    # own height" is exactly "no admissible arc".
                    relabel = still & (seg_min >= height)
                    if relabel.any():
                        height[relabel] = np.minimum(seg_min[relabel] + 1, limit + 1)
                        relabelled_nodes += int(relabel.sum())
                        progressed = True
                        self._gap_lift(height, n)

            if not progressed:
                # No push and no relabel can only mean the labelling drifted
                # invalid (float pathology): restore exact labels once, and
                # fail loudly rather than spin if that does not unblock.
                if stalled:
                    raise FlowError(
                        "numpy push-relabel made no progress with active excess; "
                        "the height labelling is inconsistent with the residual graph"
                    )
                stalled = True
                self._global_relabel(height, big)
                since_relabel = 0
                relabelled_nodes = 0
            else:
                stalled = False

    def _segment_reduce(self, op: np.ufunc, values: np.ndarray, fill) -> np.ndarray:
        """Per-node ``op.reduceat`` over the CSR segments of ``values``.

        Runs over the true segment boundaries of the leading non-trailing
        segments and fills everything else — trailing arc-less nodes and
        empty middle segments — with ``fill``.
        """
        out = np.full(self.network.num_nodes, fill, dtype=values.dtype)
        if self._valid_segments:
            out[: self._valid_segments] = op.reduceat(values, self._reduce_starts)
        out[self._empty_seg] = fill
        return out

    def _gap_lift(self, height: np.ndarray, n: int) -> None:
        """Gap heuristic: any empty level below ``n`` strands every node above it.

        A residual path to the sink descends at most one level per arc, so
        it must pass through every level below its start — an empty level
        ``g < n`` therefore proves that nodes with ``g < h < n`` can never
        reach the sink again; they are lifted past ``n`` in bulk.
        """
        levels = np.bincount(np.minimum(height, n), minlength=n + 1)
        gaps = np.flatnonzero(levels[:n] == 0)
        if gaps.size:
            lifted = (height > gaps[0]) & (height < n)
            if lifted.any():
                height[lifted] = n + 1

    def _cancel_stranded(self, excess: np.ndarray, interior: np.ndarray) -> None:
        """Phase 2: cancel stranded excess back along flow-carrying arcs.

        The preflow is maximum when this runs; every surplus node has a flow
        path from the source (flow decomposition), so the cancellation walk
        always succeeds.  The cancelled per-arc updates count towards
        ``arcs_pushed`` exactly like the scalar solver's return-phase
        pushes.  The stranded entries are zeroed so a fallback flood attempt
        starts from a clean excess vector.
        """
        stranded = np.flatnonzero(interior & (excess > 0.0))
        if stranded.size:
            self.network._return_excess_vectorised(
                list(zip(stranded.tolist(), excess[stranded].tolist())),
                self.source,
                on_moves=self._tally_pushes,
            )
            excess[stranded] = 0.0

    def _tally_pushes(self, sel_arcs: np.ndarray) -> None:
        """Count a bulk push's arcs, splitting them per owner when batched."""
        self.arcs_pushed += int(sel_arcs.size)
        if self.arc_owner is not None:
            self.owner_pushes += np.bincount(
                self.arc_owner[sel_arcs], minlength=self.owner_pushes.size
            )

    def _residual_seen(self) -> np.ndarray:
        """Boolean mask of nodes residual-reachable from the source (BFS)."""
        caps, pos_arc = self._caps, self._pos_arc
        pos_tail, pos_head = self._pos_tail, self._pos_head
        residual = caps[pos_arc] > EPSILON
        seen = np.zeros(self.network.num_nodes, dtype=bool)
        seen[self.source] = True
        while True:
            frontier = residual & seen[pos_tail] & ~seen[pos_head]
            hits = pos_head[frontier]
            if hits.size == 0:
                return seen
            seen[hits] = True

    def min_cut_source_side(self) -> list[int]:
        """Source side of the canonical minimum cut (valid after :meth:`max_flow`).

        Vectorised residual BFS from the source using the same ``EPSILON``
        threshold as :meth:`FlowNetwork.residual_reachable
        <repro.flow.network.FlowNetwork.residual_reachable>`, so the returned
        node list is bit-identical to every scalar solver's.  The BFS is the
        same reachability pass that certified the cut at the end of
        :meth:`max_flow`, so its cached result is reused.
        """
        network = self.network
        if self._caps is None:
            # max_flow() has not run; fall back to the network's scalar walk.
            reachable = network.residual_reachable(self.source)
            return [node for node, flag in enumerate(reachable) if flag]
        if self._seen is None:
            self._seen = self._residual_seen()
        return np.flatnonzero(self._seen).tolist()

    # ------------------------------------------------------------------
    def _global_relabel(self, height: np.ndarray, big: np.int64) -> None:
        """Merge exact residual BFS distance labels into ``height`` (in place).

        Nodes that can reach the sink get ``d(v, t)``; the rest get ``n +
        d(v, s)`` (a node holding excess always has a residual path back to
        the source, and — because reaching a sink-labelled node would make it
        sink-reaching itself — that path stays inside the unlabelled set, so
        the second BFS finds it).  Both BFS passes advance one level per
        iteration with full-array masks.  The merge uses ``numpy.maximum``:
        the elementwise max of two valid labellings is valid, and labels stay
        monotone non-decreasing, which the termination argument needs.
        """
        n = self.network.num_nodes
        limit = 2 * n
        residual = self._caps[self._pos_arc] > EPSILON
        fresh = np.full(n, big, dtype=np.int64)
        fresh[self.sink] = 0
        # The source label is pinned at n *before* the sink BFS: with a
        # budgeted flood the source may keep residual outgoing arcs, and
        # distances measured through the source would let interior nodes
        # aim their pushes at it instead of at the sink.
        fresh[self.source] = n
        self._bfs_levels(fresh, residual, level=0, big=big)
        self._bfs_levels(fresh, residual, level=n, big=big)
        np.minimum(fresh, limit + 1, out=fresh)
        np.maximum(height, fresh, out=height)
        height[self.sink] = 0
        height[self.source] = n
        self.global_relabels += 1

    def _bfs_levels(
        self, levels: np.ndarray, residual: np.ndarray, level: int, big: np.int64
    ) -> None:
        """Backward residual BFS: label unlabelled tails of arcs into ``level``.

        An arc ``(u, v)`` with residual capacity lets ``u`` step towards
        whatever ``v`` reaches, so each iteration labels every still-``big``
        tail whose head sits on the current level.
        """
        pos_tail, pos_head = self._pos_tail, self._pos_head
        while True:
            frontier = residual & (levels[pos_head] == level) & (levels[pos_tail] == big)
            hits = pos_tail[frontier]
            if hits.size == 0:
                return
            levels[hits] = level + 1
            level += 1

    def _repair_heights(self, height: np.ndarray, big: np.int64) -> None:
        """Lower adopted height labels to validity for the current residual graph.

        The vectorised counterpart of
        :meth:`PushRelabelSolver._repair_heights
        <repro.flow.push_relabel.PushRelabelSolver._repair_heights>`: iterate
        ``h(u) <- min(h(u), 1 + min over residual arcs (u, v) of h(v))`` for
        every node at once until nothing changes.  Chaotic iteration of the
        same monotone lowering operator reaches the same fixpoint — the
        greatest valid labelling below the stashed one — in at most ``n``
        O(m) passes (in the hot retune pattern, one or two).  The source
        keeps its pinned label; the sink's 0 is already minimal.
        """
        source = self.source
        residual = self._caps[self._pos_arc] > EPSILON
        pos_head = self._pos_head
        source_height = height[source]
        while True:
            cand = np.where(residual, height[pos_head] + 1, big)
            seg_min = self._segment_reduce(np.minimum, cand, big)
            new_height = np.minimum(height, seg_min)
            new_height[source] = source_height
            if np.array_equal(new_height, height):
                return
            height[:] = new_height


def numpy_push_relabel_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Convenience wrapper: run the vectorised backend and return the flow value."""
    return NumpyPushRelabelSolver(network, source, sink).max_flow()
