"""Block-diagonal stacking of many small flow networks into one batched solve.

The vectorised backend (:mod:`repro.flow.numpy_backend`) pays a fixed
per-call cost for each bulk array operation; one small network cannot fill
the vector width, which is why ``BENCH_flow.json`` records it *losing* to
dinic on small workloads while winning 2–3.6x on large ones.  The exact DDS
algorithms, however, never solve one small network in isolation — they solve
*families* of closely related ones (the fixed-ratio guess sequences of the
DC driver and ``flow_exact``).  This module stacks such a family
block-diagonally:

* every member network's arc buffers are copied verbatim (twins stay
  interleaved) into one big :class:`~repro.flow.network.FlowNetwork` at a
  per-member node offset, so blocks occupy disjoint node ranges and share
  no arcs;
* a supersource ``S*`` and supersink ``T*`` are appended with one terminal
  arc per member — ``S* -> s_i`` bounded by the total base capacity leaving
  ``s_i`` and ``t_i -> T*`` bounded by the total base capacity entering
  ``t_i`` (both finite, so the backend's budgeted flood keeps working);
  neither bound can constrain the block's max flow, so each block's min cut
  is unchanged;
* one solver run then drives *all* blocks through the same bulk-synchronous
  supersteps — shared height/excess/active arrays, B× the vector width —
  and each block's answer scatters back to its owner: the block's flow
  value is read off the ``t_i -> T*`` residual twin, and the block's
  canonical min-cut source side is the solver's residual-reachability mask
  restricted to the block's node range.  Blocks are independent (no arc
  crosses a block boundary, and a block is entered only through its own
  terminal arc), so the per-block cut is the same canonical cut a solo
  solve certifies — bit-identical by the usual invariance argument.

Members stay canonical throughout: :meth:`gather` copies their *current*
residual capacities into the big network before a solve (so in-place
retunes between solves are picked up, warm flows included — the terminal
twins are seeded with each member's current flow value, making the stacked
state a valid flow the backend's warm credit accepts), and
:meth:`scatter` copies the solved residual state back, so a member can
leave the batch at any time (e.g. its binary search converged) and later be
solved — or cached and retuned — sequentially.  Converged members are
masked by zeroing both of their terminal arcs' forward residuals: the block
keeps its flow but cannot receive or route anything, and drops out of the
residual reachability the other blocks' cuts are read from.

This module imports numpy at module scope on purpose, exactly like
:mod:`repro.flow.numpy_backend`: callers are import-guarded through
:func:`repro.flow.registry.batch_eligible`, which is ``False`` when the
vectorised backend is not registered.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FlowError
from repro.flow.network import FlowNetwork


class BatchedFlowNetwork:
    """Several ``(network, source, sink)`` members stacked block-diagonally.

    The member networks must be s-t shaped (no forward arc enters the
    source or leaves the sink — true of every DDS decision network) and
    their topology must not change for the lifetime of the batch; their
    capacities may be retuned freely between :meth:`gather` calls.
    """

    __slots__ = (
        "network",
        "source",
        "sink",
        "num_members",
        "arc_owner",
        "_members",
        "_node_offsets",
        "_arc_offsets",
        "_member_arc_counts",
        "_member_node_counts",
        "_src_terminals",
        "_sink_terminals",
        "_src_fwd",
        "_src_rev",
        "_sink_in",
    )

    def __init__(self, members: list[tuple[FlowNetwork, int, int]]) -> None:
        if len(members) < 2:
            raise FlowError("a batched network needs at least two members")
        self._members = list(members)
        self.num_members = len(self._members)
        self._node_offsets: list[int] = []
        self._arc_offsets: list[int] = []
        self._member_arc_counts: list[int] = []
        self._member_node_counts: list[int] = []
        self._src_fwd: list[np.ndarray] = []
        self._src_rev: list[np.ndarray] = []
        self._sink_in: list[np.ndarray] = []

        total_nodes = 0
        for network, source, sink in self._members:
            network._check_node(source)
            network._check_node(sink)
            if source == sink:
                raise FlowError("member source and sink must differ")
            self._node_offsets.append(total_nodes)
            self._member_node_counts.append(network.num_nodes)
            self._member_arc_counts.append(network.num_arcs)
            total_nodes += network.num_nodes

        self.source = total_nodes
        self.sink = total_nodes + 1
        big = FlowNetwork(total_nodes + 2)
        owners: list[np.ndarray] = []
        for index, (network, source, sink) in enumerate(self._members):
            _, _, targets, caps, tails, base = network.numpy_csr()
            arcs = np.arange(network.num_arcs, dtype=np.int64)
            even = arcs[(arcs & 1) == 0]
            src_fwd = even[tails[even] == source]
            sink_in = even[targets[even] == sink]
            # Residual twins whose *tail* is the source are flow on forward
            # arcs into the source — forbidden s-t shape, as is a forward
            # arc leaving the sink: either would let flow bypass the
            # terminal-arc bookkeeping below.
            if (even[targets[even] == source]).size or (even[tails[even] == sink]).size:
                raise FlowError(
                    "batched members must be s-t networks: no forward arc may "
                    "enter the source or leave the sink"
                )
            odd = arcs[(arcs & 1) == 1]
            src_rev = odd[tails[odd] == source]
            self._src_fwd.append(src_fwd)
            self._src_rev.append(src_rev)
            self._sink_in.append(sink_in)
            offset = self._node_offsets[index]
            self._arc_offsets.append(big.num_arcs)
            big.append_paired_arcs(tails + offset, targets + offset, caps, base)
            owners.append(np.full(network.num_arcs, index, dtype=np.int64))

        self._src_terminals: list[int] = []
        self._sink_terminals: list[int] = []
        for index, (network, source, sink) in enumerate(self._members):
            offset = self._node_offsets[index]
            self._src_terminals.append(big.add_edge(self.source, offset + source, 0.0))
            self._sink_terminals.append(big.add_edge(offset + sink, self.sink, 0.0))
            owners.append(np.full(4, index, dtype=np.int64))
        self.network = big
        self.arc_owner = np.concatenate(owners)

    # ------------------------------------------------------------------
    @property
    def member_arc_counts(self) -> list[int]:
        """Stored arc count of every member (the aggregate-policy input)."""
        return list(self._member_arc_counts)

    def member_flow_value(self, index: int) -> float:
        """Current flow value of member ``index`` read from its residual state."""
        network, source, _ = self._members[index]
        _, _, _, caps, _, _ = network.numpy_csr()
        forward = float(caps[self._src_fwd[index] + 1].sum())
        backward = float(caps[self._src_rev[index]].sum())
        return forward - backward

    # ------------------------------------------------------------------
    def gather(self, active: list[int]) -> None:
        """Load every active member's residual state into the big network.

        Active members get their block's capacities refreshed from the
        member buffers (picking up retunes) and their terminal arcs re-bounded
        against the member's *current* base capacities with the member's
        current flow value seeded on the twins — so the stacked state is a
        valid flow of exactly the members' total value.  Every other member
        is masked: its terminal forward residuals are zeroed (its flow, held
        on the twins, stays in place so the stacked flow remains valid).
        """
        _, _, _, big_caps, _, big_base = self.network.numpy_csr()
        is_active = [False] * self.num_members
        for index in active:
            is_active[index] = True
        for index in range(self.num_members):
            src_term = self._src_terminals[index]
            sink_term = self._sink_terminals[index]
            if not is_active[index]:
                big_caps[src_term] = 0.0
                big_caps[sink_term] = 0.0
                continue
            network, _, _ = self._members[index]
            _, _, _, caps_m, _, base_m = network.numpy_csr()
            start = self._arc_offsets[index]
            stop = start + self._member_arc_counts[index]
            big_caps[start:stop] = caps_m
            big_base[start:stop] = base_m
            flow = self.member_flow_value(index)
            src_bound = float(base_m[self._src_fwd[index]].sum())
            sink_bound = float(base_m[self._sink_in[index]].sum())
            big_base[src_term] = src_bound
            big_base[sink_term] = sink_bound
            big_caps[src_term] = max(src_bound - flow, 0.0)
            big_caps[src_term + 1] = flow
            big_caps[sink_term] = max(sink_bound - flow, 0.0)
            big_caps[sink_term + 1] = flow

    def scatter(self, active: list[int]) -> None:
        """Copy the solved residual state of every active block back to its owner."""
        _, _, _, big_caps, _, _ = self.network.numpy_csr()
        for index in active:
            network, _, _ = self._members[index]
            _, _, _, caps_m, _, _ = network.numpy_csr()
            start = self._arc_offsets[index]
            stop = start + self._member_arc_counts[index]
            caps_m[:] = big_caps[start:stop]

    # ------------------------------------------------------------------
    def block_flow_value(self, index: int) -> float:
        """Flow value of block ``index`` after a solve: the ``t_i -> T*`` twin."""
        _, _, _, big_caps, _, _ = self.network.numpy_csr()
        return float(big_caps[self._sink_terminals[index] + 1])

    def block_cut(self, source_side: list[int], index: int) -> list[int]:
        """Member-local min-cut source side of block ``index``.

        ``source_side`` is the big network's canonical cut (ascending node
        list, as returned by ``min_cut_source_side``); the block's share is
        the slice inside its node range, shifted back to member-local
        indices — ascending, exactly like a solo solve's.
        """
        seen = np.asarray(source_side, dtype=np.int64)
        offset = self._node_offsets[index]
        lo, hi = np.searchsorted(
            seen, [offset, offset + self._member_node_counts[index]]
        )
        return (seen[lo:hi] - offset).tolist()
