"""Dinic's maximum-flow algorithm (the primary solver).

Dinic builds a BFS level graph from the source and repeatedly finds blocking
flows with an iterative DFS that remembers, per node, how far into its arc
list it has advanced ("current-arc" optimisation).  On the networks produced
by the DDS density reduction — thousands of unit-capacity arcs plus a handful
of ``O(g)`` capacity arcs — it is far faster than Edmonds–Karp and entirely
adequate for the graph sizes the exact algorithms target.

Indexing the network's ``array``-backed CSR storage boxes a fresh Python
object on every read, so ``max_flow`` grabs the cached list view of the
topology (:meth:`~repro.flow.network.FlowNetwork.solver_views`), snapshots
the capacities into a plain list once (O(m), C-speed), runs the inner loops
on those, and writes the final residual capacities back to the network when
done — the array storage stays canonical while the hot path pays list-speed
access costs only.
"""

from __future__ import annotations

from array import array
from collections import deque

from repro.exceptions import FlowError
from repro.flow.network import EPSILON, FlowNetwork


class DinicSolver:
    """Stateful Dinic solver bound to one :class:`FlowNetwork`.

    The solver mutates the network's residual capacities; call
    :meth:`FlowNetwork.reset_flow` to reuse the network for another run.
    ``arcs_pushed`` counts every per-arc residual update (instrumentation
    surfaced by the :class:`~repro.flow.engine.FlowEngine`).

    With ``warm_start=True`` the solver treats the network's residual state
    as a valid feasible flow to continue from (rather than assuming zero
    flow): the pre-existing flow value is read off the source's residual
    arcs and the usual augmenting loop tops it up to a maximum flow.  Since
    Dinic only ever augments along residual paths, no other change is
    needed — a warm run returns the same max-flow value and the same
    canonical min cut as a cold one, after pushing only the missing flow.
    """

    name = "dinic"

    #: Advertises to :class:`~repro.flow.engine.FlowEngine` that this solver
    #: can continue from a nonzero feasible flow.
    supports_warm_start = True

    #: Optional :class:`repro.runtime.Deadline`, attached by the engine when
    #: the query carries a budget.  Checked between BFS rounds — the phase
    #: boundary where the in-progress state is a snapshot the network has
    #: not seen yet, so an abort leaves the network's residual capacities
    #: exactly as they were at solve entry (write-back only happens on
    #: completion) and a later warm retune is bit-identical.
    deadline = None

    def __init__(
        self, network: FlowNetwork, source: int, sink: int, warm_start: bool = False
    ) -> None:
        if source == sink:
            raise FlowError("source and sink must differ")
        network._check_node(source)
        network._check_node(sink)
        self.network = network
        self.source = source
        self.sink = sink
        self.warm_start = warm_start
        self.arcs_pushed = 0
        self._levels: list[int] = []

    # ------------------------------------------------------------------
    def max_flow(self) -> float:
        """Run Dinic to completion and return the max-flow value."""
        heads, targets = self.network.solver_views()
        caps_arr = self.network.arc_capacities
        caps = caps_arr.tolist()

        # A warm start credits the value of the flow already routed through
        # the network; the augmenting loop below then only tops it up.
        total = self.network.flow_value(self.source) if self.warm_start else 0.0
        while True:
            if self.deadline is not None:
                # Cooperative cancellation checkpoint (one per BFS round):
                # raising here discards the local caps snapshot before it is
                # ever written back, so the network stays untouched.
                self.deadline.check("dinic BFS round")
            if not self._build_levels(heads, targets, caps):
                break
            iters = [0] * self.network.num_nodes
            while True:
                pushed = self._blocking_path(heads, targets, caps, iters)
                if pushed <= EPSILON:
                    break
                total += pushed

        caps_arr[:] = array("d", caps)
        return total

    def min_cut_source_side(self) -> list[int]:
        """Source side of a minimum cut (valid after :meth:`max_flow`)."""
        reachable = self.network.residual_reachable(self.source)
        return [node for node, flag in enumerate(reachable) if flag]

    # ------------------------------------------------------------------
    def _build_levels(self, heads, targets, caps) -> bool:
        """BFS from the source over positive-residual arcs; True if sink reached."""
        levels = [-1] * self.network.num_nodes
        levels[self.source] = 0
        queue = deque([self.source])
        while queue:
            node = queue.popleft()
            next_level = levels[node] + 1
            for arc_index in heads[node]:
                if caps[arc_index] > EPSILON:
                    target = targets[arc_index]
                    if levels[target] < 0:
                        levels[target] = next_level
                        queue.append(target)
        self._levels = levels
        return levels[self.sink] >= 0

    def _blocking_path(self, heads, targets, caps, iters) -> float:
        """Push one augmenting path along the level graph (iterative DFS)."""
        levels = self._levels
        sink = self.sink

        path: list[int] = []  # arc indices along the current path
        node = self.source
        while True:
            if node == sink:
                # Found an augmenting path: push the bottleneck.
                bottleneck = caps[path[0]]
                for arc in path:
                    if caps[arc] < bottleneck:
                        bottleneck = caps[arc]
                for arc in path:
                    caps[arc] -= bottleneck
                    caps[arc ^ 1] += bottleneck
                self.arcs_pushed += len(path)
                return bottleneck
            advanced = False
            node_heads = heads[node]
            node_level_next = levels[node] + 1
            while iters[node] < len(node_heads):
                arc_index = node_heads[iters[node]]
                target = targets[arc_index]
                if caps[arc_index] > EPSILON and levels[target] == node_level_next:
                    path.append(arc_index)
                    node = target
                    advanced = True
                    break
                iters[node] += 1
            if advanced:
                continue
            # Dead end: retreat (or give up if we are back at the source).
            levels[node] = -1
            if not path:
                return 0.0
            last_arc = path.pop()
            node = targets[last_arc ^ 1]
            iters[node] += 1
        # unreachable
        raise AssertionError  # pragma: no cover


def dinic_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Convenience wrapper: run Dinic on ``network`` and return the flow value."""
    return DinicSolver(network, source, sink).max_flow()
