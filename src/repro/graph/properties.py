"""Structural property reports: degree statistics, components, reciprocity.

These feed experiment E1 (the dataset-statistics table) and the README's
dataset overview.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.builders import weakly_connected_node_sets
from repro.graph.digraph import DiGraph, NodeLabel


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of the out- and in-degree distributions of a digraph."""

    max_out_degree: int
    max_in_degree: int
    mean_out_degree: float
    mean_in_degree: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (used by the benchmark table printers)."""
        return {
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "mean_out_degree": self.mean_out_degree,
            "mean_in_degree": self.mean_in_degree,
        }


def degree_statistics(graph: DiGraph) -> DegreeStatistics:
    """Compute :class:`DegreeStatistics` for ``graph``."""
    n = graph.num_nodes
    if n == 0:
        return DegreeStatistics(0, 0, 0.0, 0.0)
    out_degrees = graph.out_degrees()
    in_degrees = graph.in_degrees()
    return DegreeStatistics(
        max_out_degree=max(out_degrees),
        max_in_degree=max(in_degrees),
        mean_out_degree=sum(out_degrees) / n,
        mean_in_degree=sum(in_degrees) / n,
    )


def weakly_connected_components(graph: DiGraph) -> list[list[NodeLabel]]:
    """Weakly connected components as label lists, largest first."""
    return weakly_connected_node_sets(graph)


def reciprocity(graph: DiGraph) -> float:
    """Fraction of edges ``(u, v)`` whose reverse ``(v, u)`` also exists."""
    if graph.num_edges == 0:
        return 0.0
    reciprocal = sum(1 for u, v in graph.edges() if graph.has_edge(v, u))
    return reciprocal / graph.num_edges


def graph_summary(graph: DiGraph) -> dict[str, float]:
    """One-row summary used by the E1 dataset table."""
    stats = degree_statistics(graph)
    components = weakly_connected_components(graph)
    summary: dict[str, float] = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "components": len(components),
        "largest_component": len(components[0]) if components else 0,
        "reciprocity": round(reciprocity(graph), 4),
    }
    summary.update(stats.as_dict())
    return summary
