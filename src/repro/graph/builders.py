"""Convenience builders and transformations for :class:`~repro.graph.DiGraph`."""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.graph.digraph import DiGraph, NodeLabel


def graph_from_edge_list(
    pairs: Iterable[tuple[NodeLabel, NodeLabel]],
    allow_self_loops: bool = False,
) -> DiGraph:
    """Build a :class:`DiGraph` from an iterable of ``(u, v)`` pairs.

    Duplicate edges are collapsed; self-loops are dropped unless
    ``allow_self_loops`` is set.
    """
    return DiGraph.from_edges(pairs, allow_self_loops=allow_self_loops)


def relabel_to_integers(graph: DiGraph) -> tuple[DiGraph, dict[NodeLabel, int]]:
    """Return a copy whose labels are ``0..n-1`` plus the old->new mapping."""
    mapping = {label: index for index, label in enumerate(graph.nodes())}
    relabeled = DiGraph(allow_self_loops=graph.allow_self_loops)
    for label in graph.nodes():
        relabeled.add_node(mapping[label])
    for u, v in graph.edges():
        relabeled.add_edge(mapping[u], mapping[v])
    return relabeled, mapping


def remove_self_loops(graph: DiGraph) -> DiGraph:
    """Return a copy of ``graph`` with all self-loops removed."""
    cleaned = DiGraph(allow_self_loops=False)
    for label in graph.nodes():
        cleaned.add_node(label)
    for u, v in graph.edges():
        if u != v:
            cleaned.add_edge(u, v)
    return cleaned


def reverse_graph(graph: DiGraph) -> DiGraph:
    """Return the graph with all edge directions reversed."""
    return graph.reverse()


def induced_subgraph(graph: DiGraph, labels: Iterable[NodeLabel]) -> DiGraph:
    """Node-induced subgraph on ``labels``."""
    return graph.subgraph(labels)


def st_induced_subgraph(
    graph: DiGraph,
    sources: Sequence[NodeLabel],
    targets: Sequence[NodeLabel],
) -> DiGraph:
    """Subgraph keeping only edges that go from ``sources`` into ``targets``.

    The node set of the result is ``sources ∪ targets`` (so isolated nodes of
    either side are preserved); the edge set is ``E ∩ (sources × targets)``.
    This is the "(S, T)-induced" subgraph the DDS algorithms repeatedly build
    when they restrict a flow network to an [x, y]-core.
    """
    source_idx = graph.indices_of(sources)
    target_idx = graph.indices_of(targets)
    sub = DiGraph(allow_self_loops=graph.allow_self_loops)
    for label in sources:
        sub.add_node(label)
    for label in targets:
        sub.add_node(label)
    for ui, vi in graph.edges_between(source_idx, target_idx):
        sub.add_edge(graph.label_of(ui), graph.label_of(vi))
    return sub


def weakly_connected_node_sets(graph: DiGraph) -> list[list[NodeLabel]]:
    """Weakly connected components as lists of labels (largest first)."""
    n = graph.num_nodes
    seen = [False] * n
    out_adj = graph.out_adj
    in_adj = graph.in_adj
    components: list[list[NodeLabel]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        queue = deque([start])
        component = [start]
        while queue:
            node = queue.popleft()
            for neighbor in out_adj[node]:
                if not seen[neighbor]:
                    seen[neighbor] = True
                    component.append(neighbor)
                    queue.append(neighbor)
            for neighbor in in_adj[node]:
                if not seen[neighbor]:
                    seen[neighbor] = True
                    component.append(neighbor)
                    queue.append(neighbor)
        components.append(graph.labels_of(component))
    components.sort(key=len, reverse=True)
    return components


def largest_weakly_connected_component(graph: DiGraph) -> DiGraph:
    """Node-induced subgraph on the largest weakly connected component."""
    if graph.num_nodes == 0:
        return graph.copy()
    components = weakly_connected_node_sets(graph)
    return graph.subgraph(components[0])
