"""Directed-graph substrate used by every algorithm in the library.

The central type is :class:`repro.graph.DiGraph`, a simple, unweighted
directed graph with arbitrary hashable node labels and a contiguous internal
index space that the algorithms operate on.  Everything else in this
subpackage is convenience machinery around it: builders, file I/O, random
generators, and structural property reports.
"""

from repro.graph.builders import (
    graph_from_edge_list,
    induced_subgraph,
    largest_weakly_connected_component,
    relabel_to_integers,
    remove_self_loops,
    reverse_graph,
    st_induced_subgraph,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    chung_lu_digraph,
    complete_bipartite_digraph,
    cycle_digraph,
    edge_update_stream,
    gnm_random_digraph,
    gnp_random_digraph,
    path_digraph,
    planted_dds_digraph,
    powerlaw_digraph,
    rmat_digraph,
    star_digraph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.properties import (
    degree_statistics,
    graph_summary,
    reciprocity,
    weakly_connected_components,
)

__all__ = [
    "DiGraph",
    "graph_from_edge_list",
    "induced_subgraph",
    "st_induced_subgraph",
    "largest_weakly_connected_component",
    "relabel_to_integers",
    "remove_self_loops",
    "reverse_graph",
    "read_edge_list",
    "write_edge_list",
    "gnp_random_digraph",
    "gnm_random_digraph",
    "edge_update_stream",
    "chung_lu_digraph",
    "powerlaw_digraph",
    "planted_dds_digraph",
    "rmat_digraph",
    "complete_bipartite_digraph",
    "star_digraph",
    "path_digraph",
    "cycle_digraph",
    "degree_statistics",
    "graph_summary",
    "reciprocity",
    "weakly_connected_components",
]
