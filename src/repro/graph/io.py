"""Plain-text edge-list I/O.

The format is the de-facto standard used by SNAP / KONECT dumps: one edge per
line, whitespace- (or custom-delimiter-) separated source and target, with
``#`` or ``%`` comment lines ignored.  Node identifiers are kept as strings
unless ``as_int=True``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro.exceptions import ParseError
from repro.graph.digraph import DiGraph

PathLike = Union[str, os.PathLike]

_COMMENT_PREFIXES = ("#", "%", "//")


def read_edge_list(
    path: PathLike,
    delimiter: str | None = None,
    as_int: bool = True,
    allow_self_loops: bool = False,
) -> DiGraph:
    """Read a directed edge list from ``path``.

    Parameters
    ----------
    path:
        File containing one ``source target`` pair per line.
    delimiter:
        Field separator; ``None`` splits on arbitrary whitespace.
    as_int:
        Convert node identifiers to ``int`` when possible.
    allow_self_loops:
        Keep self-loops instead of dropping them.

    Raises
    ------
    ParseError
        If any non-comment line does not contain at least two fields.
    """
    graph = DiGraph(allow_self_loops=allow_self_loops)
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split(delimiter)
            if len(parts) < 2:
                raise ParseError(f"{path}:{line_number}: expected 'source target', got {line!r}")
            source, target = parts[0], parts[1]
            if as_int:
                try:
                    graph.add_edge(int(source), int(target))
                    continue
                except ValueError:
                    pass
            graph.add_edge(source, target)
    return graph


def write_edge_list(graph: DiGraph, path: PathLike, delimiter: str = "\t") -> None:
    """Write ``graph`` as a directed edge list (one ``u<delimiter>v`` per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# directed edge list: n={graph.num_nodes} m={graph.num_edges}\n")
        for u, v in sorted(graph.edges(), key=str):
            handle.write(f"{u}{delimiter}{v}\n")
