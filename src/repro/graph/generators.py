"""Random and deterministic directed-graph generators.

These generators are the synthetic substitutes for the real datasets used in
the paper's evaluation (see DESIGN.md §3).  They cover the structural regimes
that matter for the DDS algorithms:

* uniform random digraphs (Erdős–Rényi ``G(n, p)`` and ``G(n, m)``) — the
  regime where core-based pruning is least effective,
* heavy-tailed digraphs (Chung–Lu / power-law and an R-MAT-like recursive
  generator) — the regime of real social/web graphs where pruning shines,
* *planted-DDS* digraphs — a sparse background plus a small dense ``S -> T``
  block with known location, used for correctness and case-study experiments,
* small deterministic families (stars, paths, cycles, complete bipartite)
  used throughout the unit tests.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.graph.digraph import DiGraph
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import (
    require,
    require_non_negative_int,
    require_positive,
    require_probability,
)


# ----------------------------------------------------------------------
# uniform random digraphs
# ----------------------------------------------------------------------
def gnp_random_digraph(n: int, p: float, seed: RngLike = None) -> DiGraph:
    """Directed Erdős–Rényi graph: each ordered pair (u, v), u != v, is an edge w.p. ``p``."""
    require_non_negative_int(n, "n")
    require_probability(p, "p")
    rng = make_rng(seed)
    graph = DiGraph()
    for node in range(n):
        graph.add_node(node)
    if p <= 0.0:
        return graph
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                graph.add_edge(u, v)
    return graph


def gnm_random_digraph(n: int, m: int, seed: RngLike = None) -> DiGraph:
    """Directed graph with ``n`` nodes and exactly ``min(m, n(n-1))`` distinct edges."""
    require_non_negative_int(n, "n")
    require_non_negative_int(m, "m")
    rng = make_rng(seed)
    graph = DiGraph()
    for node in range(n):
        graph.add_node(node)
    max_edges = n * (n - 1)
    target = min(m, max_edges)
    while graph.num_edges < target:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# heavy-tailed digraphs
# ----------------------------------------------------------------------
def _powerlaw_weights(n: int, exponent: float, rng) -> list[float]:
    """Sample ``n`` Pareto-like weights with tail exponent ``exponent`` (> 1)."""
    weights = []
    for _ in range(n):
        u = rng.random()
        # Inverse-CDF sampling of a Pareto(x_min=1) variable.
        weights.append((1.0 - u) ** (-1.0 / (exponent - 1.0)))
    return weights


def chung_lu_digraph(
    out_weights: Sequence[float],
    in_weights: Sequence[float],
    seed: RngLike = None,
) -> DiGraph:
    """Directed Chung–Lu graph with expected out/in degrees proportional to the weights.

    Edge ``(u, v)`` appears with probability
    ``min(1, out_weights[u] * in_weights[v] / W)`` where ``W = sum(out_weights)``.
    The expected out-degree of ``u`` is then approximately ``out_weights[u]``
    (scaled by ``sum(in_weights)/W``).
    """
    require(len(out_weights) == len(in_weights), "out_weights and in_weights must match in length")
    n = len(out_weights)
    rng = make_rng(seed)
    total = sum(out_weights)
    graph = DiGraph()
    for node in range(n):
        graph.add_node(node)
    if total <= 0:
        return graph
    # Geometric skipping over the v index keeps this O(m) in expectation for
    # sparse weight products; with the modest n used in this repo a direct
    # double loop with an early probability cut-off is simpler and fast enough.
    for u in range(n):
        wu = out_weights[u]
        if wu <= 0:
            continue
        for v in range(n):
            if u == v:
                continue
            probability = wu * in_weights[v] / total
            if probability >= 1.0 or rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def powerlaw_digraph(
    n: int,
    average_degree: float = 4.0,
    exponent: float = 2.5,
    seed: RngLike = None,
) -> DiGraph:
    """Heavy-tailed digraph: Chung–Lu with Pareto(out) and Pareto(in) weights.

    ``average_degree`` rescales the sampled weights so that the expected number
    of edges is roughly ``n * average_degree``.
    """
    require_non_negative_int(n, "n")
    require_positive(average_degree, "average_degree")
    require(exponent > 1.0, "exponent must be > 1")
    rng = make_rng(seed)
    if n == 0:
        return DiGraph()
    out_weights = _powerlaw_weights(n, exponent, rng)
    in_weights = _powerlaw_weights(n, exponent, rng)
    scale_out = n * average_degree / sum(out_weights)
    scale_in = n * average_degree / sum(in_weights)
    out_weights = [w * scale_out for w in out_weights]
    in_weights = [w * scale_in for w in in_weights]
    # Renormalise so that sum(out) == sum(in) == n * average_degree exactly.
    return chung_lu_digraph(out_weights, in_weights, seed=rng)


def rmat_digraph(
    scale: int,
    edge_factor: int = 8,
    partition: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: RngLike = None,
) -> DiGraph:
    """R-MAT-style recursive-matrix digraph with ``2**scale`` nodes.

    ``edge_factor`` edges per node are sampled by recursively descending into
    the four quadrants of the adjacency matrix with probabilities
    ``partition = (a, b, c, d)``; duplicates are collapsed, so the final edge
    count is slightly below ``edge_factor * 2**scale``.
    """
    require_non_negative_int(scale, "scale")
    require_non_negative_int(edge_factor, "edge_factor")
    a, b, c, d = partition
    require(abs(a + b + c + d - 1.0) < 1e-9, "partition probabilities must sum to 1")
    rng = make_rng(seed)
    n = 1 << scale
    graph = DiGraph()
    for node in range(n):
        graph.add_node(node)
    target_edges = edge_factor * n
    for _ in range(target_edges):
        u, v = 0, 0
        half = n >> 1
        while half >= 1:
            roll = rng.random()
            if roll < a:
                pass
            elif roll < a + b:
                v += half
            elif roll < a + b + c:
                u += half
            else:
                u += half
                v += half
            half >>= 1
        if u != v:
            graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# planted densest subgraphs
# ----------------------------------------------------------------------
def planted_dds_digraph(
    n_background: int,
    background_degree: float,
    s_size: int,
    t_size: int,
    p_dense: float = 0.9,
    seed: RngLike = None,
) -> tuple[DiGraph, list[int], list[int]]:
    """Sparse background digraph plus a planted dense ``S -> T`` block.

    Returns ``(graph, planted_S, planted_T)``.  The planted block occupies the
    node labels ``n_background .. n_background + s_size + t_size - 1``; edges
    inside the block go from each planted-S node to each planted-T node with
    probability ``p_dense``.  A few random edges connect the block to the
    background so it is not an isolated component.

    The planted pair is (with overwhelming probability, for the defaults used
    in the benchmarks) the densest directed subgraph, with density close to
    ``p_dense * sqrt(s_size * t_size)``, which far exceeds the background
    density.  Workloads built on this generator therefore have a known ground
    truth even at sizes where the exact algorithms would be slow.
    """
    require_non_negative_int(n_background, "n_background")
    require_non_negative_int(s_size, "s_size")
    require_non_negative_int(t_size, "t_size")
    require_probability(p_dense, "p_dense")
    require_positive(background_degree + 1.0, "background_degree")
    rng = make_rng(seed)

    graph = DiGraph()
    total_nodes = n_background + s_size + t_size
    for node in range(total_nodes):
        graph.add_node(node)

    # Sparse ER background.
    if n_background > 1 and background_degree > 0:
        p_background = min(1.0, background_degree / max(1, n_background - 1))
        for u in range(n_background):
            for v in range(n_background):
                if u != v and rng.random() < p_background:
                    graph.add_edge(u, v)

    planted_s = list(range(n_background, n_background + s_size))
    planted_t = list(range(n_background + s_size, total_nodes))
    for u in planted_s:
        for v in planted_t:
            if rng.random() < p_dense:
                graph.add_edge(u, v)

    # Loosely attach the planted block to the background.
    if n_background > 0:
        for u in planted_s + planted_t:
            if rng.random() < 0.5:
                graph.add_edge(u, rng.randrange(n_background))
            if rng.random() < 0.5:
                graph.add_edge(rng.randrange(n_background), u)

    return graph, planted_s, planted_t


# ----------------------------------------------------------------------
# update-stream workloads (for the incremental layer)
# ----------------------------------------------------------------------
def edge_update_stream(
    graph: DiGraph,
    steps: int,
    batch_size: int = 4,
    p_add: float = 0.5,
    p_new_node: float = 0.0,
    seed: RngLike = None,
) -> list[tuple[list[tuple], list[tuple]]]:
    """Deterministic stream of edge-delta batches for ``graph``.

    Returns ``steps`` batches of ``(added_edges, removed_edges)`` label
    pairs, each valid against the graph state produced by applying all
    earlier batches in order — removals name edges that exist at that point,
    additions name edges that do not, and no edge appears on both sides of
    one batch.  The batches are therefore directly consumable by
    :meth:`DDSSession.apply_updates <repro.session.DDSSession.apply_updates>`
    (or by :meth:`DiGraph.apply_delta <repro.graph.digraph.DiGraph.apply_delta>`
    on a copy); ``graph`` itself is never mutated.

    Each batch slot is an insertion with probability ``p_add`` (when an
    absent pair can be found) and a removal otherwise; an insertion brings a
    brand-new node with probability ``p_new_node``, exercising the
    node-growth path of the maintenance layer.  Fixing ``seed`` fixes the
    whole stream — the workload the incremental benchmarks replay.
    """
    require_non_negative_int(steps, "steps")
    require_non_negative_int(batch_size, "batch_size")
    require_probability(p_add, "p_add")
    require_probability(p_new_node, "p_new_node")
    rng = make_rng(seed)

    nodes = [graph.label_of(index) for index in range(graph.num_nodes)]
    edges: list[tuple] = [
        (graph.label_of(u), graph.label_of(v))
        for u in range(graph.num_nodes)
        for v in sorted(graph.out_adj[u])
    ]
    edge_set = set(edges)
    fresh = 0

    def pop_edge(index: int) -> tuple:
        """Swap-pop for O(1) removal while keeping the list rng-indexable."""
        edges[index], edges[-1] = edges[-1], edges[index]
        edge = edges.pop()
        edge_set.discard(edge)
        return edge

    def sample_absent() -> tuple | None:
        """A uniform-ish absent non-loop pair, or ``None`` when too dense."""
        if len(nodes) < 2:
            return None
        for _ in range(8 * batch_size + 8):
            u = nodes[rng.randrange(len(nodes))]
            v = nodes[rng.randrange(len(nodes))]
            if u != v and (u, v) not in edge_set:
                return (u, v)
        return None

    batches: list[tuple[list[tuple], list[tuple]]] = []
    for _ in range(steps):
        added: list[tuple] = []
        removed: list[tuple] = []
        batch_edges: set[tuple] = set()
        for _ in range(batch_size):
            pair: tuple | None = None
            if rng.random() < p_add:
                if nodes and rng.random() < p_new_node:
                    fresh += 1
                    label = f"update_node_{fresh}"
                    anchor = nodes[rng.randrange(len(nodes))]
                    pair = (label, anchor) if rng.random() < 0.5 else (anchor, label)
                    nodes.append(label)
                else:
                    pair = sample_absent()
                if pair is not None and pair not in batch_edges:
                    added.append(pair)
                    batch_edges.add(pair)
                    edges.append(pair)
                    edge_set.add(pair)
                    continue
            if edges:
                index = rng.randrange(len(edges))
                if edges[index] not in batch_edges:
                    pair = pop_edge(index)
                    removed.append(pair)
                    batch_edges.add(pair)
        batches.append((added, removed))
    return batches


# ----------------------------------------------------------------------
# deterministic families (mostly for tests and docs)
# ----------------------------------------------------------------------
def complete_bipartite_digraph(s_size: int, t_size: int) -> DiGraph:
    """All edges from ``{s0..}`` to ``{t0..}``: density ``sqrt(s_size * t_size)``."""
    require_non_negative_int(s_size, "s_size")
    require_non_negative_int(t_size, "t_size")
    graph = DiGraph()
    sources = [f"s{i}" for i in range(s_size)]
    targets = [f"t{j}" for j in range(t_size)]
    for label in sources + targets:
        graph.add_node(label)
    for u in sources:
        for v in targets:
            graph.add_edge(u, v)
    return graph


def star_digraph(n_leaves: int, outward: bool = True) -> DiGraph:
    """Star with a hub and ``n_leaves`` leaves; edges point away from the hub if ``outward``."""
    require_non_negative_int(n_leaves, "n_leaves")
    graph = DiGraph()
    graph.add_node("hub")
    for i in range(n_leaves):
        leaf = f"leaf{i}"
        graph.add_node(leaf)
        if outward:
            graph.add_edge("hub", leaf)
        else:
            graph.add_edge(leaf, "hub")
    return graph


def path_digraph(n: int) -> DiGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    require_non_negative_int(n, "n")
    graph = DiGraph()
    for node in range(n):
        graph.add_node(node)
    for node in range(n - 1):
        graph.add_edge(node, node + 1)
    return graph


def cycle_digraph(n: int) -> DiGraph:
    """Directed cycle on ``n`` nodes (empty graph for ``n < 2``)."""
    require_non_negative_int(n, "n")
    graph = DiGraph()
    for node in range(n):
        graph.add_node(node)
    if n >= 2:
        for node in range(n):
            graph.add_edge(node, (node + 1) % n)
    return graph


def expected_planted_density(s_size: int, t_size: int, p_dense: float) -> float:
    """Expected density of the planted block of :func:`planted_dds_digraph`."""
    if s_size == 0 or t_size == 0:
        return 0.0
    return p_dense * math.sqrt(s_size * t_size)
