"""A simple, unweighted, directed graph with label/index duality.

Design notes
------------
The densest-subgraph algorithms in :mod:`repro.core` spend essentially all of
their time iterating adjacency lists of induced subgraphs, so the class keeps
two representations:

* a *label* view for users (any hashable node identifiers, insertion order
  preserved), and
* an *index* view for algorithms (nodes ``0..n-1``, adjacency as
  ``list[list[int]]``), built lazily and cached.

The graph is **simple**: parallel edges are collapsed and self-loops are kept
only if explicitly allowed (the DDS density definition permits self-loops,
because a vertex may belong to both ``S`` and ``T``; the paper's datasets are
simple graphs, so loops are dropped by default but can be retained).
"""

from __future__ import annotations

import hashlib
from itertools import count
from typing import Hashable, Iterable, Iterator, Sequence

from repro.exceptions import GraphError

NodeLabel = Hashable

#: Process-wide monotone counter backing :attr:`DiGraph.state_token`.  Every
#: construction and every structural mutation draws a fresh value, so a token
#: uniquely identifies one (graph instance, structural state) pair — even
#: after an instance is garbage collected and its ``id()`` recycled.
_STATE_TOKENS = count(1)


class DiGraph:
    """An unweighted simple directed graph.

    Parameters
    ----------
    allow_self_loops:
        When ``False`` (default) edges of the form ``(u, u)`` are silently
        dropped, matching the data model of the paper's datasets.

    Examples
    --------
    >>> g = DiGraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
    >>> g.num_nodes, g.num_edges
    (3, 3)
    >>> sorted(g.successors("a"))
    ['b', 'c']
    """

    __slots__ = (
        "_allow_self_loops",
        "_labels",
        "_index_of",
        "_out_sets",
        "_in_sets",
        "_num_edges",
        "_out_adj_cache",
        "_in_adj_cache",
        "_state_token",
        "_fingerprint_cache",
    )

    def __init__(self, allow_self_loops: bool = False) -> None:
        self._allow_self_loops = bool(allow_self_loops)
        self._labels: list[NodeLabel] = []
        self._index_of: dict[NodeLabel, int] = {}
        self._out_sets: list[set[int]] = []
        self._in_sets: list[set[int]] = []
        self._num_edges = 0
        self._out_adj_cache: list[list[int]] | None = None
        self._in_adj_cache: list[list[int]] | None = None
        self._state_token = next(_STATE_TOKENS)
        self._fingerprint_cache: tuple[int, str] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[NodeLabel, NodeLabel]],
        nodes: Iterable[NodeLabel] | None = None,
        allow_self_loops: bool = False,
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs.

        ``nodes`` may list additional isolated nodes (or fix the node order).
        """
        graph = cls(allow_self_loops=allow_self_loops)
        if nodes is not None:
            for node in nodes:
                graph.add_node(node)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_csr_arrays(
        cls,
        labels: Sequence[NodeLabel],
        starts: Sequence[int],
        targets: Sequence[int],
        *,
        allow_self_loops: bool = False,
    ) -> "DiGraph":
        """Rebuild a graph from flat CSR arrays in one pass.

        The bulk counterpart of :meth:`from_edges` for hydrating a graph
        from an already-serialised adjacency — row ``i`` of the
        out-adjacency is ``targets[starts[i]:starts[i + 1]]``.  The arrays
        are only *read* (any int sequence works, including zero-copy
        ``memoryview`` casts over a shared-memory segment — the worker
        attach path in :mod:`repro.service.shm`), and node order follows
        ``labels``, so a graph round-tripped through its CSR keeps its
        label-to-index mapping and therefore its
        :meth:`content_fingerprint`.  Malformed input (non-monotone row
        starts, out-of-range targets, duplicate labels or edges, or a
        self-loop under ``allow_self_loops=False``) raises
        :class:`~repro.exceptions.GraphError`.
        """
        graph = cls(allow_self_loops=allow_self_loops)
        n = len(labels)
        if len(starts) != n + 1 or starts[0] != 0 or starts[n] != len(targets):
            raise GraphError(
                f"CSR starts must have {n + 1} monotone entries covering "
                f"{len(targets)} targets"
            )
        graph._labels = list(labels)
        graph._index_of = {label: index for index, label in enumerate(graph._labels)}
        if len(graph._index_of) != n:
            raise GraphError("CSR labels contain duplicates")
        out_sets: list[set[int]] = []
        in_sets: list[set[int]] = [set() for _ in range(n)]
        num_edges = 0
        for ui in range(n):
            lo, hi = starts[ui], starts[ui + 1]
            if hi < lo:
                raise GraphError(f"CSR starts decrease at row {ui}")
            row = set(targets[lo:hi])
            if len(row) != hi - lo:
                raise GraphError(f"CSR row {ui} contains duplicate targets")
            if ui in row and not allow_self_loops:
                raise GraphError(f"CSR row {ui} holds a self-loop but loops are disabled")
            out_sets.append(row)
            num_edges += len(row)
            for vi in row:
                if not 0 <= vi < n:
                    raise GraphError(f"CSR target {vi} out of range [0, {n})")
                in_sets[vi].add(ui)
        graph._out_sets = out_sets
        graph._in_sets = in_sets
        graph._num_edges = num_edges
        return graph

    def add_node(self, label: NodeLabel) -> int:
        """Add a node (no-op if present) and return its internal index."""
        index = self._index_of.get(label)
        if index is not None:
            return index
        index = len(self._labels)
        self._labels.append(label)
        self._index_of[label] = index
        self._out_sets.append(set())
        self._in_sets.append(set())
        self._invalidate_cache()
        return index

    def add_edge(self, u: NodeLabel, v: NodeLabel) -> bool:
        """Add the directed edge ``u -> v``.

        Returns ``True`` if the edge was new, ``False`` if it already existed
        or was a rejected self-loop.
        """
        ui = self.add_node(u)
        vi = self.add_node(v)
        if ui == vi and not self._allow_self_loops:
            return False
        if vi in self._out_sets[ui]:
            return False
        self._out_sets[ui].add(vi)
        self._in_sets[vi].add(ui)
        self._num_edges += 1
        self._invalidate_cache()
        return True

    def remove_edge(self, u: NodeLabel, v: NodeLabel) -> None:
        """Remove the directed edge ``u -> v`` (raises if absent)."""
        ui = self._require_index(u)
        vi = self._require_index(v)
        if vi not in self._out_sets[ui]:
            raise GraphError(f"edge {u!r} -> {v!r} does not exist")
        self._out_sets[ui].discard(vi)
        self._in_sets[vi].discard(ui)
        self._num_edges -= 1
        self._invalidate_cache()

    def copy(self) -> "DiGraph":
        """Return a deep copy of this graph (labels shared, structure copied)."""
        clone = DiGraph(allow_self_loops=self._allow_self_loops)
        clone._labels = list(self._labels)
        clone._index_of = dict(self._index_of)
        clone._out_sets = [set(adj) for adj in self._out_sets]
        clone._in_sets = [set(adj) for adj in self._in_sets]
        clone._num_edges = self._num_edges
        cached = self._fingerprint_cache
        if cached is not None and cached[0] == self._state_token:
            # The clone has identical content, so the digest carries over
            # (under the clone's own state token — tokens are never shared).
            clone._fingerprint_cache = (clone._state_token, cached[1])
        return clone

    def remove_node(self, label: NodeLabel) -> None:
        """Remove a node and all its incident edges (raises if absent).

        Later nodes shift down by one internal index, exactly as if the graph
        had been rebuilt without ``label``; all caches (adjacency, state
        token, fingerprint) are invalidated, matching :meth:`remove_edge`.
        """
        index = self._require_index(label)
        removed = len(self._out_sets[index]) + len(self._in_sets[index])
        if index in self._out_sets[index]:
            removed -= 1  # a self-loop sits in both sets but counts once
        self._num_edges -= removed
        for vi in self._out_sets[index]:
            self._in_sets[vi].discard(index)
        for ui in self._in_sets[index]:
            self._out_sets[ui].discard(index)
        del self._labels[index]
        del self._out_sets[index]
        del self._in_sets[index]
        self._index_of = {lab: i for i, lab in enumerate(self._labels)}
        shift = lambda s: {v - 1 if v > index else v for v in s}  # noqa: E731
        self._out_sets = [shift(s) for s in self._out_sets]
        self._in_sets = [shift(s) for s in self._in_sets]
        self._invalidate_cache()

    def apply_delta(
        self,
        added: Iterable[tuple[NodeLabel, NodeLabel]] = (),
        removed: Iterable[tuple[NodeLabel, NodeLabel]] = (),
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """Apply a batch of edge updates with a *single* state-token bump.

        Removals are applied first (each must exist, like
        :meth:`remove_edge`), then additions (duplicates and rejected
        self-loops are skipped, like :meth:`add_edge`; unknown endpoint
        labels are appended as new nodes).  Unlike a loop of single-edge
        mutations, the adjacency caches are patched in place for the touched
        rows only, and the state token changes exactly once — so downstream
        caches see one delta, not one invalidation per edge.

        Returns the *effective* ``(added, removed)`` edge lists as internal
        index pairs (indices are stable: nodes are only ever appended).
        """
        removed_pairs: list[tuple[int, int]] = []
        for u, v in removed:
            ui = self._require_index(u)
            vi = self._require_index(v)
            if vi not in self._out_sets[ui]:
                raise GraphError(f"edge {u!r} -> {v!r} does not exist")
            self._out_sets[ui].discard(vi)
            self._in_sets[vi].discard(ui)
            self._num_edges -= 1
            removed_pairs.append((ui, vi))

        added_pairs: list[tuple[int, int]] = []
        nodes_before = len(self._labels)
        for u, v in added:
            ui = self._delta_node(u)
            vi = self._delta_node(v)
            if ui == vi and not self._allow_self_loops:
                continue
            if vi in self._out_sets[ui]:
                continue
            self._out_sets[ui].add(vi)
            self._in_sets[vi].add(ui)
            self._num_edges += 1
            added_pairs.append((ui, vi))

        if self._out_adj_cache is not None:
            for ui in {p[0] for p in added_pairs} | {p[0] for p in removed_pairs}:
                self._out_adj_cache[ui] = sorted(self._out_sets[ui])
        if self._in_adj_cache is not None:
            for vi in {p[1] for p in added_pairs} | {p[1] for p in removed_pairs}:
                self._in_adj_cache[vi] = sorted(self._in_sets[vi])
        if added_pairs or removed_pairs or len(self._labels) != nodes_before:
            self._fingerprint_cache = None
            self._state_token = next(_STATE_TOKENS)
        return added_pairs, removed_pairs

    def _delta_node(self, label: NodeLabel) -> int:
        """``add_node`` without the cache invalidation (``apply_delta`` only)."""
        index = self._index_of.get(label)
        if index is not None:
            return index
        index = len(self._labels)
        self._labels.append(label)
        self._index_of[label] = index
        self._out_sets.append(set())
        self._in_sets.append(set())
        if self._out_adj_cache is not None:
            self._out_adj_cache.append([])
        if self._in_adj_cache is not None:
            self._in_adj_cache.append([])
        return index

    # ------------------------------------------------------------------
    # basic queries (label view)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._num_edges

    @property
    def allow_self_loops(self) -> bool:
        """Whether self-loops are stored."""
        return self._allow_self_loops

    @property
    def state_token(self) -> int:
        """Opaque token identifying this graph's current structural state.

        The token changes on every node/edge addition or removal and is never
        shared between two distinct graph instances (or two states of the same
        instance), which makes it a safe cache key for derived structures such
        as decision networks (:mod:`repro.core.network_cache`).
        """
        return self._state_token

    def content_fingerprint(self) -> str:
        """Stable hex digest of this graph's structural content.

        Unlike :attr:`state_token` — a process-local counter that never
        repeats across runs — the fingerprint depends only on the graph's
        content: the self-loop policy, the node labels in insertion order,
        and the edge set.  Two graphs built the same way in different
        processes share a fingerprint, which makes it the durable analogue
        of the state token and the key of the on-disk session store
        (:mod:`repro.service.store`).  Node *order* is deliberately part of
        the digest: algorithms break ties by internal index, so cached
        answers are only guaranteed to match byte-for-byte when the
        label-to-index mapping matches too.

        Computed in O(n + m log d) and cached per structural state.
        """
        cached = self._fingerprint_cache
        if cached is not None and cached[0] == self._state_token:
            return cached[1]
        hasher = hashlib.sha256()
        hasher.update(b"digraph/v1;loops=1;" if self._allow_self_loops else b"digraph/v1;loops=0;")
        for label in self._labels:
            encoded = f"{type(label).__name__}:{label!r}"
            hasher.update(b"\x00n\x00")
            hasher.update(encoded.encode("utf-8", "backslashreplace"))
        for ui, targets in enumerate(self._out_sets):
            for vi in sorted(targets):
                hasher.update(b"\x00e\x00%d>%d" % (ui, vi))
        digest = hasher.hexdigest()
        self._fingerprint_cache = (self._state_token, digest)
        return digest

    def nodes(self) -> list[NodeLabel]:
        """All node labels in insertion order."""
        return list(self._labels)

    def edges(self) -> Iterator[tuple[NodeLabel, NodeLabel]]:
        """Iterate over ``(source, target)`` label pairs."""
        for ui, targets in enumerate(self._out_sets):
            u = self._labels[ui]
            for vi in targets:
                yield (u, self._labels[vi])

    def has_node(self, label: NodeLabel) -> bool:
        """Whether ``label`` is a node of this graph."""
        return label in self._index_of

    def has_edge(self, u: NodeLabel, v: NodeLabel) -> bool:
        """Whether the directed edge ``u -> v`` exists."""
        ui = self._index_of.get(u)
        vi = self._index_of.get(v)
        if ui is None or vi is None:
            return False
        return vi in self._out_sets[ui]

    def successors(self, label: NodeLabel) -> list[NodeLabel]:
        """Out-neighbours of ``label`` (as labels)."""
        ui = self._require_index(label)
        return [self._labels[vi] for vi in self._out_sets[ui]]

    def predecessors(self, label: NodeLabel) -> list[NodeLabel]:
        """In-neighbours of ``label`` (as labels)."""
        vi = self._require_index(label)
        return [self._labels[ui] for ui in self._in_sets[vi]]

    def out_degree(self, label: NodeLabel) -> int:
        """Out-degree of ``label``."""
        return len(self._out_sets[self._require_index(label)])

    def in_degree(self, label: NodeLabel) -> int:
        """In-degree of ``label``."""
        return len(self._in_sets[self._require_index(label)])

    # ------------------------------------------------------------------
    # index view (used by algorithms)
    # ------------------------------------------------------------------
    def index_of(self, label: NodeLabel) -> int:
        """Internal index of ``label`` (raises :class:`GraphError` if absent)."""
        return self._require_index(label)

    def label_of(self, index: int) -> NodeLabel:
        """Label of internal node ``index``."""
        return self._labels[index]

    def labels_of(self, indices: Iterable[int]) -> list[NodeLabel]:
        """Labels of a sequence of internal indices, preserving order."""
        return [self._labels[i] for i in indices]

    def indices_of(self, labels: Iterable[NodeLabel]) -> list[int]:
        """Internal indices of a sequence of labels, preserving order."""
        return [self._require_index(label) for label in labels]

    @property
    def out_adj(self) -> list[list[int]]:
        """Out-adjacency lists indexed by internal node index (cached)."""
        if self._out_adj_cache is None:
            self._out_adj_cache = [sorted(adj) for adj in self._out_sets]
        return self._out_adj_cache

    @property
    def in_adj(self) -> list[list[int]]:
        """In-adjacency lists indexed by internal node index (cached)."""
        if self._in_adj_cache is None:
            self._in_adj_cache = [sorted(adj) for adj in self._in_sets]
        return self._in_adj_cache

    def out_degrees(self) -> list[int]:
        """Out-degrees indexed by internal node index."""
        return [len(adj) for adj in self._out_sets]

    def in_degrees(self) -> list[int]:
        """In-degrees indexed by internal node index."""
        return [len(adj) for adj in self._in_sets]

    def max_out_degree(self) -> int:
        """Maximum out-degree (0 for an empty graph)."""
        return max((len(adj) for adj in self._out_sets), default=0)

    def max_in_degree(self) -> int:
        """Maximum in-degree (0 for an empty graph)."""
        return max((len(adj) for adj in self._in_sets), default=0)

    def edge_indices(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ``(source_index, target_index)`` pairs."""
        for ui, targets in enumerate(self._out_sets):
            for vi in targets:
                yield (ui, vi)

    # ------------------------------------------------------------------
    # subgraph extraction
    # ------------------------------------------------------------------
    def count_edges_between(self, sources: Sequence[int], targets: Sequence[int]) -> int:
        """Number of edges from index-set ``sources`` into index-set ``targets``.

        This is ``|E(S, T)|`` in the paper's notation and is the quantity the
        Kannan–Vinay density is built from.
        """
        target_set = set(targets)
        count = 0
        for ui in sources:
            out = self._out_sets[ui]
            if len(out) <= len(target_set):
                count += sum(1 for vi in out if vi in target_set)
            else:
                count += sum(1 for vi in target_set if vi in out)
        return count

    def edges_between(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> list[tuple[int, int]]:
        """All edges (as index pairs) from ``sources`` into ``targets``."""
        target_set = set(targets)
        found: list[tuple[int, int]] = []
        for ui in sources:
            for vi in self._out_sets[ui]:
                if vi in target_set:
                    found.append((ui, vi))
        return found

    def subgraph(self, labels: Iterable[NodeLabel]) -> "DiGraph":
        """Node-induced subgraph on ``labels`` (keeps isolated nodes)."""
        keep = [self._require_index(label) for label in labels]
        keep_set = set(keep)
        sub = DiGraph(allow_self_loops=self._allow_self_loops)
        for index in keep:
            sub.add_node(self._labels[index])
        for ui in keep:
            for vi in self._out_sets[ui]:
                if vi in keep_set:
                    sub.add_edge(self._labels[ui], self._labels[vi])
        return sub

    def reverse(self) -> "DiGraph":
        """Graph with every edge direction flipped."""
        rev = DiGraph(allow_self_loops=self._allow_self_loops)
        for label in self._labels:
            rev.add_node(label)
        for ui, vi in self.edge_indices():
            rev.add_edge(self._labels[vi], self._labels[ui])
        return rev

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def __contains__(self, label: NodeLabel) -> bool:
        return label in self._index_of

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(n={self.num_nodes}, m={self.num_edges})"

    def _require_index(self, label: NodeLabel) -> int:
        index = self._index_of.get(label)
        if index is None:
            raise GraphError(f"node {label!r} is not in the graph")
        return index

    def _invalidate_cache(self) -> None:
        self._out_adj_cache = None
        self._in_adj_cache = None
        self._state_token = next(_STATE_TOKENS)
