"""The service tier: batch planning, concurrent execution, persistent state.

Everything above a single :class:`~repro.session.DDSSession` lives here —
the layer that turns the one-process session API into a serving system:

* :mod:`repro.service.queries` — the JSON batch-query vocabulary shared by
  the CLI and the executor;
* :mod:`repro.service.planner` — cache-aware reordering of a query batch
  (graph affinity, approx-before-exact phases, family grouping) with an
  explain mode;
* :mod:`repro.service.executor` — a pool of graph-affine sessions (threads
  by default, shared-memory worker *processes* with ``process_pool=True``)
  executing a plan with per-query timing and aggregated cache counters;
* :mod:`repro.service.shm` — named shared-memory graph segments (CSR +
  seeded degree arrays) that process-pool workers attach to zero-copy;
* :mod:`repro.service.store` — a versioned, checksummed on-disk store of
  session warm state keyed by graph content fingerprint, so warm caches
  survive the process and can be shared between workers.

Quickstart::

    from repro.service import BatchExecutor, SessionStore, plan_batch

    plan = plan_batch(queries, default_graph_key="wiki")
    report = BatchExecutor(
        {"wiki": graph}, store=SessionStore(".dds-store")
    ).execute(plan)
    payloads = report.results_in_input_order()
    print(plan.explain(), report.realized_cache_hits())
"""

from repro.service.executor import BatchExecutor, BatchReport, QueryExecution
from repro.service.planner import BatchPlan, PlannedQuery, ShardMap, plan_batch
from repro.service.queries import BATCH_QUERY_KINDS, payload_answer, run_batch_query
from repro.service.shm import process_pool_available
from repro.service.store import STORE_SCHEMA_VERSION, SessionStore

__all__ = [
    "BATCH_QUERY_KINDS",
    "BatchExecutor",
    "BatchPlan",
    "BatchReport",
    "PlannedQuery",
    "QueryExecution",
    "STORE_SCHEMA_VERSION",
    "SessionStore",
    "ShardMap",
    "payload_answer",
    "plan_batch",
    "process_pool_available",
    "run_batch_query",
]
