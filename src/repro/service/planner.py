"""Cache-aware batch planner: reorder a query list to maximise state reuse.

``dds-repro batch`` historically executed its query file top to bottom.
File order is rarely cache-friendly: queries against the same graph end up
interleaved with other graphs' queries, repeated probes drift apart until
the LRU network cache has evicted the network they could have shared, and
exact solvers run before the cheap approximations that would have populated
core state.  The planner reorders the batch so that the session and network
caches see the *same* requests at the *smallest possible reuse distance* —
per-query results are bit-identical under any order (pinned by the
permutation property test); only the amount of repeated work changes.

Heuristics, in priority order
-----------------------------
1. **Graph affinity** — all queries for one graph become one contiguous
   *lane*, executed on one session (and one executor thread).  Lanes keep
   first-appearance order, so single-graph batches stay deterministic.
2. **Approx-before-exact phases** — within a lane, queries run in phases:
   cheap structural queries and the peel/core approximations first (they
   populate degree arrays, [x, y]-core state, and density bounds), then
   fixed-ratio probes (they build and warm decision networks), then the
   flow-backed exact methods that benefit from all of the above.
3. **Family grouping** — within a phase, queries with the same signature
   (kind, method, config fields) become adjacent, so an identical repeat is
   served while its predecessor's state — result-cache entry, decision
   network, residual flow, push-relabel heights — is still resident (reuse
   distance 0, immune to LRU eviction).  Distinct families keep
   first-appearance order; within a family, file order is preserved.

The plan records which positions moved and predicts the cache hits the
reordering protects; :meth:`BatchPlan.explain` renders both, and the
executor fills in the realised counters so predicted-vs-realised is one
``--explain`` flag away.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.method_registry import get_method_spec
from repro.exceptions import AlgorithmError, BatchQueryError, ConfigError

#: Phase indices of heuristic 2 (smaller runs earlier).
PHASE_SEED = 0
PHASE_PROBE = 1
PHASE_EXACT = 2

_PHASE_NAMES = {PHASE_SEED: "seed", PHASE_PROBE: "probe", PHASE_EXACT: "exact"}


@dataclass(frozen=True)
class PlannedQuery:
    """One batch entry with its planning metadata.

    ``index`` is the entry's position in the *input* file — payloads are
    re-assembled in input order no matter how the plan shuffled execution.
    """

    index: int
    graph_key: str
    spec: dict[str, Any] = field(hash=False)
    phase: int = PHASE_EXACT
    family: str = ""


@dataclass
class BatchPlan:
    """An execution order over a batch, plus the planner's reasoning."""

    entries: list[PlannedQuery]
    planned: bool
    moves: int
    predicted_result_cache_hits: int
    predicted_network_cache_hits: int

    @property
    def lanes(self) -> dict[str, list[PlannedQuery]]:
        """Entries grouped by graph key, preserving plan order within each lane."""
        lanes: dict[str, list[PlannedQuery]] = {}
        for entry in self.entries:
            lanes.setdefault(entry.graph_key, []).append(entry)
        return lanes

    def explain(self) -> dict[str, Any]:
        """JSON-ready description of the plan (the ``--explain`` payload)."""
        groups: list[dict[str, Any]] = []
        for entry in self.entries:
            if (
                groups
                and groups[-1]["graph"] == entry.graph_key
                and groups[-1]["phase"] == _PHASE_NAMES[entry.phase]
                and groups[-1]["family"] == entry.family
            ):
                groups[-1]["queries"].append(entry.index)
            else:
                groups.append(
                    {
                        "graph": entry.graph_key,
                        "phase": _PHASE_NAMES[entry.phase],
                        "family": entry.family,
                        "queries": [entry.index],
                    }
                )
        return {
            "planned": self.planned,
            "queries": len(self.entries),
            "moves": self.moves,
            "execution_order": [entry.index for entry in self.entries],
            "groups": groups,
            "predicted": {
                "result_cache_hits": self.predicted_result_cache_hits,
                "network_cache_hits": self.predicted_network_cache_hits,
            },
        }


@dataclass(frozen=True)
class ShardMap:
    """Content-fingerprint shard routing for the process-pool executor.

    Routes every graph to one of ``num_shards`` workers by hashing its
    :meth:`content_fingerprint
    <repro.graph.digraph.DiGraph.content_fingerprint>` — *not* its graph
    key, its ``state_token``, or its position in the batch.  Because the
    fingerprint is content-derived and process-independent, the routing is
    stable across batches, executor instances, and machines: the same graph
    always lands on the same shard index, so the worker owning shard ``i``
    is the only writer of its graphs' :class:`~repro.service.store.
    SessionStore` directories *within* an executor run (concurrent
    executors remain safe under the store's per-graph ``fcntl`` locks).
    This is the single-machine form of the ROADMAP's multi-machine routing:
    replacing "worker index" with "machine" changes nothing else.
    """

    num_shards: int

    def __post_init__(self) -> None:
        if not isinstance(self.num_shards, int) or self.num_shards < 1:
            raise ConfigError(f"num_shards must be a positive int, got {self.num_shards!r}")

    def shard_of(self, fingerprint: str) -> int:
        """Deterministic shard index of a graph content fingerprint."""
        try:
            prefix = int(fingerprint[:16], 16)
        except (TypeError, ValueError):
            raise ConfigError(f"not a content fingerprint: {fingerprint!r}")
        return prefix % self.num_shards

    def assign(
        self, fingerprints: Mapping[str, str], *, collapse: bool = False
    ) -> dict[int, list[str]]:
        """Group ``graph_key -> fingerprint`` into ``shard -> [graph_keys]``.

        Only non-empty shards appear; within a shard, keys keep the
        mapping's iteration order (lane/plan order for the executor).

        With ``collapse=True``, hash collisions that leave some shards
        empty while others hold several *distinct* fingerprints are
        re-spread: each overfull shard keeps its smallest fingerprint and
        donates the rest — in fingerprint order — to the empty shards in
        ascending index order, until either side runs out.  The result has
        ``min(num_shards, distinct fingerprints)`` non-empty shards, so a
        pool sized to ``num_shards`` anonymous workers never idles a slot
        while another serialises two graphs.  Collapsing is still a pure
        function of the fingerprints (no batch-order dependence), but it
        re-routes graphs relative to :meth:`shard_of` — use it only where
        shard identity is anonymous (the process pool), never where a
        shard index is pinned to an owner across batches (remote hosts,
        store-shard ownership).
        """
        shards: dict[int, list[str]] = {}
        for graph_key, fingerprint in fingerprints.items():
            shards.setdefault(self.shard_of(fingerprint), []).append(graph_key)
        if not collapse:
            return shards
        empty = sorted(set(range(self.num_shards)) - set(shards))
        if not empty:
            return shards
        donations: list[tuple[int, list[str]]] = []
        for shard in sorted(shards):
            by_fingerprint: dict[str, list[str]] = {}
            for graph_key in shards[shard]:
                by_fingerprint.setdefault(fingerprints[graph_key], []).append(graph_key)
            for fingerprint in sorted(by_fingerprint)[1:]:
                donations.append((shard, by_fingerprint[fingerprint]))
        for target, (source, graph_keys) in zip(empty, donations):
            shards[source] = [key for key in shards[source] if key not in graph_keys]
            shards[target] = graph_keys
        return shards


def _family_signature(spec: dict[str, Any]) -> str:
    """Canonical (kind, method, config) signature — identical queries collide."""
    fields = {key: value for key, value in spec.items() if key != "dataset"}
    try:
        return json.dumps(fields, sort_keys=True, default=str)
    except TypeError:  # pragma: no cover - JSON input can't trigger this
        return repr(sorted(fields.items(), key=lambda item: item[0]))


def _phase_of(spec: dict[str, Any]) -> int:
    """Phase assignment (heuristic 2).  Unknown methods sort last; the
    executor — not the planner — owns rejecting them with a real error."""
    kind = spec.get("query", "densest")
    if kind in ("summary", "xy-core", "max-core"):
        return PHASE_SEED
    if kind == "fixed-ratio":
        return PHASE_PROBE
    method = str(spec.get("method", "auto"))
    if method == "auto":
        return PHASE_EXACT
    try:
        method_spec = get_method_spec(method)
    except AlgorithmError:
        return PHASE_EXACT
    return PHASE_SEED if not method_spec.flow_backed else PHASE_EXACT


def plan_batch(
    queries: list[dict[str, Any]],
    *,
    default_graph_key: str = "default",
    planned: bool = True,
) -> BatchPlan:
    """Build a :class:`BatchPlan` over JSON batch entries.

    Each entry may route itself to a graph with a ``"dataset"`` field (see
    :mod:`repro.service.queries`); entries without one share
    ``default_graph_key`` — the graph the CLI was pointed at.  With
    ``planned=False`` the plan is the identity order (the ``--no-plan``
    baseline) but still carries lanes and predictions, so planned and
    unplanned runs are compared like for like.
    """
    if not isinstance(queries, list):
        raise BatchQueryError(
            f"a batch must be a list of query objects, got {type(queries).__name__}"
        )
    entries: list[PlannedQuery] = []
    for index, spec in enumerate(queries):
        if not isinstance(spec, dict):
            raise BatchQueryError(f"batch entries must be JSON objects, got: {spec!r}")
        graph_key = spec.get("dataset", default_graph_key)
        if not isinstance(graph_key, str) or not graph_key:
            raise BatchQueryError(
                f"batch entry {index} field 'dataset' must be a non-empty string, "
                f"got {graph_key!r}"
            )
        entries.append(
            PlannedQuery(
                index=index,
                graph_key=graph_key,
                spec=dict(spec),
                phase=_phase_of(spec),
                family=_family_signature(spec),
            )
        )

    ordered = entries
    if planned:
        # Stable sort on (lane, phase, family first-appearance): queries never
        # reorder *within* a family, lanes and families keep the file's
        # first-appearance order, so the plan is deterministic.
        lane_rank: dict[str, int] = {}
        family_rank: dict[tuple[str, int, str], int] = {}
        for entry in entries:
            lane_rank.setdefault(entry.graph_key, len(lane_rank))
            family_rank.setdefault((entry.graph_key, entry.phase, entry.family), len(family_rank))
        ordered = sorted(
            entries,
            key=lambda entry: (
                lane_rank[entry.graph_key],
                entry.phase,
                family_rank[(entry.graph_key, entry.phase, entry.family)],
                entry.index,
            ),
        )

    moves = sum(1 for position, entry in enumerate(ordered) if entry.index != position)
    # Predictions: an identical repeat of a result-cached kind is a result
    # cache hit; a repeated fixed-ratio probe re-serves its decision network.
    seen: dict[tuple[str, str], int] = {}
    predicted_results = 0
    predicted_networks = 0
    for entry in ordered:
        kind = entry.spec.get("query", "densest")
        key = (entry.graph_key, entry.family)
        repeats = seen.get(key, 0)
        if repeats:
            if kind in ("densest", "top-k"):
                predicted_results += 1
            elif kind == "fixed-ratio":
                predicted_networks += 1
        seen[key] = repeats + 1
    return BatchPlan(
        entries=ordered,
        planned=planned,
        moves=moves,
        predicted_result_cache_hits=predicted_results,
        predicted_network_cache_hits=predicted_networks,
    )
