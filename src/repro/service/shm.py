"""Shared-memory graph segments: publish a graph's CSR once, attach anywhere.

The process-pool executor (:mod:`repro.service.executor`) cannot pickle a
:class:`~repro.graph.digraph.DiGraph` per worker — that would copy every
adjacency set through a pipe for every lane.  Instead the parent *publishes*
each lane's graph into one named :class:`multiprocessing.shared_memory`
segment and workers *attach* to it by name: the CSR arrays are read in place
through zero-copy ``memoryview.cast("q")`` views (the same flat int64/float64
layout :meth:`repro.flow.network.FlowNetwork.numpy_csr` serves to the
vectorised backend), so the only per-worker materialisation is the Python
set representation ``DiGraph`` itself requires.

Segment layout (little-endian, all integers int64)::

    [ 0:64)                      header: MAGIC, VERSION, n, m, labels_bytes,
                                 allow_self_loops, 2 reserved words
    [64 : 64+8(n+1))             CSR row starts over the out-adjacency
    [.. : +8m)                   CSR targets (node indices)
    [.. : +8n)                   out-degree of every node
    [.. : +8n)                   in-degree of every node
    [.. : +labels_bytes)         pickled node-label list (insertion order)
    [.. : +64)                   ``content_fingerprint`` hex digest (ascii)

Degrees ride along so workers can seed their sessions
(:meth:`repro.session.DDSSession.seed_derived`) without an O(n + m) recompute
per lane; the trailing fingerprint lets :func:`attach_graph` verify — by
rebuilding and re-fingerprinting — that the attached bytes reproduce the
published graph bit for bit before any query runs on it.

What is deliberately *not* shared: decision networks, residual flows, and
push-relabel height stashes.  Their cache keys embed
:attr:`DiGraph.state_token <repro.graph.digraph.DiGraph.state_token>` — a
process-local counter — and ``retune`` mutates capacities in place, so
sharing them across processes would either alias mutable solver state or
require a cross-process token protocol.  Warm state crosses processes
through the :class:`~repro.service.store.SessionStore` instead, which is
already fingerprint-keyed and ``fcntl``-locked.

Hygiene: every published segment is tracked in a module registry until it is
unlinked, so tests (and operators) can assert a run left nothing behind in
``/dev/shm`` — see :func:`active_segment_names`.
"""

from __future__ import annotations

import os
import pickle
import secrets
import struct
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import StoreError
from repro.graph.digraph import DiGraph

try:  # pragma: no cover - exercised via the degradation lane
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without POSIX shm
    _shared_memory = None

try:  # pragma: no cover - exercised via the degradation lane
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    _fcntl = None

#: Environment knob forcing the no-shared-memory degradation path (the CI
#: lane sets it; operators can too, e.g. on a locked-down /dev/shm).
NO_SHM_ENV = "DDS_REPRO_NO_SHARED_MEMORY"

#: First header word of every segment ("DDSR" as an int64).
SEGMENT_MAGIC = 0x52534444

#: Bump on any layout change; attach refuses mismatched versions.
SEGMENT_VERSION = 1

_HEADER_WORDS = 8
_HEADER_BYTES = _HEADER_WORDS * 8
_FINGERPRINT_BYTES = 64

#: Registry of segments this process published and has not yet unlinked:
#: ``name -> GraphSegment``.  The hygiene invariant is that it is empty
#: whenever no batch is in flight.
_ACTIVE_SEGMENTS: dict[str, "GraphSegment"] = {}


def shared_memory_available() -> bool:
    """Whether named shared-memory segments can be used in this process."""
    return _shared_memory is not None and not os.environ.get(NO_SHM_ENV)


def fcntl_available() -> bool:
    """Whether ``fcntl`` advisory locks (the store's writer locks) exist."""
    return _fcntl is not None


def process_pool_available(*, need_store_locks: bool = False) -> tuple[bool, str | None]:
    """Gate of the executor's degradation ladder.

    Returns ``(True, None)`` when the process-pool path can run, else
    ``(False, reason)`` with a human-readable reason the executor records in
    its report before falling back to the thread/serial path.
    ``need_store_locks`` additionally requires ``fcntl`` — multiple worker
    processes writing one store shard are only safe under its per-graph
    advisory locks.
    """
    if _shared_memory is None:
        return False, "multiprocessing.shared_memory is unavailable on this platform"
    if os.environ.get(NO_SHM_ENV):
        return False, f"shared memory disabled by {NO_SHM_ENV}"
    if need_store_locks and not fcntl_available():
        return False, "fcntl advisory locks are unavailable (store writes would race)"
    return True, None


def active_segment_names() -> list[str]:
    """Names of segments published here and not yet unlinked (sorted)."""
    return sorted(_ACTIVE_SEGMENTS)


@dataclass
class GraphSegment:
    """A published graph: the parent-side handle to one shm segment."""

    name: str
    size: int
    fingerprint: str
    num_nodes: int
    num_edges: int
    _shm: Any = field(repr=False, default=None)
    _closed: bool = field(repr=False, default=False)
    _unlinked: bool = field(repr=False, default=False)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself stays alive)."""
        if self._shm is not None and not self._closed:
            self._shm.close()
            self._closed = True

    def unlink(self) -> None:
        """Close and remove the segment from the system; idempotent."""
        self.close()
        _ACTIVE_SEGMENTS.pop(self.name, None)
        if self._shm is not None and not self._unlinked:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - external cleanup
                pass
            self._unlinked = True


def publish_graph(graph: DiGraph, *, name_prefix: str = "dds") -> GraphSegment:
    """Map ``graph`` into a fresh named shared-memory segment.

    Returns the parent-side :class:`GraphSegment`; the caller owns the
    segment's lifetime and must :meth:`~GraphSegment.unlink` it (the
    executor does so in a ``finally``).  Raises
    :class:`~repro.exceptions.StoreError` when shared memory is unavailable
    — callers on the degradation ladder check
    :func:`process_pool_available` first.
    """
    if not shared_memory_available():
        raise StoreError("shared memory is unavailable; cannot publish graph segments")
    n = graph.num_nodes
    out_adj = graph.out_adj
    starts = [0] * (n + 1)
    targets: list[int] = []
    for index, row in enumerate(out_adj):
        targets.extend(row)
        starts[index + 1] = len(targets)
    m = len(targets)
    labels_blob = pickle.dumps(graph.nodes(), protocol=pickle.HIGHEST_PROTOCOL)
    fingerprint = graph.content_fingerprint().encode("ascii")
    if len(fingerprint) != _FINGERPRINT_BYTES:
        raise StoreError(
            f"unexpected fingerprint width {len(fingerprint)} (wanted {_FINGERPRINT_BYTES})"
        )
    size = (
        _HEADER_BYTES
        + 8 * (n + 1)
        + 8 * m
        + 8 * n
        + 8 * n
        + len(labels_blob)
        + _FINGERPRINT_BYTES
    )
    name = f"{name_prefix}-{os.getpid():x}-{secrets.token_hex(4)}"
    shm = _shared_memory.SharedMemory(name=name, create=True, size=size)
    try:
        buf = shm.buf
        buf[:_HEADER_BYTES] = struct.pack(
            "<8q",
            SEGMENT_MAGIC,
            SEGMENT_VERSION,
            n,
            m,
            len(labels_blob),
            1 if graph.allow_self_loops else 0,
            0,
            0,
        )
        offset = _HEADER_BYTES
        for chunk in (starts, targets):
            packed = struct.pack(f"<{len(chunk)}q", *chunk)
            buf[offset : offset + len(packed)] = packed
            offset += len(packed)
        for degrees in (graph.out_degrees(), graph.in_degrees()):
            packed = struct.pack(f"<{len(degrees)}q", *degrees)
            buf[offset : offset + len(packed)] = packed
            offset += len(packed)
        buf[offset : offset + len(labels_blob)] = labels_blob
        offset += len(labels_blob)
        buf[offset : offset + _FINGERPRINT_BYTES] = fingerprint
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    segment = GraphSegment(
        name=shm.name,  # the kernel may normalise the requested name
        size=size,
        fingerprint=fingerprint.decode("ascii"),
        num_nodes=n,
        num_edges=m,
        _shm=shm,
    )
    _ACTIVE_SEGMENTS[segment.name] = segment
    return segment


@dataclass
class AttachedGraph:
    """A worker-side view of a published graph segment.

    ``graph`` is rebuilt from the mapped CSR; ``derived`` maps
    :meth:`~repro.session.DDSSession.seed_derived` keyword names to the
    segment's degree views, ready for ``DDSSession.from_seeded``.  Call
    :meth:`close` when done — it releases the zero-copy views *before*
    dropping the mapping, which is the order ``memoryview`` requires.
    """

    graph: DiGraph
    derived: dict[str, Any]
    fingerprint: str
    _shm: Any = field(repr=False, default=None)
    _views: list[Any] = field(repr=False, default_factory=list)

    def close(self) -> None:
        """Release all exported views, then drop the mapping; idempotent."""
        for view in self._views:
            view.release()
        self._views.clear()
        self.derived = {}
        if self._shm is not None:
            self._shm.close()
            self._shm = None


def _attach_untracked(name: str):
    """Attach to a named segment without resource-tracker registration.

    CPython registers *attaching* processes with the shared-memory resource
    tracker too (bpo-39959): under ``spawn`` each worker's fresh tracker
    would then unlink the parent's live segments when the worker exits, and
    under ``fork`` a worker-side unregister would erase the parent's crash
    cleanup entry.  Ownership here is strictly parental, so workers attach
    with registration suppressed.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip(*args: Any, **kwargs: Any) -> None:
        """Swallow the attach-side registration of this one constructor."""

    resource_tracker.register = _skip
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_graph(name: str, *, verify: bool = True) -> AttachedGraph:
    """Attach to a segment published by :func:`publish_graph`.

    Rebuilds the :class:`~repro.graph.digraph.DiGraph` through zero-copy
    int64 views over the mapped CSR and returns it with the seeded degree
    arrays.  With ``verify=True`` (the default, and what workers use) the
    rebuilt graph's :meth:`content_fingerprint
    <repro.graph.digraph.DiGraph.content_fingerprint>` must equal the
    published one — the cross-process bit-identity guarantee starts with the
    graph itself.  Raises :class:`~repro.exceptions.StoreError` on a missing
    segment, malformed header, or fingerprint mismatch.
    """
    if not shared_memory_available():
        raise StoreError("shared memory is unavailable; cannot attach graph segments")
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        raise StoreError(f"no shared-memory segment named {name!r} (already unlinked?)")
    views: list[Any] = []
    try:
        buf = shm.buf
        if len(buf) < _HEADER_BYTES:
            raise StoreError(f"segment {name!r} is too small to hold a header")
        magic, version, n, m, labels_bytes, loops, _, _ = struct.unpack(
            "<8q", bytes(buf[:_HEADER_BYTES])
        )
        if magic != SEGMENT_MAGIC:
            raise StoreError(f"segment {name!r} is not a graph segment (bad magic)")
        if version != SEGMENT_VERSION:
            raise StoreError(
                f"segment {name!r} has layout version {version}, expected {SEGMENT_VERSION}"
            )
        offset = _HEADER_BYTES

        def int64_view(count: int):
            """Zero-copy int64 view over the next ``count`` words."""
            nonlocal offset
            view = buf[offset : offset + 8 * count].cast("q")
            views.append(view)
            offset += 8 * count
            return view

        starts = int64_view(n + 1)
        targets = int64_view(m)
        out_degrees = int64_view(n)
        in_degrees = int64_view(n)
        labels = pickle.loads(bytes(buf[offset : offset + labels_bytes]))
        offset += labels_bytes
        fingerprint = bytes(buf[offset : offset + _FINGERPRINT_BYTES]).decode("ascii")
        graph = DiGraph.from_csr_arrays(
            labels, starts, targets, allow_self_loops=bool(loops)
        )
        if verify and graph.content_fingerprint() != fingerprint:
            raise StoreError(
                f"segment {name!r} failed verification: rebuilt graph fingerprint "
                "does not match the published one"
            )
        return AttachedGraph(
            graph=graph,
            derived={"out_degrees": out_degrees, "in_degrees": in_degrees},
            fingerprint=fingerprint,
            _shm=shm,
            _views=views,
        )
    except BaseException:
        for view in views:
            view.release()
        shm.close()
        raise
