"""The batch query vocabulary: JSON query objects against one session.

This module owns the mapping from a JSON batch entry — ``{"query":
"densest", "method": "core-exact"}`` and friends — onto
:class:`~repro.session.DDSSession` calls and JSON-ready payloads.  It began
life inside the CLI's ``batch`` sub-command and moved here when the service
tier (:mod:`repro.service.planner` / :mod:`repro.service.executor`) started
executing the same entries concurrently: both the CLI and the executor now
speak exactly this vocabulary, so a query file means the same thing planned,
unplanned, or served by a pool of sessions.

Malformed entries raise :class:`~repro.exceptions.BatchQueryError` (a
:class:`~repro.exceptions.ReproError`), never ``SystemExit`` — rendering
errors for humans is the CLI's job, not the service tier's.

Query kinds
-----------
``densest``      one :meth:`DDSSession.densest_subgraph` call
``top-k``        greedy edge-disjoint pairs via :meth:`DDSSession.top_k`
``xy-core``      a specific [x, y]-core
``max-core``     the maximum-product core
``fixed-ratio``  bracket the fixed-ratio surrogate optimum
``summary``      structural statistics of the session graph

Every entry may carry ``"dataset": <registered name>`` to address a graph
other than the batch's default — the hook the executor's per-graph session
pool is built on.
"""

from __future__ import annotations

from typing import Any

from repro.core.results import DDSResult
from repro.exceptions import BatchQueryError, DeadlineExceeded
from repro.session import DDSSession

#: The query kinds understood by :func:`run_batch_query`, in documentation order.
BATCH_QUERY_KINDS = ("densest", "top-k", "xy-core", "max-core", "fixed-ratio", "summary")

#: Per-entry fields consumed by the service tier itself (graph routing),
#: stripped before a query spec reaches the session.
RESERVED_FIELDS = ("dataset",)

#: Payload keys that legitimately vary with execution order: instrumentation
#: counters whose values depend on what earlier queries left in the caches.
#: Everything else in a payload is the *answer* and must be bit-identical
#: under any plan permutation (pinned by the planner property test).
VOLATILE_PAYLOAD_KEYS = frozenset(
    {
        "flow_calls",
        "networks_built",
        "networks_reused",
        "warm_starts_used",
        "cold_starts",
        "batched_solves",
        "small_vector_solves",
    }
)


def payload_answer(payload: Any) -> Any:
    """The order-invariant part of a batch payload.

    Drops :data:`VOLATILE_PAYLOAD_KEYS` (recursively) so planned, unplanned,
    and permuted executions of the same batch can be compared for
    bit-identical *answers* without tripping over cache instrumentation.
    """
    if isinstance(payload, dict):
        return {
            key: payload_answer(value)
            for key, value in payload.items()
            if key not in VOLATILE_PAYLOAD_KEYS
        }
    if isinstance(payload, list):
        return [payload_answer(item) for item in payload]
    return payload


def find_payload(result: DDSResult, show_nodes: bool) -> dict[str, Any]:
    """JSON-ready payload of one densest-subgraph answer (CLI ``find`` shape)."""
    payload = {
        "method": result.method,
        "density": result.density,
        "edge_count": result.edge_count,
        "s_size": result.s_size,
        "t_size": result.t_size,
        "is_exact": result.is_exact,
    }
    if "flow_solver" in result.stats:
        payload["flow_solver"] = result.stats["flow_solver"]
    if show_nodes:
        payload["s_nodes"] = [str(node) for node in result.s_nodes]
        payload["t_nodes"] = [str(node) for node in result.t_nodes]
    return payload


def topk_payload(results: list[DDSResult]) -> list[dict[str, Any]]:
    """JSON-ready payload of a top-k answer list (CLI ``top-k`` shape)."""
    return [
        {
            "rank": rank,
            "density": result.density,
            "edge_count": result.edge_count,
            "s_size": result.s_size,
            "t_size": result.t_size,
        }
        for rank, result in enumerate(results, start=1)
    ]


def core_payload(
    session: DDSSession, x: int | None, y: int | None, show_nodes: bool
) -> dict[str, Any]:
    """JSON-ready payload of an [x, y]-core (or, with ``x is None``, the max core)."""
    if x is not None and y is not None:
        core = session.xy_core(x, y)
    else:
        core = session.max_xy_core()
    payload = {
        "x": core.x,
        "y": core.y,
        "s_size": len(core.s_nodes),
        "t_size": len(core.t_nodes),
        "empty": core.is_empty,
    }
    if show_nodes:
        graph = session.graph
        payload["s_nodes"] = [str(graph.label_of(i)) for i in core.s_nodes]
        payload["t_nodes"] = [str(graph.label_of(i)) for i in core.t_nodes]
    return payload


def _pop_required(spec: dict[str, Any], key: str, query: str) -> Any:
    """Pop ``key`` from a query spec, failing loudly when it is missing."""
    if key not in spec:
        raise BatchQueryError(f"batch query {query!r} requires a {key!r} field")
    return spec.pop(key)


def _as_number(value: Any, key: str, query: str, optional: bool = False) -> float | None:
    """Coerce a spec field to ``float`` (bools are rejected, not truthy 1.0)."""
    if optional and value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BatchQueryError(
            f"batch query {query!r} field {key!r} must be a number, got {value!r}"
        )
    return float(value)


def _reject_leftovers(spec: dict[str, Any], query: str) -> None:
    """Typo'd or inapplicable fields must error, not silently do nothing."""
    if spec:
        raise BatchQueryError(
            f"batch query {query!r} got unexpected fields: {', '.join(sorted(spec))}"
        )


def _merge_deadline(own: Any, lane: float | None) -> float | None:
    """Combine a query's own budget with the lane-level one (tightest wins)."""
    if own is None:
        return lane
    if lane is None:
        return float(own)
    return min(float(own), lane)


def _inject_deadline(
    session: DDSSession, method: str, spec: dict[str, Any], deadline_ms: float | None
) -> None:
    """Fold a lane-level budget into a densest/top-k spec, tightest-wins.

    Only flow-backed methods run min-cuts and hence have cancellation
    checkpoints; peeling methods finish in linear time, so a lane budget on
    them is a no-op rather than a :class:`ConfigError`.
    """
    if deadline_ms is None:
        return
    resolved, _ = session._resolve_method(method)
    if not resolved.flow_backed:
        return
    spec["deadline_ms"] = _merge_deadline(spec.get("deadline_ms"), deadline_ms)


def deadline_payload(error: DeadlineExceeded) -> dict[str, Any]:
    """JSON-ready payload of a deadline hit: the anytime partial, if any."""
    partial = getattr(error, "partial", None)
    if partial is not None and hasattr(partial, "to_payload"):
        return partial.to_payload()
    return {"deadline_exceeded": True, "is_exact": False}


def run_batch_query(
    session: DDSSession, spec: dict[str, Any], deadline_ms: float | None = None
) -> Any:
    """Execute one batch entry against ``session`` and return its payload.

    ``densest`` / ``top-k`` forward their remaining fields into the typed
    method configs (so unknown fields raise
    :class:`~repro.exceptions.ConfigError`); the other query kinds take a
    fixed field set and reject leftovers explicitly.  Service-tier routing
    fields (:data:`RESERVED_FIELDS`) are stripped first — by the time a spec
    reaches a session, the graph has already been chosen.

    ``deadline_ms`` is the *lane-level* remaining budget the executor or a
    shard daemon grants this entry; it is folded into flow-backed queries
    (tightest of lane budget and the entry's own ``deadline_ms`` wins), and
    a deadline hit is answered as the anytime payload
    (``{"deadline_exceeded": true, ...bounds...}``) instead of an exception
    — one slow entry must not take down the whole batch.
    """
    if not isinstance(spec, dict):
        raise BatchQueryError(f"batch entries must be JSON objects, got: {spec!r}")
    spec = dict(spec)
    for reserved in RESERVED_FIELDS:
        spec.pop(reserved, None)
    query = spec.pop("query", "densest")
    if query == "densest":
        method = spec.pop("method", "auto")
        show_nodes = bool(spec.pop("show_nodes", False))
        _inject_deadline(session, method, spec, deadline_ms)
        try:
            result = session.densest_subgraph(method, **spec)
        except DeadlineExceeded as error:
            return deadline_payload(error)
        return find_payload(result, show_nodes)
    if query == "top-k":
        method = spec.pop("method", "auto")
        k = spec.pop("k", 3)
        min_density = spec.pop("min_density", 0.0)
        _inject_deadline(session, method, spec, deadline_ms)
        try:
            results = session.top_k(k, method=method, min_density=min_density, **spec)
        except DeadlineExceeded as error:
            return deadline_payload(error)
        return topk_payload(results)
    if query == "xy-core":
        x = _pop_required(spec, "x", query)
        y = _pop_required(spec, "y", query)
        show_nodes = bool(spec.pop("show_nodes", False))
        _reject_leftovers(spec, query)
        return core_payload(session, x, y, show_nodes)
    if query == "max-core":
        show_nodes = bool(spec.pop("show_nodes", False))
        _reject_leftovers(spec, query)
        return core_payload(session, None, None, show_nodes)
    if query == "fixed-ratio":
        ratio = _as_number(_pop_required(spec, "ratio", query), "ratio", query)
        tolerance = _as_number(spec.pop("tolerance", None), "tolerance", query, optional=True)
        own_deadline = _as_number(
            spec.pop("deadline_ms", None), "deadline_ms", query, optional=True
        )
        _reject_leftovers(spec, query)
        try:
            outcome = session.fixed_ratio(
                ratio,
                tolerance=tolerance,
                deadline_ms=_merge_deadline(own_deadline, deadline_ms),
            )
        except DeadlineExceeded as error:
            payload = deadline_payload(error)
            outcome = getattr(error, "outcome", None)
            if outcome is not None:
                payload.update(
                    {"ratio": outcome.ratio, "lower": outcome.lower, "upper": outcome.upper}
                )
            return payload
        return {
            "ratio": outcome.ratio,
            "lower": outcome.lower,
            "upper": outcome.upper,
            "best_density": outcome.best_density,
            "flow_calls": outcome.flow_calls,
            "networks_built": outcome.networks_built,
            "networks_reused": outcome.networks_reused,
            "warm_starts_used": outcome.warm_starts_used,
            "cold_starts": outcome.cold_starts,
        }
    if query == "summary":
        _reject_leftovers(spec, query)
        return session.summary()
    raise BatchQueryError(
        f"unknown batch query {query!r}; expected one of: {', '.join(BATCH_QUERY_KINDS)}"
    )
