"""Concurrent batch executor: a pool of graph-affine sessions serving a plan.

The executor turns a :class:`~repro.service.planner.BatchPlan` into results.
Its unit of concurrency is the planner's *lane* — all queries for one graph,
in plan order.  Each lane gets its own :class:`~repro.session.DDSSession`
and runs sequentially on one worker; distinct lanes run concurrently.
Sessions are therefore **graph-affine**: no session, and none of its caches
(results, decision networks, residual flows), is ever touched by two
workers, so the session layer needs no locks and the warm-start machinery
keeps its strict solve ordering within a graph.

Three pool flavours share that lane contract:

* **Threads** (the default): cheap, in-process, but GIL-bound — lanes are
  pure-Python compute, so thread concurrency buys isolation and scheduling
  rather than parallel speed-up (BENCH_flow.json's jobs-4 speedup of 0.956
  measured exactly that).
* **Processes** (``process_pool=True``): the scale-out path.  The parent
  publishes each lane's graph into a named shared-memory segment once
  (:mod:`repro.service.shm`), routes lanes to workers by content
  fingerprint (:class:`~repro.service.planner.ShardMap` — each worker owns
  its graphs' store shard), and workers attach zero-copy, hydrate a
  session from the seeded derived arrays, and stream schema-2 result dicts
  back over a per-worker pipe.  Per-worker pipes plus ``Process.sentinel``
  waiting make crash detection deadlock-free: a SIGKILLed worker can never
  strand the batch the way a shared queue's poisoned write lock would.
  Crashed or poisoned lanes are retried on fresh workers up to
  ``max_retries`` times, then fall back to an inline (serial) run; lanes
  that needed any of that are marked *degraded* in the report's timings.
  When ``shared_memory`` (or ``fcntl``, with a store attached) is
  unavailable, ``execute`` degrades to the thread path and records why.
* **Remote daemons** (``remote_hosts=[...]``): the cross-machine path.
  Lanes are routed to :class:`~repro.net.daemon.ShardDaemon` processes by
  the same fingerprint :class:`~repro.service.planner.ShardMap` the
  process pool uses — each graph's answers live on exactly one daemon,
  which owns that graph's store shard and keeps its session resident
  between batches.  Graphs cross the wire as JSON documents
  (:func:`~repro.net.protocol.graph_to_wire`), answers come back as the
  same schema-2 result dicts the process workers pipe home, and warm
  state (residual flows, decision networks) never crosses at all.  A
  daemon that stays unreachable through the client's retry/backoff ladder
  costs only its lanes: they fall back to solving inline, marked degraded,
  with the failure counted in ``executor_stats["remote_failures"]``.

With a :class:`~repro.service.store.SessionStore` attached, each lane warms
its session from disk before the first query and persists the session's
state after the last one — the full compute-once/serve-everywhere loop.
Process workers open the same store root themselves; the fingerprint
routing gives each worker sole ownership of its graphs' store directories
within a run, and the store's per-graph ``fcntl`` locks keep concurrent
executors safe on top.

Instrumentation: every query is individually timed, each lane's
:meth:`~repro.session.DDSSession.cache_stats` snapshot is kept, and the
report aggregates them (plus the planner's predicted-vs-realised hit
counts) into the payload ``dds-repro batch --explain`` prints.  Process
runs additionally fill :attr:`BatchReport.executor_stats` with the worker
lifecycle counters (``workers_spawned``, ``worker_crashes``,
``worker_retries``, ``shm_bytes_mapped``, ``shm_segments``,
``degraded_lanes``).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.config import FlowConfig
from repro.exceptions import BatchQueryError, ConfigError, NetError
from repro.runtime import Deadline
from repro.graph.digraph import DiGraph
from repro.service import shm
from repro.service.planner import BatchPlan, PlannedQuery, ShardMap
from repro.service.queries import run_batch_query
from repro.service.store import SessionStore
from repro.session import DDSSession
from repro.session.session import DEFAULT_RESULT_CACHE_SIZE
from repro.utils.timer import time_call

#: Source of graphs for lane sessions: a mapping or a ``key -> DiGraph`` callable.
GraphProvider = Callable[[str], DiGraph]

#: Fault kinds the chaos hook understands (see ``fault_injection``).
FAULT_KINDS = ("sigkill", "error")


@dataclass
class QueryExecution:
    """One executed query: where it ran, what it returned, how long it took.

    ``worker`` is the process-pool worker id — or remote shard index —
    that produced the result (``None`` on the thread/serial paths and for
    inline fallbacks),
    ``attempts`` counts how many times the owning lane was dispatched, and
    ``degraded`` marks lanes that needed a retry or an inline fallback.
    """

    index: int
    graph_key: str
    kind: str
    seconds: float
    payload: Any
    worker: int | None = None
    attempts: int = 1
    degraded: bool = False


@dataclass
class BatchReport:
    """Everything a batch run produced, in both input and execution order."""

    executions: list[QueryExecution]
    session_stats: dict[str, dict[str, Any]]
    store_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    executor_stats: dict[str, Any] = field(default_factory=dict)

    def results_in_input_order(self) -> list[Any]:
        """Query payloads re-assembled in the order of the input file."""
        return [execution.payload for execution in sorted(self.executions, key=lambda e: e.index)]

    def aggregate_stats(self) -> dict[str, Any]:
        """Session cache counters summed across every lane.

        Keys match :meth:`DDSSession.cache_stats
        <repro.session.DDSSession.cache_stats>`, so single-session consumers
        (the CLI's historical ``"session"`` payload block) read the
        aggregate exactly like one session's counters.

        The merge iterates lanes (and counters within a lane) in sorted
        order, **not** completion order: float summation is not
        associative-commutative at the bit level, and pool completion order
        is nondeterministic — process pools especially so.  Sorting makes
        the aggregate a pure function of the per-lane snapshots, pinned by
        the determinism test in ``tests/test_service_procpool.py``.
        """
        totals: dict[str, Any] = {}
        for _, stats in sorted(self.session_stats.items()):
            for key, value in sorted(stats.items()):
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                totals[key] = totals.get(key, 0) + value
        return dict(sorted(totals.items()))

    def realized_cache_hits(self) -> dict[str, int]:
        """The realised counterpart of the planner's predictions."""
        totals = self.aggregate_stats()
        return {
            "result_cache_hits": int(totals.get("result_cache_hits", 0)),
            "network_cache_hits": int(totals.get("network_cache_hits", 0)),
        }

    def timings(self) -> list[dict[str, Any]]:
        """Per-query timing rows in execution order (for ``--explain``).

        Rows gain ``worker`` when a process-pool worker served the query
        and ``degraded``/``attempts`` when the owning lane needed a retry
        or an inline fallback; thread/serial rows keep the historical
        four-key shape.
        """
        rows: list[dict[str, Any]] = []
        for execution in self.executions:
            row: dict[str, Any] = {
                "index": execution.index,
                "graph": execution.graph_key,
                "query": execution.kind,
                "seconds": round(execution.seconds, 6),
            }
            if execution.worker is not None:
                row["worker"] = execution.worker
            if execution.degraded:
                row["degraded"] = True
                row["attempts"] = execution.attempts
            rows.append(row)
        return rows


def _inject_fault(fault: Mapping[str, Any] | None, graph_key: str, index: int) -> None:
    """Trigger the chaos hook when this query is its target (worker side)."""
    if not fault or fault.get("graph_key") != graph_key:
        return
    target = fault.get("index")
    if target is not None and target != index:
        return
    if fault.get("kind") == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    raise BatchQueryError(f"injected fault on lane {graph_key!r} query {index}")


def _process_worker_main(conn: Any, assignment: dict[str, Any]) -> None:
    """Entry point of one pool worker process.

    Serves every lane in ``assignment`` sequentially: attach the lane's
    shared-memory graph segment, hydrate a session from its seeded degree
    arrays, warm from the store shard this worker owns, run the lane's
    queries in plan order, save back, and send the lane's results — plain
    dicts, nothing process-local — up the pipe.  A lane that raises is
    reported as ``("lane-error", ...)`` and the worker moves on; lifecycle
    messages are ``("lane", ...)`` per finished lane and one ``("done",
    worker_id)`` before a clean exit.  The parent detects anything harsher
    through the process sentinel.
    """
    store_root = assignment.get("store_root")
    fault = assignment.get("fault")
    try:
        store = SessionStore(store_root) if store_root is not None else None
        for lane in assignment["lanes"]:
            graph_key = lane["graph_key"]
            try:
                attached = shm.attach_graph(lane["segment"])
                try:
                    session = DDSSession.from_seeded(
                        attached.graph,
                        attached.derived,
                        flow=assignment.get("flow"),
                        result_cache_size=assignment["result_cache_size"],
                    )
                finally:
                    attached.close()
                store_counters: dict[str, int] = {}
                if store is not None:
                    store_counters.update(store.warm_session(session))
                deadline_ms = assignment.get("deadline_ms")
                lane_deadline = Deadline(deadline_ms) if deadline_ms is not None else None
                executions: list[dict[str, Any]] = []
                for index, spec in lane["entries"]:
                    _inject_fault(fault, graph_key, index)
                    remaining = (
                        lane_deadline.remaining_ms() if lane_deadline is not None else None
                    )
                    if remaining is not None and remaining <= 0:
                        executions.append(
                            {
                                "index": index,
                                "kind": spec.get("query", "densest"),
                                "seconds": 0.0,
                                "payload": {"deadline_exceeded": True, "is_exact": False},
                            }
                        )
                        continue
                    payload, seconds = time_call(
                        lambda: run_batch_query(session, spec, deadline_ms=remaining)
                    )
                    executions.append(
                        {
                            "index": index,
                            "kind": spec.get("query", "densest"),
                            "seconds": seconds,
                            "payload": payload,
                        }
                    )
                if store is not None:
                    for key, value in store.save_session(session).items():
                        store_counters[key] = store_counters.get(key, 0) + value
                conn.send(
                    (
                        "lane",
                        graph_key,
                        {
                            "executions": executions,
                            "stats": session.cache_stats(),
                            "store": store_counters,
                        },
                    )
                )
            except Exception as error:  # noqa: BLE001 - forwarded to the parent
                conn.send(("lane-error", graph_key, type(error).__name__, str(error)))
        conn.send(("done", assignment["worker_id"]))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent went away
        pass
    finally:
        conn.close()


class _WorkerHandle:
    """Parent-side bookkeeping for one live pool worker."""

    __slots__ = ("worker_id", "process", "conn", "lane_keys", "handled", "eof")

    def __init__(self, worker_id: int, process: Any, conn: Any, lane_keys: list[str]) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.lane_keys = lane_keys
        #: lanes this worker has reported (result or error) — anything else
        #: at exit time was lost to a crash.
        self.handled: set[str] = set()
        self.eof = False


class BatchExecutor:
    """Run batch plans over a pool of per-graph sessions.

    Parameters
    ----------
    graphs:
        Where lane sessions get their graphs: a mapping ``graph_key ->
        DiGraph`` or a callable performing the lookup (e.g. the dataset
        registry's ``load_dataset``).  An unknown key raises
        :class:`~repro.exceptions.BatchQueryError` naming the lane.
    flow:
        Session-wide :class:`~repro.core.config.FlowConfig` (or solver name)
        applied to every lane session.
    result_cache_size:
        Result-cache capacity of each lane session.
    max_workers:
        Pool width (threads or processes); defaults to one worker per lane.
        On the thread path a single-lane batch executes inline on the
        calling thread.
    store:
        Optional :class:`~repro.service.store.SessionStore`; when given,
        lanes warm from it before their first query and save back afterwards.
    process_pool:
        Run lanes in worker *processes* over shared-memory graph segments
        (the GIL-free scale-out path; see the module docstring).  Falls back
        to the thread path — recording why in
        :attr:`BatchReport.executor_stats` — when ``shared_memory`` (or
        ``fcntl``, if a store is attached) is unavailable.
    remote_hosts:
        Route lanes to :class:`~repro.net.daemon.ShardDaemon` addresses
        (``["host:port", ...]``) by fingerprint shard instead of running
        them locally — the cross-machine path; see the module docstring.
        Mutually exclusive with ``process_pool``.
    max_retries:
        Process-pool only: how many times a lane lost to a worker crash or
        error is re-dispatched on a fresh worker before the executor falls
        back to running it inline.  ``0`` retries straight to inline.  On
        the remote path the same number caps each request's
        fresh-connection retries before its lane falls back inline.
    mp_start_method:
        Process-pool only: override the multiprocessing start method
        (defaults to ``fork`` where available, else ``spawn``).
    fault_injection:
        Chaos/test hook: ``{"graph_key": ..., "index": ..., "kind":
        "sigkill" | "error", "times": N}`` makes the first ``N`` workers
        dispatched with the target lane fail at the matching query, so the
        crash-recovery ladder is deterministically testable.  Never triggers
        on the inline fallback path.
    deadline_ms:
        Per-*lane* wall-clock budget.  Each lane arms a fresh monotonic
        :class:`~repro.runtime.Deadline` and every query receives the
        budget still remaining when it starts; a query the budget has no
        time left for is answered ``{"deadline_exceeded": true}`` without
        running.  On the remote path the budget ships in the solve request
        and the daemon enforces it (queueing and decode spend it too); an
        inline fallback lane re-arms a fresh budget, since the remote
        attempt consumed the original one.  Deadline hits are counted in
        ``executor_stats["deadline_hit_queries"]``.
    """

    def __init__(
        self,
        graphs: GraphProvider | Mapping[str, DiGraph],
        *,
        flow: FlowConfig | str | None = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        max_workers: int | None = None,
        store: SessionStore | None = None,
        process_pool: bool = False,
        remote_hosts: list[str] | None = None,
        max_retries: int = 1,
        mp_start_method: str | None = None,
        fault_injection: Mapping[str, Any] | None = None,
        deadline_ms: float | None = None,
    ) -> None:
        if isinstance(graphs, Mapping):
            table = dict(graphs)

            def provider(key: str) -> DiGraph:
                """Mapping-backed lookup with a batch-flavoured error."""
                try:
                    return table[key]
                except KeyError:
                    raise BatchQueryError(f"batch references unknown graph {key!r}")

            self._provider: GraphProvider = provider
        else:
            self._provider = graphs
        if max_workers is not None and (not isinstance(max_workers, int) or max_workers < 1):
            raise ConfigError(f"max_workers must be a positive int or None, got {max_workers!r}")
        if not isinstance(max_retries, int) or max_retries < 0:
            raise ConfigError(f"max_retries must be a non-negative int, got {max_retries!r}")
        if mp_start_method is not None and mp_start_method not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                f"unknown start method {mp_start_method!r}; this platform offers "
                f"{', '.join(multiprocessing.get_all_start_methods())}"
            )
        if fault_injection is not None:
            fault_injection = dict(fault_injection)
            if fault_injection.get("kind") not in FAULT_KINDS:
                raise ConfigError(
                    f"fault_injection kind must be one of {FAULT_KINDS}, "
                    f"got {fault_injection.get('kind')!r}"
                )
        if remote_hosts is not None:
            if process_pool:
                raise ConfigError("remote_hosts and process_pool are mutually exclusive")
            from repro.net.client import parse_host_port

            remote_hosts = [host for host in remote_hosts if str(host).strip()]
            if not remote_hosts:
                raise ConfigError("remote_hosts must name at least one 'host:port'")
            remote_hosts = [
                "%s:%d" % parse_host_port(str(host)) for host in remote_hosts
            ]
        self._flow = flow
        self._result_cache_size = result_cache_size
        self._max_workers = max_workers
        self._store = store
        self._process_pool = bool(process_pool)
        self._remote_hosts = remote_hosts
        self._max_retries = max_retries
        self._mp_start_method = mp_start_method
        self._fault = fault_injection
        if deadline_ms is not None:
            # Deadline's own validation rejects non-positive/non-finite
            # budgets; constructing one here fails fast at configure time.
            Deadline(deadline_ms)
            deadline_ms = float(deadline_ms)
        self._deadline_ms = deadline_ms

    # ------------------------------------------------------------------
    def _run_lane(
        self, graph_key: str, lane: list[PlannedQuery]
    ) -> tuple[str, list[QueryExecution], dict[str, Any], dict[str, int]]:
        """One worker's whole job: session up, warm, serve the lane, save."""
        session = DDSSession(
            self._provider(graph_key),
            flow=self._flow,
            result_cache_size=self._result_cache_size,
        )
        store_counters: dict[str, int] = {}
        if self._store is not None:
            store_counters.update(self._store.warm_session(session))
        lane_deadline = Deadline(self._deadline_ms) if self._deadline_ms is not None else None
        executions: list[QueryExecution] = []
        for entry in lane:
            remaining = lane_deadline.remaining_ms() if lane_deadline is not None else None
            if remaining is not None and remaining <= 0:
                executions.append(
                    QueryExecution(
                        index=entry.index,
                        graph_key=graph_key,
                        kind=entry.spec.get("query", "densest"),
                        seconds=0.0,
                        payload={"deadline_exceeded": True, "is_exact": False},
                    )
                )
                continue
            payload, seconds = time_call(
                lambda: run_batch_query(session, entry.spec, deadline_ms=remaining)
            )
            executions.append(
                QueryExecution(
                    index=entry.index,
                    graph_key=graph_key,
                    kind=entry.spec.get("query", "densest"),
                    seconds=seconds,
                    payload=payload,
                )
            )
        if self._store is not None:
            for key, value in self._store.save_session(session).items():
                store_counters[key] = store_counters.get(key, 0) + value
        return graph_key, executions, session.cache_stats(), store_counters

    # ------------------------------------------------------------------
    # process-pool path
    # ------------------------------------------------------------------
    def _resolve_start_method(self) -> str:
        """The configured start method, defaulting to fork-where-possible."""
        if self._mp_start_method is not None:
            return self._mp_start_method
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"

    def _spawn_worker(
        self,
        ctx: Any,
        worker_id: int,
        lane_keys: list[str],
        lanes: dict[str, list[PlannedQuery]],
        segments: dict[str, "shm.GraphSegment"],
        fault: Mapping[str, Any] | None,
    ) -> _WorkerHandle:
        """Start one worker process serving ``lane_keys`` and return its handle."""
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        assignment = {
            "worker_id": worker_id,
            "lanes": [
                {
                    "graph_key": key,
                    "segment": segments[key].name,
                    "entries": [(entry.index, entry.spec) for entry in lanes[key]],
                }
                for key in lane_keys
            ],
            "flow": self._flow,
            "result_cache_size": self._result_cache_size,
            "store_root": str(self._store.root) if self._store is not None else None,
            "fault": dict(fault) if fault else None,
            "deadline_ms": self._deadline_ms,
        }
        process = ctx.Process(
            target=_process_worker_main,
            args=(child_conn, assignment),
            name=f"dds-batch-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the worker owns the write end now
        return _WorkerHandle(worker_id, process, parent_conn, list(lane_keys))

    def _execute_process_pool(
        self, lanes: dict[str, list[PlannedQuery]]
    ) -> tuple[list[tuple[str, list[QueryExecution], dict[str, Any], dict[str, int]]], dict[str, Any]]:
        """Run every lane in worker processes; returns (outcomes, executor stats).

        The event loop multiplexes per-worker pipes *and* process sentinels
        through :func:`multiprocessing.connection.wait`, so both clean
        results and abrupt deaths wake it — there is no shared queue whose
        internal lock a dying worker could poison.  Lanes lost to a crash
        or reported as errors are re-dispatched on fresh workers while
        their retry budget lasts, then run inline; the first genuinely
        failing inline lane aborts the batch (after all workers drain) with
        its original error, matching the thread path's semantics.
        """
        from multiprocessing import connection as mp_connection

        ctx = multiprocessing.get_context(self._resolve_start_method())
        graphs = {key: self._provider(key) for key in lanes}
        width = min(len(lanes), self._max_workers if self._max_workers is not None else len(lanes))
        shard_map = ShardMap(width)
        # Worker slots are anonymous here, so empty shards collapse away:
        # a width-4 pool with two colliding fingerprints still gets two
        # workers, and ``workers_spawned`` counts real lanes, not slots.
        shards = shard_map.assign(
            {key: graph.content_fingerprint() for key, graph in graphs.items()},
            collapse=True,
        )
        stats: dict[str, Any] = {
            "mode": "process-pool",
            "start_method": self._resolve_start_method(),
            "shards": len(shards),
            "workers_spawned": 0,
            "worker_crashes": 0,
            "worker_retries": 0,
            "shm_bytes_mapped": 0,
            "shm_segments": 0,
            "degraded_lanes": [],
        }
        segments: dict[str, shm.GraphSegment] = {}
        results: dict[str, tuple[list[QueryExecution], dict[str, Any], dict[str, int], int | None]] = {}
        attempts = {key: 0 for key in lanes}
        degraded: set[str] = set()
        fault = dict(self._fault) if self._fault else None
        fault_budget = int(fault.get("times", 1)) if fault else 0
        first_error: Exception | None = None
        active: dict[int, _WorkerHandle] = {}
        next_worker_id = 0

        def take_fault(lane_keys: list[str]) -> Mapping[str, Any] | None:
            """Attach the chaos fault to this dispatch if budget remains."""
            nonlocal fault_budget
            if fault is None or fault_budget <= 0:
                return None
            if fault.get("graph_key") not in lane_keys:
                return None
            fault_budget -= 1
            return fault

        def dispatch(lane_keys: list[str]) -> None:
            """Spawn a fresh worker for ``lane_keys`` and track it."""
            nonlocal next_worker_id
            worker_id = next_worker_id
            next_worker_id += 1
            for key in lane_keys:
                attempts[key] += 1
            handle = self._spawn_worker(
                ctx, worker_id, lane_keys, lanes, segments, take_fault(lane_keys)
            )
            active[worker_id] = handle
            stats["workers_spawned"] += 1

        def lane_failed(graph_key: str) -> None:
            """Retry a lost lane on a fresh worker, or run it inline."""
            nonlocal first_error
            degraded.add(graph_key)
            if attempts[graph_key] <= self._max_retries:
                stats["worker_retries"] += 1
                dispatch([graph_key])
                return
            attempts[graph_key] += 1
            try:
                _, executions, session_stats, store_counters = self._run_lane(
                    graph_key, lanes[graph_key]
                )
            except Exception as error:  # noqa: BLE001 - re-raised after drain
                if first_error is None:
                    first_error = error
                return
            results[graph_key] = (executions, session_stats, store_counters, None)

        def drain(handle: _WorkerHandle) -> None:
            """Consume every buffered message from one worker's pipe."""
            while not handle.eof:
                try:
                    if not handle.conn.poll():
                        return
                    message = handle.conn.recv()
                except (EOFError, OSError):
                    handle.eof = True
                    return
                kind = message[0]
                if kind == "lane":
                    _, graph_key, payload = message
                    handle.handled.add(graph_key)
                    executions = [
                        QueryExecution(
                            index=row["index"],
                            graph_key=graph_key,
                            kind=row["kind"],
                            seconds=row["seconds"],
                            payload=row["payload"],
                            worker=handle.worker_id,
                        )
                        for row in payload["executions"]
                    ]
                    results[graph_key] = (
                        executions,
                        payload["stats"],
                        payload["store"],
                        handle.worker_id,
                    )
                elif kind == "lane-error":
                    _, graph_key, _, _ = message
                    handle.handled.add(graph_key)
                    lane_failed(graph_key)
                # "done" needs no action: the sentinel drives reaping.

        try:
            for key in lanes:
                segments[key] = shm.publish_graph(graphs[key])
            stats["shm_segments"] = len(segments)
            stats["shm_bytes_mapped"] = sum(segment.size for segment in segments.values())
            stats["shm_segment_names"] = sorted(segment.name for segment in segments.values())
            for _, lane_keys in sorted(shards.items()):
                dispatch(lane_keys)
            while active:
                waitables: list[Any] = []
                by_waitable: dict[Any, _WorkerHandle] = {}
                for handle in active.values():
                    waitables.append(handle.conn)
                    by_waitable[handle.conn] = handle
                    waitables.append(handle.process.sentinel)
                    by_waitable[handle.process.sentinel] = handle
                ready = mp_connection.wait(waitables)
                exited: list[_WorkerHandle] = []
                for waitable in ready:
                    handle = by_waitable[waitable]
                    drain(handle)
                    if waitable == handle.process.sentinel and handle.worker_id in active:
                        exited.append(handle)
                        del active[handle.worker_id]
                for handle in exited:
                    handle.process.join()
                    drain(handle)  # messages can race the sentinel
                    handle.conn.close()
                    lost = [key for key in handle.lane_keys if key not in handle.handled]
                    if lost:
                        stats["worker_crashes"] += 1
                        for key in lost:
                            lane_failed(key)
            if first_error is not None:
                raise first_error
            stats["degraded_lanes"] = sorted(degraded)
            outcomes = []
            for graph_key in lanes:
                executions, session_stats, store_counters, _ = results[graph_key]
                for execution in executions:
                    execution.attempts = attempts[graph_key]
                    execution.degraded = graph_key in degraded
                outcomes.append((graph_key, executions, session_stats, store_counters))
            return outcomes, stats
        finally:
            for handle in active.values():
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover - already torn down
                    pass
                if handle.process.is_alive():
                    handle.process.terminate()
                handle.process.join(timeout=10)
                if handle.process.is_alive():  # pragma: no cover - last resort
                    handle.process.kill()
                    handle.process.join(timeout=10)
            for segment in segments.values():
                segment.unlink()

    # ------------------------------------------------------------------
    # remote path
    # ------------------------------------------------------------------
    def _execute_remote(
        self, lanes: dict[str, list[PlannedQuery]]
    ) -> tuple[list[tuple[str, list[QueryExecution], dict[str, Any], dict[str, int]]], dict[str, Any]]:
        """Route every lane to its owning daemon; returns (outcomes, stats).

        Shard ownership is pinned by ``ShardMap.shard_of`` over the full
        host list — deliberately *not* collapsed to the distinct
        fingerprints of this batch — so a graph always lands on the same
        daemon across batches and its resident session keeps paying off.
        A lane whose daemon stays unreachable through the client's
        retry/backoff ladder falls back to an inline solve (degraded,
        counted in ``remote_failures``) *and* trips that host's circuit
        breaker — subsequent lanes for the host fast-fail straight to
        inline (``breaker_skipped_lanes``) until a half-open probe
        succeeds.  A lane whose *query* fails remotely is re-run inline so
        the genuine typed error surfaces locally with thread-path
        semantics (first error aborts the batch after every lane drains).
        Graphs with labels that cannot cross the wire losslessly run
        inline too, counted separately.  ``stats["breaker_states"]``
        snapshots each host's breaker after the batch.
        """
        from repro.net import protocol as net_protocol
        from repro.net.client import CircuitOpenError, RemoteOpError, ShardClientPool

        assert self._remote_hosts is not None
        graphs = {key: self._provider(key) for key in lanes}
        fingerprints = {key: graph.content_fingerprint() for key, graph in graphs.items()}
        shard_map = ShardMap(len(self._remote_hosts))
        pool = ShardClientPool(self._remote_hosts, max_retries=self._max_retries)
        # Ship this executor's flow configuration with every solve so a
        # daemon building the session uses the same backend the inline
        # fallback (and any local reference run) would — answers are
        # bit-identical either way, but the payload's solver metadata must
        # match for the parity gates' answer comparison.
        flow_doc: dict[str, Any] | None = None
        if isinstance(self._flow, str):
            flow_doc = {"solver": self._flow}
        elif self._flow is not None:
            flow_doc = dataclasses.asdict(self._flow)
        stats: dict[str, Any] = {
            "mode": "remote",
            "hosts": list(pool.addresses),
            "shards": shard_map.num_shards,
            "lanes_remote": 0,
            "lanes_inline": 0,
            "remote_failures": 0,
            "breaker_skipped_lanes": 0,
            "unwirable_lanes": 0,
            "degraded_lanes": [],
        }
        degraded: set[str] = set()
        first_error: Exception | None = None
        lock = threading.Lock()

        def inline(
            graph_key: str, *, remote_attempted: bool
        ) -> tuple[str, list[QueryExecution], dict[str, Any], dict[str, int]] | None:
            """Solve one lane locally after the remote path gave up on it."""
            nonlocal first_error
            with lock:
                stats["lanes_inline"] += 1
                degraded.add(graph_key)
            try:
                outcome = self._run_lane(graph_key, lanes[graph_key])
            except Exception as error:  # noqa: BLE001 - re-raised after drain
                with lock:
                    if first_error is None:
                        first_error = error
                return None
            for execution in outcome[1]:
                execution.degraded = True
                execution.attempts = 2 if remote_attempted else 1
            return outcome

        def run(
            graph_key: str,
        ) -> tuple[str, list[QueryExecution], dict[str, Any], dict[str, int]] | None:
            """One lane: wire the graph, ask its daemon, fall back inline."""
            shard = shard_map.shard_of(fingerprints[graph_key])
            try:
                wire = net_protocol.graph_to_wire(graphs[graph_key])
            except NetError:
                with lock:
                    stats["unwirable_lanes"] += 1
                return inline(graph_key, remote_attempted=False)
            try:
                payload = pool.client_for(shard).solve_lane(
                    graph_key,
                    fingerprints[graph_key],
                    [(entry.index, entry.spec) for entry in lanes[graph_key]],
                    graph=wire,
                    flow=flow_doc,
                    deadline_ms=self._deadline_ms,
                )
            except RemoteOpError:
                # The daemon is healthy but the lane failed for a genuine
                # (typed) reason: re-run inline so the original exception
                # reproduces locally and aborts the batch like a thread
                # lane's would.
                return inline(graph_key, remote_attempted=True)
            except CircuitOpenError:
                # The host's breaker is open: no connection was even
                # attempted, so this lane routes inline immediately instead
                # of burning a retry ladder against a known-dead daemon.
                with lock:
                    stats["breaker_skipped_lanes"] += 1
                return inline(graph_key, remote_attempted=True)
            except NetError:
                with lock:
                    stats["remote_failures"] += 1
                return inline(graph_key, remote_attempted=True)
            executions = [
                QueryExecution(
                    index=row["index"],
                    graph_key=graph_key,
                    kind=row["kind"],
                    seconds=row["seconds"],
                    payload=row["payload"],
                    worker=shard,
                )
                for row in payload["executions"]
            ]
            with lock:
                stats["lanes_remote"] += 1
            return graph_key, executions, payload["stats"], payload.get("store") or {}

        width = min(len(lanes), self._max_workers if self._max_workers is not None else len(lanes))
        if len(lanes) == 1:
            collected = [run(next(iter(lanes)))]
        else:
            with ThreadPoolExecutor(max_workers=width) as thread_pool:
                futures = [thread_pool.submit(run, graph_key) for graph_key in lanes]
                collected = [future.result() for future in futures]
        if first_error is not None:
            raise first_error
        stats["degraded_lanes"] = sorted(degraded)
        stats["client"] = pool.aggregate_stats()
        stats["breaker_states"] = pool.breaker_states()
        return [outcome for outcome in collected if outcome is not None], stats

    # ------------------------------------------------------------------
    def execute(self, plan: BatchPlan) -> BatchReport:
        """Execute ``plan`` and return its :class:`BatchReport`.

        Lanes run concurrently; queries within a lane run in plan order on
        the lane's session.  The first failing query aborts the batch: its
        error is re-raised here after every already-running lane has
        finished (lanes are independent, so letting them drain keeps the
        store consistent).  With ``process_pool=True`` lanes run in worker
        processes when the platform allows it; otherwise this degrades to
        the thread path and records the reason in
        :attr:`BatchReport.executor_stats`.
        """
        lanes = plan.lanes
        if not lanes:
            return BatchReport(executions=[], session_stats={})
        executor_stats: dict[str, Any] = {}
        if self._remote_hosts is not None:
            outcomes, executor_stats = self._execute_remote(lanes)
            return self._assemble(outcomes, executor_stats)
        if self._process_pool:
            available, reason = shm.process_pool_available(
                need_store_locks=self._store is not None
            )
            if available:
                outcomes, executor_stats = self._execute_process_pool(lanes)
                return self._assemble(outcomes, executor_stats)
            executor_stats = {
                "mode": "threads",
                "degraded_from": "process-pool",
                "reason": reason,
            }
        if len(lanes) == 1:
            outcomes = [self._run_lane(*next(iter(lanes.items())))]
        else:
            width = min(len(lanes), self._max_workers if self._max_workers is not None else len(lanes))
            with ThreadPoolExecutor(max_workers=width) as pool:
                futures = [
                    pool.submit(self._run_lane, graph_key, lane)
                    for graph_key, lane in lanes.items()
                ]
                outcomes = [future.result() for future in futures]
        return self._assemble(outcomes, executor_stats)

    def _assemble(
        self,
        outcomes: list[tuple[str, list[QueryExecution], dict[str, Any], dict[str, int]]],
        executor_stats: dict[str, Any],
    ) -> BatchReport:
        """Fold per-lane outcomes (in lane order) into a :class:`BatchReport`."""
        executions: list[QueryExecution] = []
        session_stats: dict[str, dict[str, Any]] = {}
        store_stats: dict[str, dict[str, int]] = {}
        # ``outcomes`` is collected in lane order and each lane is already
        # sequential, so ``executions`` ends up in plan order.
        for graph_key, lane_executions, stats, store_counters in outcomes:
            executions.extend(lane_executions)
            session_stats[graph_key] = stats
            if store_counters:
                store_stats[graph_key] = store_counters
        if self._deadline_ms is not None:
            executor_stats = dict(executor_stats)
            executor_stats["deadline_ms"] = self._deadline_ms
            executor_stats["deadline_hit_queries"] = sum(
                1
                for execution in executions
                if isinstance(execution.payload, dict)
                and execution.payload.get("deadline_exceeded")
            )
        return BatchReport(
            executions=executions,
            session_stats=session_stats,
            store_stats=store_stats,
            executor_stats=executor_stats,
        )
