"""Concurrent batch executor: a pool of graph-affine sessions serving a plan.

The executor turns a :class:`~repro.service.planner.BatchPlan` into results.
Its unit of concurrency is the planner's *lane* — all queries for one graph,
in plan order.  Each lane gets its own :class:`~repro.session.DDSSession`
and runs sequentially on one worker thread; distinct lanes run concurrently
on a thread pool.  Sessions are therefore **graph-affine**: no session, and
none of its caches (results, decision networks, residual flows), is ever
touched by two threads, so the session layer needs no locks and the
warm-start machinery keeps its strict solve ordering within a graph.

With a :class:`~repro.service.store.SessionStore` attached, each lane warms
its session from disk before the first query and persists the session's
state after the last one — the full compute-once/serve-everywhere loop.

Instrumentation: every query is individually timed, each lane's
:meth:`~repro.session.DDSSession.cache_stats` snapshot is kept, and the
report aggregates them (plus the planner's predicted-vs-realised hit
counts) into the payload ``dds-repro batch --explain`` prints.

A note on the GIL: lanes are pure-Python compute, so today's concurrency
buys isolation and scheduling rather than parallel speed-up.  The lane
boundary is exactly where a free-threaded build or a GIL-releasing solver
backend (see the registry's numpy/compiled slot in the ROADMAP) turns the
same code parallel — that is why the executor is shaped this way now.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.config import FlowConfig
from repro.exceptions import BatchQueryError, ConfigError
from repro.graph.digraph import DiGraph
from repro.service.planner import BatchPlan, PlannedQuery
from repro.service.queries import run_batch_query
from repro.service.store import SessionStore
from repro.session import DDSSession
from repro.session.session import DEFAULT_RESULT_CACHE_SIZE
from repro.utils.timer import time_call

#: Source of graphs for lane sessions: a mapping or a ``key -> DiGraph`` callable.
GraphProvider = Callable[[str], DiGraph]


@dataclass
class QueryExecution:
    """One executed query: where it ran, what it returned, how long it took."""

    index: int
    graph_key: str
    kind: str
    seconds: float
    payload: Any


@dataclass
class BatchReport:
    """Everything a batch run produced, in both input and execution order."""

    executions: list[QueryExecution]
    session_stats: dict[str, dict[str, Any]]
    store_stats: dict[str, dict[str, int]] = field(default_factory=dict)

    def results_in_input_order(self) -> list[Any]:
        """Query payloads re-assembled in the order of the input file."""
        return [execution.payload for execution in sorted(self.executions, key=lambda e: e.index)]

    def aggregate_stats(self) -> dict[str, Any]:
        """Session cache counters summed across every lane.

        Keys match :meth:`DDSSession.cache_stats
        <repro.session.DDSSession.cache_stats>`, so single-session consumers
        (the CLI's historical ``"session"`` payload block) read the
        aggregate exactly like one session's counters.
        """
        totals: dict[str, Any] = {}
        for stats in self.session_stats.values():
            for key, value in stats.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                totals[key] = totals.get(key, 0) + value
        return totals

    def realized_cache_hits(self) -> dict[str, int]:
        """The realised counterpart of the planner's predictions."""
        totals = self.aggregate_stats()
        return {
            "result_cache_hits": int(totals.get("result_cache_hits", 0)),
            "network_cache_hits": int(totals.get("network_cache_hits", 0)),
        }

    def timings(self) -> list[dict[str, Any]]:
        """Per-query timing rows in execution order (for ``--explain``)."""
        return [
            {
                "index": execution.index,
                "graph": execution.graph_key,
                "query": execution.kind,
                "seconds": round(execution.seconds, 6),
            }
            for execution in self.executions
        ]


class BatchExecutor:
    """Run batch plans over a pool of per-graph sessions.

    Parameters
    ----------
    graphs:
        Where lane sessions get their graphs: a mapping ``graph_key ->
        DiGraph`` or a callable performing the lookup (e.g. the dataset
        registry's ``load_dataset``).  An unknown key raises
        :class:`~repro.exceptions.BatchQueryError` naming the lane.
    flow:
        Session-wide :class:`~repro.core.config.FlowConfig` (or solver name)
        applied to every lane session.
    result_cache_size:
        Result-cache capacity of each lane session.
    max_workers:
        Thread-pool width; defaults to one thread per lane.  A batch with a
        single lane is executed inline on the calling thread.
    store:
        Optional :class:`~repro.service.store.SessionStore`; when given,
        lanes warm from it before their first query and save back afterwards.
    """

    def __init__(
        self,
        graphs: GraphProvider | Mapping[str, DiGraph],
        *,
        flow: FlowConfig | str | None = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        max_workers: int | None = None,
        store: SessionStore | None = None,
    ) -> None:
        if isinstance(graphs, Mapping):
            table = dict(graphs)

            def provider(key: str) -> DiGraph:
                """Mapping-backed lookup with a batch-flavoured error."""
                try:
                    return table[key]
                except KeyError:
                    raise BatchQueryError(f"batch references unknown graph {key!r}")

            self._provider: GraphProvider = provider
        else:
            self._provider = graphs
        if max_workers is not None and (not isinstance(max_workers, int) or max_workers < 1):
            raise ConfigError(f"max_workers must be a positive int or None, got {max_workers!r}")
        self._flow = flow
        self._result_cache_size = result_cache_size
        self._max_workers = max_workers
        self._store = store

    # ------------------------------------------------------------------
    def _run_lane(
        self, graph_key: str, lane: list[PlannedQuery]
    ) -> tuple[str, list[QueryExecution], dict[str, Any], dict[str, int]]:
        """One worker's whole job: session up, warm, serve the lane, save."""
        session = DDSSession(
            self._provider(graph_key),
            flow=self._flow,
            result_cache_size=self._result_cache_size,
        )
        store_counters: dict[str, int] = {}
        if self._store is not None:
            store_counters.update(self._store.warm_session(session))
        executions: list[QueryExecution] = []
        for entry in lane:
            payload, seconds = time_call(lambda: run_batch_query(session, entry.spec))
            executions.append(
                QueryExecution(
                    index=entry.index,
                    graph_key=graph_key,
                    kind=entry.spec.get("query", "densest"),
                    seconds=seconds,
                    payload=payload,
                )
            )
        if self._store is not None:
            for key, value in self._store.save_session(session).items():
                store_counters[key] = store_counters.get(key, 0) + value
        return graph_key, executions, session.cache_stats(), store_counters

    def execute(self, plan: BatchPlan) -> BatchReport:
        """Execute ``plan`` and return its :class:`BatchReport`.

        Lanes run concurrently; queries within a lane run in plan order on
        the lane's session.  The first failing query aborts the batch: its
        error is re-raised here after every already-running lane has
        finished (lanes are independent, so letting them drain keeps the
        store consistent).
        """
        lanes = plan.lanes
        if not lanes:
            return BatchReport(executions=[], session_stats={})
        if len(lanes) == 1:
            outcomes = [self._run_lane(*next(iter(lanes.items())))]
        else:
            width = min(len(lanes), self._max_workers if self._max_workers is not None else len(lanes))
            with ThreadPoolExecutor(max_workers=width) as pool:
                futures = [
                    pool.submit(self._run_lane, graph_key, lane)
                    for graph_key, lane in lanes.items()
                ]
                outcomes = [future.result() for future in futures]
        executions: list[QueryExecution] = []
        session_stats: dict[str, dict[str, Any]] = {}
        store_stats: dict[str, dict[str, int]] = {}
        # ``outcomes`` is collected in lane order and each lane is already
        # sequential, so ``executions`` ends up in plan order.
        for graph_key, lane_executions, stats, store_counters in outcomes:
            executions.extend(lane_executions)
            session_stats[graph_key] = stats
            if store_counters:
                store_stats[graph_key] = store_counters
        return BatchReport(
            executions=executions, session_stats=session_stats, store_stats=store_stats
        )
