"""Persistent session store: warm per-graph state shared across processes.

A :class:`~repro.session.DDSSession` accumulates expensive derived state —
whole results, degree arrays, [x, y]-cores, density bounds — but only for
the lifetime of one process.  :class:`SessionStore` serialises that warm
state to a versioned on-disk layout so a service tier can share it across
workers and restarts: compute once (``dds-repro warm``), serve everywhere.

Keying
------
In memory, session caches key on :attr:`~repro.graph.digraph.DiGraph.state_token`
— a process-local counter that can never collide but also never survives the
process.  The store keys on its durable analogue,
:meth:`DiGraph.content_fingerprint() <repro.graph.digraph.DiGraph.content_fingerprint>`:
a SHA-256 over the graph's labels (in insertion order), edge set, and
self-loop policy.  Same content ⇒ same fingerprint ⇒ the stored state is
valid; any structural difference ⇒ different fingerprint ⇒ the store simply
has nothing for that graph.

On-disk layout (``STORE_SCHEMA_VERSION`` = 1)
---------------------------------------------
::

    <root>/
      store.json                      # {"store_schema_version": 1}
      graphs/<fingerprint>/
        manifest.json                 # graph shape: nodes / edges / loops
        derived.json                  # degree arrays, cores, bounds
        results/<entry-digest>.json   # one result-cache entry

Every file under ``graphs/`` wraps its payload as ``{"checksum":
sha256(canonical-json(payload)), "payload": ...}``.  Reads verify the
checksum and the manifest's shape against the live graph; a failed check
marks the entry corrupt — it is skipped and *counted*, never silently
served.  Result payloads are the schema-versioned
:meth:`DDSResult.to_dict() <repro.core.results.DDSResult.to_dict>` documents
(schema version 2 guarantees JSON-native stats), so a loaded result is
bit-identical to the one saved; results whose node labels would not survive
a JSON round trip are skipped at save time (``results_skipped``) rather than
persisted lossily.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Iterator

try:  # POSIX-only advisory locks; writes stay atomic-rename-safe without them
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.core.config import ApproxConfig, ExactConfig, FlowConfig, MethodConfig
from repro.core.method_registry import get_method_spec
from repro.core.results import DDSResult, json_native_label
from repro.core.xycore import XYCore
from repro.exceptions import AlgorithmError, ConfigError, GraphError, StoreError
from repro.graph.digraph import DiGraph
from repro.session import DDSSession

#: Version of the on-disk layout.  Bump on any incompatible change; a store
#: written by a different version is refused outright (no partial reads).
STORE_SCHEMA_VERSION = 1


def _canonical_json(payload: Any) -> str:
    """Deterministic JSON text — the byte-stable form both checksums hash."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Any) -> str:
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def _config_to_jsonable(config: MethodConfig) -> dict[str, Any] | None:
    """Serialise a frozen method config, or ``None`` if it cannot round trip.

    ``dataclasses.asdict`` flattens the nested :class:`FlowConfig`; tuples
    (``ApproxConfig.ratios``) become lists.  A config whose values are not
    JSON-native after that cannot be reconstructed faithfully, so the caller
    skips the entry instead of persisting an approximation of it.
    """
    data = dataclasses.asdict(config)

    def jsonable(value: Any) -> bool:
        """Whether ``value`` (recursively) survives a JSON round trip."""
        if isinstance(value, dict):
            return all(isinstance(k, str) and jsonable(v) for k, v in value.items())
        if isinstance(value, (list, tuple)):
            return all(jsonable(item) for item in value)
        return isinstance(value, (str, int, float, bool)) or value is None

    if not jsonable(data):
        return None
    return json.loads(_canonical_json(data))  # tuples -> lists, canonical floats


def _config_from_jsonable(config_type: type, data: dict[str, Any]) -> MethodConfig:
    """Rebuild a method config of ``config_type`` from its serialised fields."""
    if not isinstance(data, dict):
        raise StoreError(f"config document must be an object, got {type(data).__name__}")
    fields = dict(data)
    if isinstance(fields.get("flow"), dict):
        fields["flow"] = FlowConfig(**fields["flow"])
    if isinstance(fields.get("ratios"), list):
        fields["ratios"] = tuple(fields["ratios"])
    try:
        return config_type(**fields)
    except (TypeError, ConfigError) as error:
        raise StoreError(f"cannot rebuild {config_type.__name__} from stored fields: {error}")


def _core_to_jsonable(core: XYCore) -> dict[str, Any]:
    return {"x": core.x, "y": core.y, "s_nodes": list(core.s_nodes), "t_nodes": list(core.t_nodes)}


def _core_from_jsonable(data: dict[str, Any]) -> XYCore:
    try:
        return XYCore(
            x=int(data["x"]),
            y=int(data["y"]),
            s_nodes=[int(i) for i in data["s_nodes"]],
            t_nodes=[int(i) for i in data["t_nodes"]],
        )
    except (KeyError, TypeError, ValueError) as error:
        raise StoreError(f"malformed stored [x, y]-core: {error!r}")


class SessionStore:
    """Versioned on-disk store of per-graph session warm state.

    Parameters
    ----------
    root:
        Directory holding the store.  Created (with its version marker) on
        the first write; opening an existing directory written by a
        different :data:`STORE_SCHEMA_VERSION` raises
        :class:`~repro.exceptions.StoreError` immediately rather than
        misreading it.

    The store is a cache, not a database: every read re-verifies integrity
    (schema version, graph shape, per-entry checksums), and anything that
    fails verification is reported in the returned counters and otherwise
    ignored.  Concurrent writers are tolerated via atomic
    write-to-temp-then-rename of individual entries.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        marker = self.root / "store.json"
        if marker.exists():
            document = self._read_json(marker)
            version = document.get("store_schema_version") if isinstance(document, dict) else None
            if version != STORE_SCHEMA_VERSION:
                raise StoreError(
                    f"store at {self.root} has schema version {version!r}; "
                    f"this build reads version {STORE_SCHEMA_VERSION}"
                )

    # ------------------------------------------------------------------
    # low-level plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _read_json(path: Path) -> Any:
        """Parse one store file, mapping I/O and JSON failures to StoreError."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except OSError as error:
            raise StoreError(f"cannot read store file {path}: {error}")
        except json.JSONDecodeError as error:
            raise StoreError(f"store file {path} is not valid JSON: {error}")

    @staticmethod
    def _write_json(path: Path, document: Any) -> None:
        """Atomic write: unique temp file in the same directory, then rename.

        The temp name must be unique per writer (``mkstemp``), not a fixed
        ``<name>.tmp`` — concurrent writers of the same entry would truncate
        each other's half-written temp file and one rename could land a
        mangled document.  With unique temps, last-rename-wins and every
        intermediate state of ``path`` is a complete document.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            descriptor, temp_name = tempfile.mkstemp(
                prefix=path.name + ".", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, sort_keys=True, indent=1)
                os.replace(temp_name, path)
            except BaseException:
                os.unlink(temp_name)
                raise
        except OSError as error:
            raise StoreError(f"cannot write store file {path}: {error}")

    def _graph_dir(self, fingerprint: str) -> Path:
        """Directory holding one graph's manifest, derived state, and results."""
        return self.root / "graphs" / fingerprint

    @contextlib.contextmanager
    def _locked(self, graph_dir: Path) -> Iterator[None]:
        """Advisory per-graph-directory write lock (POSIX ``flock``).

        Serialises *writers* — concurrent ``dds-repro warm`` processes,
        batch lanes saving the same graph, eviction sweeps — on one graph
        directory, so a second warmer blocks until the first has persisted
        and then skips every now-``_entry_is_current`` entry instead of
        re-serialising (and re-writing) the same state.  The read path
        (:meth:`warm_session`) takes no lock: entry reads stay safe under
        concurrent writers because every write is an atomic
        write-temp-then-rename of a checksummed document.  On platforms
        without :mod:`fcntl` the lock degrades to a no-op and writers fall
        back to plain last-rename-wins behaviour.
        """
        if fcntl is None:
            yield
            return
        graph_dir.mkdir(parents=True, exist_ok=True)
        lock_path = graph_dir / ".lock"
        try:
            handle = open(lock_path, "a+")
        except OSError as error:
            raise StoreError(f"cannot open store lock file {lock_path}: {error}")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    @contextlib.contextmanager
    def _try_locked(self, graph_dir: Path) -> Iterator[bool]:
        """Non-blocking variant of :meth:`_locked` for eviction sweeps.

        Yields ``True`` with the directory's write lock held, or ``False``
        immediately when another writer holds it right now.  Eviction must
        not queue behind a long-running warmer — blocking turns a cleanup
        sweep into a latency cliff, and the pre-lock file listing it
        gathered would be stale by the time the lock arrived (deleting a
        directory a writer is mid-save into).  Skipped directories are
        simply picked up by the next sweep.  Without :mod:`fcntl` this
        degrades like :meth:`_locked` (always acquirable); a directory that
        does not exist has nothing to evict and reports acquirable too.
        """
        if fcntl is None or not graph_dir.is_dir():
            yield True
            return
        lock_path = graph_dir / ".lock"
        try:
            handle = open(lock_path, "a+")
        except OSError:
            # Unreadable lock file: treat as held — skip, never race.
            yield False
            return
        try:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                yield False
                return
            try:
                yield True
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def _ensure_marker(self) -> None:
        """Write the store's schema-version marker on first use."""
        marker = self.root / "store.json"
        if not marker.exists():
            self._write_json(marker, {"store_schema_version": STORE_SCHEMA_VERSION})

    def _entry_is_current(self, path: Path, payload: Any) -> bool:
        """Whether ``path`` already holds exactly this checksummed payload.

        Lets ``save_session`` skip rewriting entries that a warm start just
        loaded unchanged — on a warm store serving repeated batches that is
        *every* entry, so the skip removes the write churn (and shrinks the
        concurrent-writer window) of re-persisting identical bytes.
        """
        if not path.exists():
            return False
        try:
            document = self._read_json(path)
        except StoreError:
            return False  # unreadable — rewrite it
        return isinstance(document, dict) and document.get("checksum") == _checksum(payload)

    def _check_manifest(self, graph: DiGraph, manifest_path: Path) -> None:
        """Verify a manifest's checksum and ``graph``-shape (corruption tripwire)."""
        manifest = self._verified_payload(manifest_path)
        expected = {
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "allow_self_loops": graph.allow_self_loops,
        }
        for key, value in expected.items():
            if manifest.get(key) != value:
                raise StoreError(
                    f"manifest {manifest_path} disagrees with the live graph on {key} "
                    f"({manifest.get(key)!r} != {value!r}); the store entry is corrupt"
                )

    @staticmethod
    def _entry_name(method: str, config_document: dict[str, Any]) -> str:
        """Deterministic file name of one ``(method, config)`` result entry."""
        digest = hashlib.sha256(
            _canonical_json({"method": method, "config": config_document}).encode("utf-8")
        ).hexdigest()
        return f"{digest[:32]}.json"

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------
    def save_session(self, session: DDSSession) -> dict[str, int]:
        """Persist ``session``'s warm state; returns save counters.

        Persists every result-cache entry whose labels and config survive a
        JSON round trip (others count as ``results_skipped``), the degree
        arrays and density bounds (cheap — computed now if the session has
        not needed them yet), and whatever [x, y]-cores the session has
        already computed (never forces a core decomposition).  Entries whose
        on-disk bytes already match are left untouched and counted as
        ``results_unchanged`` / ``derived_saved: 0``; a corrupt manifest is
        rewritten from the live graph (the fingerprint, not the manifest, is
        the graph's identity).
        """
        graph = session.graph
        fingerprint = graph.content_fingerprint()
        self._ensure_marker()
        graph_dir = self._graph_dir(fingerprint)
        counters = {
            "results_saved": 0,
            "results_skipped": 0,
            "results_unchanged": 0,
            "derived_saved": 0,
        }
        # The whole per-graph write sequence runs under the graph's advisory
        # lock: a concurrent warmer of the same graph blocks here, then sees
        # every just-written entry as current and skips the duplicate work.
        with self._locked(graph_dir):
            manifest_path = graph_dir / "manifest.json"
            # Delta lineage: the content fingerprints of the graph states
            # this session's entries evolved from (one per apply_updates).
            # A session that never applied updates has none — in that case a
            # valid stored lineage is preserved rather than clobbered, so
            # history recorded by an earlier updated session survives saves
            # from cold sessions of the same (final) graph.
            lineage = session.lineage()
            stored_manifest = None
            if manifest_path.exists():
                try:
                    self._check_manifest(graph, manifest_path)
                    stored_manifest = self._verified_payload(manifest_path)
                except StoreError:
                    stored_manifest = None  # corrupt — rewritten from the live graph
            if stored_manifest is not None and not lineage:
                stored = stored_manifest.get("lineage") or []
                lineage = [str(fingerprint_) for fingerprint_ in stored]
            manifest = {
                "store_schema_version": STORE_SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "num_nodes": graph.num_nodes,
                "num_edges": graph.num_edges,
                "allow_self_loops": graph.allow_self_loops,
                "lineage": lineage,
            }
            if stored_manifest != manifest:
                self._write_json(
                    manifest_path, {"checksum": _checksum(manifest), "payload": manifest}
                )

            derived: dict[str, Any] = {
                "out_degrees": session.out_degrees(),
                "in_degrees": session.in_degrees(),
                "density_upper_bound": session.density_upper_bound(),
                "exactness_tolerance": session.exactness_tolerance(),
                "xy_cores": [_core_to_jsonable(core) for core in session.cached_xy_cores()],
            }
            max_core = session.cached_max_core()
            if max_core is not None:
                derived["max_core"] = _core_to_jsonable(max_core)
            derived_path = graph_dir / "derived.json"
            if not self._entry_is_current(derived_path, derived):
                self._write_json(
                    derived_path, {"checksum": _checksum(derived), "payload": derived}
                )
                counters["derived_saved"] = 1

            for method, config, result in session.cached_results():
                if not all(
                    json_native_label(label) for label in result.s_nodes + result.t_nodes
                ):
                    counters["results_skipped"] += 1
                    continue
                config_document = _config_to_jsonable(config)
                if config_document is None or type(config) not in (ExactConfig, ApproxConfig):
                    # Custom config subclasses cannot be reconstructed from the
                    # class name alone; refuse to guess.
                    counters["results_skipped"] += 1
                    continue
                entry = {
                    "method": method,
                    "config_type": type(config).__name__,
                    "config": config_document,
                    "result": result.to_dict(),
                }
                entry_path = graph_dir / "results" / self._entry_name(method, config_document)
                if self._entry_is_current(entry_path, entry):
                    counters["results_unchanged"] += 1
                    continue
                self._write_json(entry_path, {"checksum": _checksum(entry), "payload": entry})
                counters["results_saved"] += 1
        return counters

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def warm_session(self, session: DDSSession) -> dict[str, int]:
        """Seed ``session`` from the store; returns load counters.

        Counters: ``results_loaded`` / ``results_corrupt`` /
        ``results_incompatible`` (entry is intact but names an unregistered
        method or foreign config class), ``derived_loaded`` /
        ``derived_corrupt``, and ``manifest_corrupt`` (the graph directory's
        manifest fails verification — nothing under it is trusted or
        loaded).  A graph the store has never seen loads nothing and returns
        all-zero counters — warming is always safe to attempt and never
        raises for on-disk damage; serving must not die because a cache
        entry rotted.
        """
        graph = session.graph
        counters = {
            "results_loaded": 0,
            "results_corrupt": 0,
            "results_incompatible": 0,
            "derived_loaded": 0,
            "derived_corrupt": 0,
            "manifest_corrupt": 0,
        }
        graph_dir = self._graph_dir(graph.content_fingerprint())
        manifest_path = graph_dir / "manifest.json"
        if not manifest_path.exists():
            return counters
        try:
            self._check_manifest(graph, manifest_path)
        except StoreError:
            counters["manifest_corrupt"] = 1
            return counters
        stored_lineage = self._verified_payload(manifest_path).get("lineage") or []
        if stored_lineage:
            session.seed_lineage(str(fingerprint) for fingerprint in stored_lineage)

        derived_path = graph_dir / "derived.json"
        if derived_path.exists():
            try:
                payload = self._verified_payload(derived_path)
                session.seed_derived(
                    out_degrees=payload["out_degrees"],
                    in_degrees=payload["in_degrees"],
                    xy_cores=[_core_from_jsonable(core) for core in payload.get("xy_cores", [])],
                    max_core=(
                        _core_from_jsonable(payload["max_core"])
                        if "max_core" in payload
                        else None
                    ),
                    density_upper_bound=payload["density_upper_bound"],
                    exactness_tolerance=payload["exactness_tolerance"],
                )
                counters["derived_loaded"] = 1
            except (StoreError, GraphError, KeyError, TypeError, ValueError):
                counters["derived_corrupt"] = 1

        results_dir = graph_dir / "results"
        if results_dir.is_dir():
            for entry_path in sorted(results_dir.glob("*.json")):
                try:
                    entry = self._verified_payload(entry_path)
                    method = entry["method"]
                    spec = get_method_spec(method)
                    if entry.get("config_type") != spec.config_type.__name__:
                        counters["results_incompatible"] += 1
                        continue
                    config = _config_from_jsonable(spec.config_type, entry["config"])
                    result = DDSResult.from_dict(entry["result"])
                except AlgorithmError:
                    # Unknown method — a store written by a build with extra
                    # registered methods; intact but unusable here.
                    counters["results_incompatible"] += 1
                    continue
                except (StoreError, KeyError, TypeError, ValueError):
                    counters["results_corrupt"] += 1
                    continue
                if session.seed_result(method, config, result):
                    counters["results_loaded"] += 1
        return counters

    def _verified_payload(self, path: Path) -> dict[str, Any]:
        """Read a checksummed entry, raising :class:`StoreError` on tampering."""
        document = self._read_json(path)
        if (
            not isinstance(document, dict)
            or "checksum" not in document
            or "payload" not in document
        ):
            raise StoreError(f"store entry {path} is missing its checksum envelope")
        payload = document["payload"]
        if _checksum(payload) != document["checksum"]:
            raise StoreError(f"store entry {path} fails its integrity checksum")
        if not isinstance(payload, dict):
            raise StoreError(f"store entry {path} payload is not an object")
        return payload

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def inventory(self) -> list[dict[str, Any]]:
        """One row per stored graph: fingerprint, shape, entry counts, bytes."""
        rows: list[dict[str, Any]] = []
        graphs_dir = self.root / "graphs"
        if not graphs_dir.is_dir():
            return rows
        for graph_dir in sorted(graphs_dir.iterdir()):
            if not graph_dir.is_dir():
                continue
            manifest_path = graph_dir / "manifest.json"
            row: dict[str, Any] = {"fingerprint": graph_dir.name}
            try:
                manifest = self._verified_payload(manifest_path)
                row["num_nodes"] = manifest.get("num_nodes")
                row["num_edges"] = manifest.get("num_edges")
                row["lineage_depth"] = len(manifest.get("lineage") or [])
            except StoreError:
                row["num_nodes"] = row["num_edges"] = None
                row["lineage_depth"] = 0
            results_dir = graph_dir / "results"
            row["results"] = len(list(results_dir.glob("*.json"))) if results_dir.is_dir() else 0
            row["derived"] = (graph_dir / "derived.json").exists()
            row["bytes"] = sum(
                path.stat().st_size for path in graph_dir.rglob("*") if path.is_file()
            )
            rows.append(row)
        return rows

    def verify(self) -> list[str]:
        """Integrity-check every entry (manifests included); returns problem strings."""
        problems: list[str] = []
        graphs_dir = self.root / "graphs"
        if not graphs_dir.is_dir():
            return problems
        for graph_dir in sorted(graphs_dir.iterdir()):
            if not graph_dir.is_dir():
                continue
            for path in [
                graph_dir / "manifest.json",
                graph_dir / "derived.json",
                *sorted((graph_dir / "results").glob("*.json")),
            ]:
                if not path.exists():
                    continue
                try:
                    self._verified_payload(path)
                except StoreError as error:
                    problems.append(str(error))
        return problems

    def evict(
        self,
        *,
        older_than_days: float | None = None,
        max_bytes: int | None = None,
        now: float | None = None,
    ) -> dict[str, int]:
        """Age + LRU sweep over the stored result entries (disk-usage cap).

        Two independent policies, applied in order:

        * ``older_than_days`` — delete every ``graphs/*/results/*.json``
          whose mtime is older than the cutoff.  The save path deliberately
          skips rewriting unchanged entries, and warm loads never touch
          mtimes, so an entry's mtime is the last time its *content*
          changed — age eviction removes state no recent workload has
          refreshed.
        * ``max_bytes`` — while the store's total on-disk size (the
          ``bytes`` measure of :meth:`inventory`, summed) exceeds the
          budget, delete result entries oldest-mtime-first (LRU under the
          same mtime reading); graph directories whose results are all gone
          are then dropped whole (manifest and derived state included) if
          the budget is still exceeded.

        Deletions in a graph directory run under its advisory write lock,
        acquired *non-blocking*: a directory whose lock is currently held
        by a writer (a warmer, a saving batch lane) is skipped outright —
        never raced, never queued behind — and counted in
        ``skipped_locked`` for the next sweep to revisit.  Returns
        counters: ``results_evicted``, ``graphs_evicted``, ``bytes_freed``,
        ``bytes_remaining``, ``skipped_locked``.  At least one policy must
        be given.
        """
        if older_than_days is None and max_bytes is None:
            raise StoreError("evict requires older_than_days and/or max_bytes")
        if older_than_days is not None and older_than_days < 0:
            raise StoreError(f"older_than_days must be >= 0, got {older_than_days!r}")
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes!r}")
        counters = {
            "results_evicted": 0,
            "graphs_evicted": 0,
            "bytes_freed": 0,
            "bytes_remaining": 0,
            "skipped_locked": 0,
        }
        graphs_dir = self.root / "graphs"
        if not graphs_dir.is_dir():
            return counters
        current_time = time.time() if now is None else float(now)

        def graph_dirs() -> list[Path]:
            return sorted(path for path in graphs_dir.iterdir() if path.is_dir())

        def unlink(path: Path) -> int | None:
            """Remove one file; bytes it occupied, or ``None`` if removal failed."""
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                return None
            return size

        if older_than_days is not None:
            cutoff = current_time - float(older_than_days) * 86400.0
            for graph_dir in graph_dirs():
                with self._try_locked(graph_dir) as acquired:
                    if not acquired:
                        counters["skipped_locked"] += 1
                        continue
                    for entry in sorted((graph_dir / "results").glob("*.json")):
                        try:
                            mtime = entry.stat().st_mtime
                        except OSError:
                            continue
                        if mtime < cutoff:
                            freed = unlink(entry)
                            if freed is not None:
                                counters["bytes_freed"] += freed
                                counters["results_evicted"] += 1

        def total_bytes() -> int:
            return sum(
                path.stat().st_size
                for graph_dir in graph_dirs()
                for path in graph_dir.rglob("*")
                if path.is_file()
            )

        if max_bytes is not None:
            remaining = total_bytes()
            entries: list[tuple[float, Path]] = []
            for graph_dir in graph_dirs():
                for entry in (graph_dir / "results").glob("*.json"):
                    try:
                        entries.append((entry.stat().st_mtime, entry))
                    except OSError:
                        continue
            entries.sort(key=lambda pair: (pair[0], str(pair[1])))
            for _, entry in entries:
                if remaining <= max_bytes:
                    break
                with self._try_locked(entry.parent.parent) as acquired:
                    if not acquired:
                        counters["skipped_locked"] += 1
                        continue
                    freed = unlink(entry)
                if freed is None:
                    continue
                counters["bytes_freed"] += freed
                counters["results_evicted"] += 1
                remaining -= freed
            if remaining > max_bytes:
                # Result entries alone cannot meet the budget: drop whole
                # graph directories (oldest manifest first) until it fits.
                ranked = sorted(
                    graph_dirs(),
                    key=lambda path: (
                        (path / "manifest.json").stat().st_mtime
                        if (path / "manifest.json").exists()
                        else 0.0,
                        str(path),
                    ),
                )
                for graph_dir in ranked:
                    if remaining <= max_bytes:
                        break
                    lock_path = graph_dir / ".lock"
                    with self._try_locked(graph_dir) as acquired:
                        if not acquired:
                            counters["skipped_locked"] += 1
                            continue
                        # Everything except the lock file goes while the
                        # lock is held: unlinking .lock here would detach
                        # the very inode concurrent writers flock on and
                        # let one into the "exclusive" section mid-sweep.
                        freed = 0
                        for path in sorted(graph_dir.rglob("*"), reverse=True):
                            if path == lock_path:
                                continue
                            if path.is_file():
                                freed += unlink(path) or 0
                            else:
                                with contextlib.suppress(OSError):
                                    path.rmdir()
                    # Only after releasing: drop the lock file and the dir.
                    # A warmer that slips in between simply recreates the
                    # graph (rmdir fails on the non-empty dir) — last writer
                    # wins, nothing is torn.
                    with contextlib.suppress(OSError):
                        lock_path.unlink()
                    with contextlib.suppress(OSError):
                        graph_dir.rmdir()
                    counters["bytes_freed"] += freed
                    counters["graphs_evicted"] += 1
                    remaining -= freed
        counters["bytes_remaining"] = total_bytes()
        return counters

    def clear(self) -> int:
        """Delete every stored graph; returns how many were dropped."""
        graphs_dir = self.root / "graphs"
        if not graphs_dir.is_dir():
            return 0
        dropped = 0
        for graph_dir in sorted(graphs_dir.iterdir()):
            if not graph_dir.is_dir():
                continue
            for path in sorted(graph_dir.rglob("*"), reverse=True):
                if path.is_file():
                    path.unlink()
                else:
                    path.rmdir()
            graph_dir.rmdir()
            dropped += 1
        return dropped
