"""Named synthetic datasets: laptop-scale stand-ins for the paper's graphs.

The paper evaluates on real directed graphs ranging from a few thousand to
hundreds of millions of edges (food webs, flight networks, trust networks,
co-purchase graphs, communication graphs, web crawls).  Those datasets are
not available offline and would not be tractable for a pure-Python substrate
anyway, so the registry below generates deterministic synthetic graphs whose
*structural regimes* match each original (size tier, degree skew, presence of
a dense directed block), as documented per entry.  Every dataset is produced
with a fixed seed, so all experiments are reproducible bit-for-bit.

The case-study module additionally provides graphs with planted ground-truth
roles (fraudulent raters, hub/authority pages) used by experiment E9 and by
the example scripts.
"""

from repro.datasets.casestudy import (
    CaseStudy,
    hub_authority_case,
    precision_recall,
    rating_fraud_case,
)
from repro.datasets.registry import (
    DatasetSpec,
    dataset_names,
    dataset_specs,
    exact_dataset_names,
    large_dataset_names,
    load_dataset,
)

__all__ = [
    "DatasetSpec",
    "dataset_names",
    "dataset_specs",
    "exact_dataset_names",
    "large_dataset_names",
    "load_dataset",
    "CaseStudy",
    "rating_fraud_case",
    "hub_authority_case",
    "precision_recall",
]
