"""Case-study graphs with ground-truth roles (experiment E9 and the examples).

The paper's case studies show that the two sides of the DDS answer carry
asymmetric semantics (e.g. prolific raters vs. heavily-rated products, or
hub pages vs. authority pages).  The generators below plant exactly that
structure, so recovery can be scored with precision/recall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.utils.rng import RngLike, make_rng


@dataclass(frozen=True)
class CaseStudy:
    """A case-study graph plus its planted ground truth."""

    name: str
    graph: DiGraph
    true_s: list[str]
    true_t: list[str]
    description: str


def rating_fraud_case(
    n_users: int = 400,
    n_products: int = 200,
    n_fraud_users: int = 12,
    n_boosted_products: int = 8,
    honest_ratings_per_user: int = 3,
    p_fraud: float = 0.95,
    seed: RngLike = 7,
) -> CaseStudy:
    """A user->product rating graph with a planted review-boosting ring.

    Honest users rate a few random products; a small group of fraudulent
    accounts rate (almost) every product in a small boosted set.  The DDS
    ``S`` side should recover the fraudulent accounts and the ``T`` side the
    boosted products — the directed structure is essential, because the
    undirected densest subgraph mixes the two roles.
    """
    rng = make_rng(seed)
    graph = DiGraph()
    users = [f"user{i}" for i in range(n_users)]
    products = [f"product{j}" for j in range(n_products)]
    for label in users + products:
        graph.add_node(label)

    for user in users:
        for _ in range(honest_ratings_per_user):
            graph.add_edge(user, products[rng.randrange(n_products)])

    fraud_users = [f"user{i}" for i in range(n_fraud_users)]
    boosted = [f"product{j}" for j in range(n_boosted_products)]
    for user in fraud_users:
        for product in boosted:
            if rng.random() < p_fraud:
                graph.add_edge(user, product)

    return CaseStudy(
        name="rating-fraud",
        graph=graph,
        true_s=fraud_users,
        true_t=boosted,
        description="planted review-boosting ring inside a user->product rating graph",
    )


def hub_authority_case(
    n_pages: int = 500,
    n_hubs: int = 10,
    n_authorities: int = 15,
    background_links_per_page: int = 2,
    p_link: float = 0.9,
    seed: RngLike = 8,
) -> CaseStudy:
    """A web-like graph with a planted hub->authority community.

    Hubs link to almost every authority; the rest of the web links sparsely
    and uniformly.  The DDS answer separates hubs (``S``) from authorities
    (``T``) even when some pages play both roles, which an undirected
    formulation cannot express.
    """
    rng = make_rng(seed)
    graph = DiGraph()
    pages = [f"page{i}" for i in range(n_pages)]
    for label in pages:
        graph.add_node(label)

    for page in pages:
        for _ in range(background_links_per_page):
            target = pages[rng.randrange(n_pages)]
            if target != page:
                graph.add_edge(page, target)

    hubs = [f"page{i}" for i in range(n_hubs)]
    authorities = [f"page{i}" for i in range(n_hubs, n_hubs + n_authorities)]
    for hub in hubs:
        for authority in authorities:
            if rng.random() < p_link:
                graph.add_edge(hub, authority)

    return CaseStudy(
        name="hub-authority",
        graph=graph,
        true_s=hubs,
        true_t=authorities,
        description="planted hub->authority block inside a sparse web-like graph",
    )


def precision_recall(found: list[str], truth: list[str]) -> tuple[float, float]:
    """Precision and recall of a recovered node set against the planted truth."""
    found_set = set(found)
    truth_set = set(truth)
    if not found_set:
        return 0.0, 0.0
    true_positives = len(found_set & truth_set)
    precision = true_positives / len(found_set)
    recall = true_positives / len(truth_set) if truth_set else 0.0
    return precision, recall
