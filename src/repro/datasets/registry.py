"""The dataset registry: named, seeded, laptop-scale synthetic graphs.

Every entry documents which of the paper's real datasets it stands in for and
which structural regime it reproduces.  Tiers:

* ``small``  — exact algorithms (including the quadratic-ratio baseline) are
  feasible; used by experiments E2, E4, E6, E7, E8, E11, E12;
* ``medium`` — DC/Core exact still run, the baseline does not; used by E3, E4;
* ``large``  — approximation algorithms only; used by E3, E5.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnm_random_digraph,
    planted_dds_digraph,
    powerlaw_digraph,
    rmat_digraph,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata + builder for one named dataset."""

    name: str
    tier: str
    description: str
    paper_analogue: str
    builder: Callable[[], DiGraph]


def _planted(n_background: int, degree: float, s: int, t: int, p: float, seed: int) -> DiGraph:
    graph, _, _ = planted_dds_digraph(
        n_background=n_background,
        background_degree=degree,
        s_size=s,
        t_size=t,
        p_dense=p,
        seed=seed,
    )
    return graph


def _build_specs() -> dict[str, DatasetSpec]:
    specs = [
        # ------------------------------------------------------------ small
        DatasetSpec(
            name="foodweb-tiny",
            tier="small",
            description="30-node sparse background with a planted 4x5 dense block",
            paper_analogue="maayan-foodweb (smallest real dataset)",
            builder=lambda: _planted(30, 1.5, 4, 5, 0.95, seed=11),
        ),
        DatasetSpec(
            name="social-tiny",
            tier="small",
            description="40-node heavy-tailed digraph (power-law weights)",
            paper_analogue="moreno-blogs style tiny social graph",
            builder=lambda: powerlaw_digraph(40, average_degree=3.0, exponent=2.3, seed=12),
        ),
        DatasetSpec(
            name="flights-small",
            tier="small",
            description="150-node heavy-tailed digraph, average degree 5",
            paper_analogue="openflights",
            builder=lambda: powerlaw_digraph(150, average_degree=5.0, exponent=2.3, seed=13),
        ),
        DatasetSpec(
            name="advogato-small",
            tier="small",
            description="200-node sparse trust-network background with a planted 8x12 block",
            paper_analogue="advogato trust network",
            builder=lambda: _planted(200, 3.0, 8, 12, 0.8, seed=14),
        ),
        DatasetSpec(
            name="er-small",
            tier="small",
            description="150-node uniform random digraph with 900 edges",
            paper_analogue="uniform-random control (hardest case for core pruning)",
            builder=lambda: gnm_random_digraph(150, 900, seed=15),
        ),
        # ----------------------------------------------------------- medium
        DatasetSpec(
            name="amazon-medium",
            tier="medium",
            description="1200-node heavy-tailed digraph, average degree 5",
            paper_analogue="amazon co-purchase",
            builder=lambda: powerlaw_digraph(1200, average_degree=5.0, exponent=2.4, seed=21),
        ),
        DatasetSpec(
            name="wiki-talk-medium",
            tier="medium",
            description="2000-node strongly skewed digraph (exponent 2.1)",
            paper_analogue="wiki-talk communication graph",
            builder=lambda: powerlaw_digraph(2000, average_degree=4.0, exponent=2.1, seed=22),
        ),
        DatasetSpec(
            name="planted-medium",
            tier="medium",
            description="1500-node sparse background with a planted 15x25 block (p=0.7)",
            paper_analogue="rating networks with an injected dense block",
            builder=lambda: _planted(1500, 4.0, 15, 25, 0.7, seed=23),
        ),
        DatasetSpec(
            name="rmat-medium",
            tier="medium",
            description="R-MAT digraph with 2^11 nodes, edge factor 6",
            paper_analogue="synthetic R-MAT used in the scalability study",
            builder=lambda: rmat_digraph(11, edge_factor=6, seed=24),
        ),
        DatasetSpec(
            name="er-medium",
            tier="medium",
            description="1500-node uniform random digraph with 9000 edges",
            paper_analogue="uniform-random control at medium scale",
            builder=lambda: gnm_random_digraph(1500, 9000, seed=25),
        ),
        # ------------------------------------------------------------ large
        DatasetSpec(
            name="web-large",
            tier="large",
            description="6000-node heavy-tailed digraph, average degree 5",
            paper_analogue="web crawls (uk-2002 style), scaled down",
            builder=lambda: powerlaw_digraph(6000, average_degree=5.0, exponent=2.2, seed=31),
        ),
        DatasetSpec(
            name="citation-large",
            tier="large",
            description="R-MAT digraph with 2^13 nodes, edge factor 5",
            paper_analogue="citation/patent graphs, scaled down",
            builder=lambda: rmat_digraph(13, edge_factor=5, seed=32),
        ),
        DatasetSpec(
            name="planted-large",
            tier="large",
            description="5000-node sparse background with a planted 20x30 block (p=0.6)",
            paper_analogue="large rating network with an injected dense block",
            builder=lambda: _planted(5000, 4.0, 20, 30, 0.6, seed=33),
        ),
    ]
    return {spec.name: spec for spec in specs}


_SPECS = _build_specs()


def dataset_specs() -> list[DatasetSpec]:
    """All registered dataset specifications (stable order)."""
    return list(_SPECS.values())


def dataset_names(tier: str | None = None) -> list[str]:
    """Registered dataset names, optionally filtered by tier."""
    if tier is None:
        return list(_SPECS)
    return [name for name, spec in _SPECS.items() if spec.tier == tier]


def exact_dataset_names() -> list[str]:
    """Datasets small enough for the exact-algorithm experiments."""
    return dataset_names("small")


def large_dataset_names() -> list[str]:
    """Datasets used by the approximation-only experiments."""
    return dataset_names("medium") + dataset_names("large")


@lru_cache(maxsize=None)
def _cached_build(name: str) -> DiGraph:
    return _SPECS[name].builder()


def load_dataset(name: str) -> DiGraph:
    """Materialise the named dataset (deterministic; a fresh copy every call)."""
    if name not in _SPECS:
        known = ", ".join(sorted(_SPECS))
        raise DatasetError(f"unknown dataset {name!r}; known datasets: {known}")
    return _cached_build(name).copy()
