"""Benchmark harness: workload construction, runners, and table printers.

The modules here contain everything the ``benchmarks/`` directory needs that
is *not* a pytest-benchmark fixture: dataset/algorithm matrices, result
collection, and plain-text table/series rendering so each experiment prints
the same kind of rows the paper's tables and figures report.
"""

from repro.bench.harness import (
    ExperimentRecord,
    format_series,
    format_table,
    run_method_on_dataset,
)
from repro.bench.workloads import (
    approx_method_matrix,
    edge_fraction_subgraph,
    exact_method_matrix,
    quality_reference_density,
)

__all__ = [
    "ExperimentRecord",
    "run_method_on_dataset",
    "format_table",
    "format_series",
    "exact_method_matrix",
    "approx_method_matrix",
    "edge_fraction_subgraph",
    "quality_reference_density",
]
