"""Result collection and plain-text reporting for the experiment suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.results import DDSResult
from repro.graph.digraph import DiGraph
from repro.session import DDSSession
from repro.utils.timer import time_call


@dataclass
class ExperimentRecord:
    """One measured cell of an experiment: dataset x method -> result + time."""

    experiment: str
    dataset: str
    method: str
    result: DDSResult
    seconds: float
    extra: dict[str, Any] = field(default_factory=dict)

    def row(self) -> dict[str, Any]:
        """Flat dictionary row used by :func:`format_table`."""
        row: dict[str, Any] = {
            "experiment": self.experiment,
            "dataset": self.dataset,
            "method": self.method,
            "seconds": round(self.seconds, 4),
            "density": round(self.result.density, 4),
            "|S|": self.result.s_size,
            "|T|": self.result.t_size,
        }
        # Flow-engine instrumentation, when the method ran min-cuts (keys
        # defined in the stats glossary of repro.flow.engine).
        for key in (
            "flow_solver",
            "flow_calls",
            "networks_built",
            "networks_reused",
            "arcs_pushed",
            "warm_starts_used",
            "cold_starts",
            "warm_start_fallbacks",
            "height_reuses",
        ):
            if key in self.result.stats:
                row[key] = self.result.stats[key]
        row.update(self.extra)
        return row


def run_method_on_dataset(
    experiment: str,
    dataset_name: str,
    graph: DiGraph,
    method: str,
    session: DDSSession | None = None,
    **kwargs: Any,
) -> ExperimentRecord:
    """Time one algorithm on one graph and wrap the outcome.

    Queries go through a :class:`~repro.session.DDSSession`; pass an existing
    ``session`` to measure warm (cache-assisted) timings across methods, or
    omit it for a cold per-call session matching the historical behaviour.
    """
    if session is None:
        session = DDSSession(graph)
    result, seconds = time_call(lambda: session.densest_subgraph(method, **kwargs))
    return ExperimentRecord(
        experiment=experiment,
        dataset=dataset_name,
        method=method,
        result=result,
        seconds=seconds,
    )


def format_table(rows: Iterable[dict[str, Any]], title: str | None = None) -> str:
    """Render dict rows as an aligned plain-text table (paper-style)."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(str(column)), max(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[Any, Any]],
    title: str | None = None,
) -> str:
    """Render an (x, y) series as text — the figure analogue of :func:`format_table`."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label} -> {y_label}")
    for x, y in points:
        y_text = f"{y:.4f}" if isinstance(y, float) else str(y)
        lines.append(f"  {x}: {y_text}")
    return "\n".join(lines)
