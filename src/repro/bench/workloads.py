"""Workload construction shared by the benchmark modules."""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.session import DDSSession
from repro.utils.rng import RngLike, make_rng


def exact_method_matrix(include_baseline: bool = True) -> list[str]:
    """The exact-algorithm column set of experiments E2/E6/E7."""
    methods = ["dc-exact", "core-exact"]
    if include_baseline:
        methods.insert(0, "flow-exact")
    return methods


def approx_method_matrix() -> list[str]:
    """The approximation-algorithm column set of experiments E3/E4/E5."""
    return ["peel-approx", "inc-approx", "core-approx"]


def service_mixed_workload(num_ratios: int = 12, repeats: int = 2) -> list[dict]:
    """E6-style mixed batch used by the batch-planner smoke gate and tests.

    ``repeats`` passes of (approx seeding, an exact run, ``num_ratios``
    fixed-ratio probes, a top-k) — the shape of a service tier replaying
    overlapping analyst sessions.  In *file order* the second pass repeats
    each probe only after ``num_ratios`` other ratios have gone through the
    decision-network cache, so with a cache smaller than ``num_ratios``
    every repeat has been evicted and misses; the planner groups identical
    probes adjacently (reuse distance 0), turning the same repeats into
    hits.  That eviction-versus-grouping gap is what the smoke gate pins.
    """
    queries: list[dict] = []
    for _ in range(repeats):
        queries.append({"query": "densest", "method": "core-approx"})
        queries.append({"query": "densest", "method": "core-exact"})
        for step in range(num_ratios):
            queries.append({"query": "fixed-ratio", "ratio": round(0.5 + 0.25 * step, 4)})
        queries.append({"query": "top-k", "k": 2, "method": "core-exact"})
    return queries


def edge_fraction_subgraph(graph: DiGraph, fraction: float, seed: RngLike = 0) -> DiGraph:
    """Random edge-induced subgraph keeping ``fraction`` of the edges.

    This is the workload of the scalability experiment (E5): the paper grows
    each dataset from 20% to 100% of its edges and measures runtime.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = make_rng(seed)
    sample = DiGraph(allow_self_loops=graph.allow_self_loops)
    for label in graph.nodes():
        sample.add_node(label)
    for u, v in graph.edges():
        if rng.random() < fraction:
            sample.add_edge(u, v)
    if sample.num_edges == 0 and graph.num_edges > 0:
        # Guarantee at least one edge so every algorithm stays well defined.
        u, v = next(iter(graph.edges()))
        sample.add_edge(u, v)
    return sample


def quality_reference_density(graph: DiGraph, exact_node_limit: int = 300) -> tuple[float, str]:
    """Reference density for the approximation-quality experiment (E4).

    Small graphs use the exact optimum; larger graphs fall back to the best
    answer any implemented algorithm finds (the paper does the same when the
    exact algorithms cannot finish on a dataset).
    """
    session = DDSSession(graph)
    if graph.num_nodes <= exact_node_limit:
        reference = session.densest_subgraph("core-exact")
        return reference.density, "core-exact"
    best_density = 0.0
    best_method = "none"
    for method in approx_method_matrix():
        result = session.densest_subgraph(method)
        if result.density > best_density:
            best_density = result.density
            best_method = method
    return best_density, best_method
