"""Recorded performance baselines shared by the test suite and the CI gates.

``SEED_FLOW_CALLS`` holds the min-cut counts measured on the seed
implementation (pre-retune, Dinic solver, default tolerances) for the small
fixture datasets.  Both the pytest regression tests
(``tests/test_core_retune.py``) and the E6 smoke gate
(``benchmarks/bench_e6_flowcalls.py --smoke``) compare against this single
copy, so a legitimate algorithm change that shifts the counts is re-recorded
in exactly one place.
"""

from __future__ import annotations

#: ``(dataset, method) -> flow_calls`` recorded from the seed implementation.
SEED_FLOW_CALLS: dict[tuple[str, str], int] = {
    ("foodweb-tiny", "dc-exact"): 92,
    ("foodweb-tiny", "core-exact"): 87,
    ("social-tiny", "dc-exact"): 272,
    ("social-tiny", "core-exact"): 123,
}
