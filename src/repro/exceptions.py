"""Exception hierarchy for the ``repro`` package.

All errors raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for malformed graphs or illegal graph operations."""


class EmptyGraphError(GraphError):
    """Raised when an algorithm that needs edges receives an edgeless graph."""


class ParseError(GraphError):
    """Raised when an on-disk graph file cannot be parsed."""


class FlowError(ReproError):
    """Raised for malformed flow networks or inconsistent flow states."""


class AlgorithmError(ReproError):
    """Raised when an algorithm is invoked with invalid parameters."""


class ConfigError(AlgorithmError):
    """Raised when a typed method configuration is invalid or mismatched.

    Subclasses :class:`AlgorithmError` so that legacy callers catching
    ``AlgorithmError`` around :func:`repro.core.api.densest_subgraph` keep
    working after the session/config redesign.
    """


class DeadlineExceeded(ReproError):
    """Raised when a query's time budget expires before the search completes.

    Cooperative: solvers and drivers only check at phase boundaries, so the
    residual state of every decision network is left exactly as it was at
    the last completed phase — a cancelled warm network retunes and resumes
    bit-identically.  ``partial`` carries the anytime result assembled by
    the search driver (an :class:`repro.runtime.AnytimeResult`: the best
    subgraph found so far plus certified density bounds), or ``None`` when
    the budget expired before any search state existed.
    """

    def __init__(self, message: str, *, partial: object | None = None) -> None:
        super().__init__(message)
        self.partial = partial


class DatasetError(ReproError):
    """Raised when a named dataset is unknown or cannot be materialised."""


class BatchQueryError(ReproError):
    """Raised when a batch query entry is malformed (unknown kind, missing or
    unexpected fields, wrong value types)."""


class StoreError(ReproError):
    """Raised when the persistent session store is missing, corrupt, or
    incompatible (unknown schema version, checksum mismatch, wrong graph)."""


class NetError(ReproError):
    """Raised when the network tier cannot complete an operation: a shard
    daemon is unreachable after the retry ladder, a graph cannot cross the
    wire losslessly, or a remote lane reports a failure."""


class ProtocolError(NetError):
    """Raised when a network frame is malformed: truncated, oversized, not
    valid JSON, failing its checksum, or speaking a different protocol
    version.  Strict by design — a damaged frame is never partially
    interpreted."""
