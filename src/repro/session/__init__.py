"""Session-oriented public API for densest-subgraph discovery.

Construct one :class:`DDSSession` per graph and query it repeatedly::

    from repro.session import DDSSession, ExactConfig

    session = DDSSession(graph)
    best = session.densest_subgraph("core-exact")
    top3 = session.top_k(3)                       # round 1 hits the cache
    core = session.max_xy_core()
    refined = session.densest_subgraph(
        "dc-exact", config=ExactConfig(tolerance=1e-9)
    )
    print(session.cache_stats())

The typed configs (:class:`ExactConfig`, :class:`ApproxConfig`,
:class:`FlowConfig`) and the method registry
(:mod:`repro.core.method_registry`) are re-exported here for convenience.
"""

from repro.core.config import ApproxConfig, ExactConfig, FlowConfig
from repro.core.method_registry import (
    MethodSpec,
    available_methods,
    get_method_spec,
    method_specs,
    register_method,
    unregister_method,
)
from repro.session.session import DDSSession

__all__ = [
    "DDSSession",
    "ExactConfig",
    "ApproxConfig",
    "FlowConfig",
    "MethodSpec",
    "available_methods",
    "get_method_spec",
    "method_specs",
    "register_method",
    "unregister_method",
]
