"""The session-oriented public API: :class:`DDSSession`.

A session binds to **one graph** and serves many queries over it, paying for
derived state once instead of once per call:

* **degree arrays** and the full :class:`~repro.core.subproblem.STSubproblem`,
* **[x, y]-core decompositions** (:meth:`DDSSession.xy_core`,
  :meth:`DDSSession.max_xy_core`),
* **retunable decision networks** keyed by ``(sub-problem, ratio)`` in a
  shared :class:`~repro.core.network_cache.NetworkCache` — PR 1's retune
  machinery extended across *queries*, not just within one binary search,
* **whole results**, keyed by ``(method, config)``, so a repeated query is
  answered without recomputation, and
* one :class:`~repro.flow.engine.FlowEngine` per solver, so flow
  instrumentation accumulates session-wide (see :meth:`cache_stats`).

Method dispatch goes through the declarative registry
(:mod:`repro.core.method_registry`) and every query is validated against the
method's typed config (:mod:`repro.core.config`) before any work starts.

Quickstart
----------
>>> from repro.graph import complete_bipartite_digraph
>>> session = DDSSession(complete_bipartite_digraph(2, 3))
>>> round(session.densest_subgraph("core-exact").density, 4)
2.4495
>>> session.densest_subgraph("core-exact").stats["result_cache_hit"]
True

The legacy one-shot :func:`repro.core.api.densest_subgraph` remains available
as a deprecation shim that constructs a throwaway session per call.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from dataclasses import fields as dataclass_fields
from dataclasses import replace
from typing import Any, Iterable, Mapping

from repro.core.config import ExactConfig, FlowConfig, MethodConfig
from repro.core.density import exactness_tolerance, global_density_upper_bound
from repro.core.fixed_ratio import maximize_fixed_ratio
from repro.core.method_registry import MethodSpec, RunContext, get_method_spec
from repro.core.network_cache import NetworkCache
from repro.core.results import DDSResult, FixedRatioOutcome
from repro.core.subproblem import STSubproblem
from repro.core.xycore import XYCore, max_xy_core, xy_core
from repro.exceptions import (
    AlgorithmError,
    ConfigError,
    DeadlineExceeded,
    EmptyGraphError,
    GraphError,
)
from repro.flow.engine import FlowEngine
from repro.graph.digraph import DiGraph, NodeLabel
from repro.graph.properties import graph_summary
from repro.incremental.certify import certify_result
from repro.incremental.delta import EdgeDelta, UpdateReport
from repro.incremental.maintain import (
    full_subproblem_token,
    migrate_network_cache,
    patch_degree_arrays,
    refresh_cores,
    seed_cache_from,
)
from repro.runtime import Deadline
from repro.utils.validation import require_positive_int

#: Default capacity of the per-session whole-result LRU cache.
DEFAULT_RESULT_CACHE_SIZE = 128


def _copy_result(result: DDSResult) -> DDSResult:
    """Defensive copy so callers can never corrupt a cached result.

    ``stats`` values include mutable containers (``network_nodes`` /
    ``network_arcs`` lists, the ``flow_solver_ignored`` dict), so the copy
    goes one level deep into them.
    """
    stats = {
        key: list(value) if isinstance(value, list) else dict(value) if isinstance(value, dict) else value
        for key, value in result.stats.items()
    }
    return replace(
        result,
        s_nodes=list(result.s_nodes),
        t_nodes=list(result.t_nodes),
        stats=stats,
    )


def _copy_core(core: XYCore) -> XYCore:
    """Defensive copy: the node lists are mutable, the cache must stay pristine."""
    return replace(core, s_nodes=list(core.s_nodes), t_nodes=list(core.t_nodes))


class DDSSession:
    """Stateful densest-subgraph query session over one directed graph.

    Parameters
    ----------
    graph:
        The :class:`~repro.graph.digraph.DiGraph` to serve queries against.
        The session treats it as immutable; mutating it directly afterwards
        raises :class:`~repro.exceptions.GraphError` on the next query.  The
        one sanctioned mutation path is :meth:`apply_updates`, which applies
        an edge delta *through* the session so every cache is patched or
        certified in step with the graph.
    flow:
        Session-wide default :class:`~repro.core.config.FlowConfig` (or a
        bare solver name).  Per-query configs override the solver; a
        per-query ``network_cache_size`` differing from the session's runs
        that query on a private cache of the requested capacity (the shared
        session cache keeps the capacity it was built with).
    result_cache_size:
        Capacity of the whole-result LRU cache (0 disables result caching;
        derived-state and network caching remain active).
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        flow: FlowConfig | str | None = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
    ) -> None:
        if not isinstance(graph, DiGraph):
            raise GraphError(f"DDSSession requires a DiGraph, got {type(graph).__name__}")
        if isinstance(flow, str):
            flow = FlowConfig(solver=flow)
        self.graph = graph
        self.flow = flow if flow is not None else FlowConfig()
        self._graph_token = graph.state_token
        self._network_cache = NetworkCache(self.flow.network_cache_size)
        self._engines: dict[str, FlowEngine] = {}
        self._results: OrderedDict[tuple[str, MethodConfig], DDSResult] = OrderedDict()
        self._result_cache_size = max(int(result_cache_size), 0)
        self._result_cache_hits = 0
        self._queries = 0
        self._subproblem: STSubproblem | None = None
        self._out_degrees: list[int] | None = None
        self._in_degrees: list[int] | None = None
        self._xy_cores: dict[tuple[int, int], XYCore] = {}
        self._max_core: XYCore | None = None
        self._summary: dict[str, Any] | None = None
        self._density_upper: float | None = None
        self._exact_tolerance: float | None = None
        self._warned_ignored_solvers: set[tuple[str, str, bool]] = set()
        self._warned_backend_mismatch = False
        self._updates_applied = 0
        self._certified_stale_hits = 0
        self._local_research_runs = 0
        self._anytime_returns = 0
        self._invalidated_keys: set[tuple[str, MethodConfig]] = set()
        self._lineage: list[str] = []

    @classmethod
    def from_seeded(
        cls,
        graph: DiGraph,
        derived: Mapping[str, Any] | None = None,
        *,
        flow: FlowConfig | str | None = None,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
    ) -> "DDSSession":
        """Build a session and hydrate it from externally computed state.

        The worker-process entry point of the process-pool executor:
        ``derived`` maps :meth:`seed_derived` keyword names to values — e.g.
        the degree arrays attached from a shared-memory graph segment
        (:func:`repro.service.shm.attach_graph`) — and is adopted before the
        first query, so a freshly spawned worker starts from the same
        derived state the parent already holds instead of recomputing it.
        Values are copied on adoption; passing zero-copy views over a
        mapped segment is safe even if the segment outlives the mapping.
        Seeding follows :meth:`seed_derived`'s validation rules.
        """
        session = cls(graph, flow=flow, result_cache_size=result_cache_size)
        if derived:
            session.seed_derived(**dict(derived))
        return session

    # ------------------------------------------------------------------
    # internal plumbing
    # ------------------------------------------------------------------
    def _check_unmutated(self) -> None:
        if self.graph.state_token != self._graph_token:
            raise GraphError(
                "the session's graph was structurally mutated after the session was "
                "created; cached state would be stale — create a new DDSSession"
            )

    def _engine_for(self, solver: str) -> FlowEngine:
        engine = self._engines.get(solver)
        if engine is None:
            engine = FlowEngine(solver)
            self._engines[solver] = engine
        return engine

    def _resolve_method(self, method: str) -> tuple[MethodSpec, bool]:
        """Map a method name (or ``"auto"``) to its spec."""
        # Import here (not at module load) so tests monkeypatching
        # ``repro.core.api.AUTO_EXACT_NODE_LIMIT`` keep working and no import
        # cycle forms with the deprecation shim.
        from repro.core import api

        if method == "auto":
            chosen = (
                "core-exact"
                if self.graph.num_nodes <= api.AUTO_EXACT_NODE_LIMIT
                else "core-approx"
            )
            return get_method_spec(chosen), True
        return get_method_spec(method), False

    def _base_config(self, spec: MethodSpec) -> MethodConfig:
        """Method defaults with the session-wide flow config folded in."""
        if issubclass(spec.config_type, ExactConfig):
            # Construct the method's own config type so registered methods
            # with ExactConfig *subclasses* resolve against the right class.
            return spec.config_type(flow=self.flow)
        return spec.config_type()

    def _prepare(
        self, method: str, config: MethodConfig | None, kwargs: dict[str, Any]
    ) -> tuple[MethodSpec, MethodConfig, bool, Any]:
        """Resolve (spec, config, was_auto, ignored) for a query.

        ``ignored`` is ``None``, or an ``(ignored_flow_solver,
        requested_warm_start)`` pair when a solver was requested on a method
        that runs no min-cuts.
        """
        spec, was_auto = self._resolve_method(method)
        ignored_solver = None
        requested_warm: bool | None = None
        if not spec.flow_backed:
            if "flow_solver" in kwargs:
                ignored_solver = kwargs.pop("flow_solver")
            if "warm_start" in kwargs:
                # A warm/cold request is vacuously satisfied by a method that
                # runs no min-cuts (zero warm starts either way), so it is
                # dropped rather than rejected — this keeps e.g. the CLI's
                # --cold-start usable with --method auto on any graph size.
                requested_warm = bool(kwargs.pop("warm_start"))
        base = self._base_config(spec)
        cfg = spec.config_type.resolve(config if config is not None else base, **kwargs)
        # ``flow`` on a non-flow-backed method keeps the legacy ignore-and-
        # warn behaviour.  User intent is only visible on an *explicitly
        # passed* config: with config=None the session's own default flow is
        # folded into ``base`` (and flow_solver= was popped above), so a
        # non-default cfg.flow there is session policy, not a request.  Only
        # the *solver name* counts as a request — config-only flow changes
        # (``network_cache_size``, ``warm_start``) select no backend, so
        # they must neither warn nor be treated as an ignored solver.
        if (
            not spec.flow_backed
            and ignored_solver is None
            and config is not None
            and hasattr(config, "flow")
            and config.flow.solver != spec.config_type().flow.solver
        ):
            ignored_solver = config.flow.solver
        if requested_warm is None:
            # The warm_start the caller actually asked for (explicit config,
            # else session policy) — captured *before* the normalisation
            # below so the ignored-solver dedup key can distinguish it.
            requested_warm = bool(
                getattr(getattr(config, "flow", None), "warm_start", self.flow.warm_start)
            )
        # ``supports_warm_start`` is load-bearing: a method that does not
        # take the session's warm-start hooks can never reuse residual flow,
        # so its config is normalised to ``warm_start=False`` — warm and
        # cold queries then share one result-cache entry instead of
        # pretending to differ.
        if (
            not spec.supports_warm_start
            and isinstance(getattr(cfg, "flow", None), FlowConfig)
            and cfg.flow.warm_start
        ):
            cfg = replace(cfg, flow=replace(cfg.flow, warm_start=False))
        # Any other knob the method never consults must not silently do
        # nothing: reject it.
        if spec.accepted_fields is not None:
            for config_field in dataclass_fields(cfg):
                name = config_field.name
                if name == "flow" or name in spec.accepted_fields:
                    continue
                if getattr(cfg, name) != getattr(base, name):
                    raise ConfigError(
                        f"method {spec.name!r} does not use config field {name!r} "
                        f"(accepted: {', '.join(sorted(spec.accepted_fields)) or 'none'})"
                    )
        ignored = None if ignored_solver is None else (ignored_solver, requested_warm)
        return spec, cfg, was_auto, ignored

    def _execute(
        self,
        spec: MethodSpec,
        cfg: MethodConfig,
        graph: DiGraph,
        network_cache: NetworkCache | None = None,
    ) -> DDSResult:
        """Run one query uncached (used for cache misses and top-k rounds).

        ``network_cache`` overrides the session cache — top-k rounds on
        peeled working copies pass a private cache so networks keyed by
        throwaway graph states never evict the session graph's entries.
        """
        self._queries += 1
        solver = cfg.flow.solver if isinstance(cfg, ExactConfig) else self.flow.solver
        if network_cache is None:
            network_cache = self._network_cache
            if (
                isinstance(cfg, ExactConfig)
                and cfg.flow.network_cache_size != self.flow.network_cache_size
            ):
                # The query asked for a different cache capacity (e.g. 0 to
                # disable caching): honour it with a private cache instead of
                # silently using — or resizing — the shared session cache.
                network_cache = NetworkCache(cfg.flow.network_cache_size)
        engine = self._engine_for(solver)
        context = RunContext(
            engine=engine,
            network_cache=network_cache if spec.supports_warm_start else None,
        )
        deadline_ms = (
            cfg.flow.deadline_ms if isinstance(cfg, ExactConfig) else self.flow.deadline_ms
        )
        if deadline_ms is None:
            return spec.runner(graph, cfg, context)
        # Arm the per-query budget on the engine — the one object every
        # driver and solver below this call already receives — and always
        # disarm it, so a deadline never leaks into the next query sharing
        # this engine.
        engine.deadline = Deadline(deadline_ms)
        try:
            return spec.runner(graph, cfg, context)
        except DeadlineExceeded:
            self._anytime_returns += 1
            raise
        finally:
            engine.deadline = None

    def _serve(self, spec: MethodSpec, cfg: MethodConfig) -> DDSResult:
        """Answer a whole-graph query through the result cache."""
        key = (spec.name, cfg)
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
            self._result_cache_hits += 1
            self._queries += 1
            out = _copy_result(cached)
            out.stats["result_cache_hit"] = True
            return out
        if key in self._invalidated_keys:
            # This exact query was answered before and its entry was
            # invalidated by apply_updates — recomputing it now is the
            # bounded local re-search the certification tier deferred.
            self._invalidated_keys.discard(key)
            self._local_research_runs += 1
        result = self._execute(spec, cfg, self.graph)
        if self._result_cache_size > 0:
            self._results[key] = _copy_result(result)
            while len(self._results) > self._result_cache_size:
                self._results.popitem(last=False)
        result.stats["result_cache_hit"] = False
        return result

    def _annotate(
        self, result: DDSResult, spec: MethodSpec, was_auto: bool, ignored: Any
    ) -> DDSResult:
        if was_auto:
            result.stats["auto_selected"] = spec.name
        if ignored is not None:
            ignored_solver, requested_warm = ignored
            result.stats["flow_solver_ignored"] = {
                "flow_solver": ignored_solver,
                "method": spec.name,
            }
            # Deduped on (method, flow_solver, warm_start) — the warm flag is
            # the *requested* one (captured before normalisation), so repeats
            # of the same explicit request stay silent while config-only
            # changes never reach this branch at all (see _prepare).
            warn_key = (spec.name, str(ignored_solver), bool(requested_warm))
            if warn_key not in self._warned_ignored_solvers:
                self._warned_ignored_solvers.add(warn_key)
                warnings.warn(
                    f"method {spec.name!r} performs no min-cuts; "
                    f"flow_solver={ignored_solver!r} is ignored",
                    UserWarning,
                    stacklevel=3,
                )
        small = result.stats.get("small_vector_solves", 0)
        if small:
            # The query forced the vectorised backend onto networks below the
            # auto arc threshold — the one regime BENCH_flow.json shows it
            # losing to dinic in.  Mirror of ``flow_solver_ignored``: stats
            # on every affected result, a UserWarning once per session.
            result.stats["backend_mismatch"] = {
                "flow_solver": result.stats.get("flow_solver"),
                "method": spec.name,
                "small_vector_solves": small,
            }
            if not self._warned_backend_mismatch:
                self._warned_backend_mismatch = True
                warnings.warn(
                    f"{small} forced {result.stats.get('flow_solver')!r} solves ran on "
                    "networks below the auto arc threshold, where the vectorised "
                    "backend is slower than dinic; use flow_solver='auto' to let "
                    "small solves take dinic and small *families* batch onto the "
                    "vectorised backend",
                    UserWarning,
                    stacklevel=3,
                )
        return result

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def densest_subgraph(
        self, method: str = "auto", config: MethodConfig | None = None, **kwargs: Any
    ) -> DDSResult:
        """Find the (exact or approximate) densest ``(S, T)`` pair.

        ``method`` is a registry name or ``"auto"`` (CoreExact up to
        :data:`~repro.core.api.AUTO_EXACT_NODE_LIMIT` nodes, CoreApprox
        beyond).  ``config`` is the method's typed config
        (:class:`~repro.core.config.ExactConfig` /
        :class:`~repro.core.config.ApproxConfig`); keyword arguments are
        per-field overrides (``tolerance=``, ``epsilon=``, ``flow_solver=``
        ...).  Repeated identical queries are served from the session's
        result cache (``stats["result_cache_hit"]``).
        """
        self._check_unmutated()
        if self.graph.num_edges == 0:
            raise EmptyGraphError("densest_subgraph requires a graph with at least one edge")
        spec, cfg, was_auto, ignored = self._prepare(method, config, kwargs)
        return self._annotate(self._serve(spec, cfg), spec, was_auto, ignored)

    def top_k(
        self,
        k: int,
        method: str = "auto",
        min_density: float = 0.0,
        config: MethodConfig | None = None,
        **kwargs: Any,
    ) -> list[DDSResult]:
        """Greedily extract up to ``k`` edge-disjoint dense pairs.

        Round 1 is exactly :meth:`densest_subgraph` on the session graph and
        is served through (and feeds) the session result cache; later rounds
        run on a private working copy with the reported edges removed, so
        successive pairs are edge-disjoint and densities are non-increasing.
        Stops early when the best remaining density drops to ``min_density``
        or the working copy runs out of edges.
        """
        self._check_unmutated()
        require_positive_int(k, "k")
        if min_density < 0:
            raise AlgorithmError(f"min_density must be >= 0, got {min_density}")
        if self.graph.num_edges == 0:
            raise EmptyGraphError("top_k_densest requires a graph with at least one edge")
        spec, cfg, was_auto, ignored = self._prepare(method, config, kwargs)

        results: list[DDSResult] = []
        working: DiGraph | None = None
        working_cache: NetworkCache | None = None
        working_token: tuple | None = None
        cache_size = (
            cfg.flow.network_cache_size
            if isinstance(cfg, ExactConfig)
            else self.flow.network_cache_size
        )
        for _ in range(k):
            if working is not None and working.num_edges == 0:
                break
            if working is None:
                result = self._serve(spec, cfg)
            else:
                result = self._execute(spec, cfg, working, network_cache=working_cache)
            if result.density <= min_density:
                break
            self._annotate(result, spec, was_auto, ignored)
            results.append(result)
            first_peel = working is None
            if first_peel:
                working = self.graph.copy()
                # The peeled rounds share one private network cache: their
                # graph states are throwaway, so depositing them into the
                # session cache would only evict the session graph's
                # entries.  Sized from the query's own flow config, like
                # _execute.
                working_cache = NetworkCache(cache_size)
            # A peel round *is* an edge-removal delta: remove exactly the
            # reported pair's edges in one apply_delta batch, then carry the
            # previous round's decision networks across the delta — round 2
            # by clone-and-patch from the session cache, later rounds by
            # migrating the working cache in place — so each round retunes
            # warm patched networks instead of rebuilding from scratch.
            s_indices = working.indices_of(result.s_nodes)
            t_indices = working.indices_of(result.t_nodes)
            block = [
                (working.label_of(u), working.label_of(v))
                for u, v in working.edges_between(s_indices, t_indices)
            ]
            if spec.supports_warm_start:
                source_token = (
                    full_subproblem_token(self.graph)
                    if first_peel
                    else working_token
                )
            _, removed_pairs = working.apply_delta((), block)
            if not spec.supports_warm_start:
                continue
            working_token = full_subproblem_token(working)
            if first_peel:
                seed_cache_from(
                    self._network_cache.entries(),
                    source_token,
                    working_cache,
                    working_token,
                    working,
                    [],
                    removed_pairs,
                )
            else:
                migrate_network_cache(
                    working_cache,
                    source_token,
                    working_token,
                    working,
                    [],
                    removed_pairs,
                )
        return results

    def fixed_ratio(
        self,
        ratio: float,
        *,
        lower: float = 0.0,
        upper: float | None = None,
        tolerance: float | None = None,
        coarse_gap: float | None = None,
        refine_above: float | None = None,
        flow_solver: str | None = None,
        warm_start: bool | None = None,
        deadline_ms: float | None = None,
    ) -> FixedRatioOutcome:
        """Bracket the fixed-ratio surrogate optimum ``val(ratio)``.

        This is the session-cached form of
        :func:`repro.core.fixed_ratio.maximize_fixed_ratio` on the full
        graph: the decision network for ``ratio`` is fetched from (and
        deposited into) the session network cache, so a coarse probe followed
        by a refined probe at the same ratio retunes one network instead of
        building two — the cross-query analogue of the DC driver's
        coarse→refine probe reuse.  Cached networks keep the residual flow
        of their last solve, so with ``warm_start`` (default: the session's
        ``FlowConfig.warm_start``) a repeated probe at the same ratio also
        *continues that flow* instead of re-pushing it.
        """
        self._check_unmutated()
        if self.graph.num_edges == 0:
            raise EmptyGraphError("fixed_ratio requires a graph with at least one edge")
        self._queries += 1
        if upper is None:
            upper = self.density_upper_bound()
        if tolerance is None:
            tolerance = self.exactness_tolerance()
        engine = self._engine_for(flow_solver if flow_solver is not None else self.flow.solver)
        if deadline_ms is None:
            deadline_ms = self.flow.deadline_ms
        if deadline_ms is not None:
            engine.deadline = Deadline(deadline_ms)
        try:
            return maximize_fixed_ratio(
                self.subproblem(),
                float(ratio),
                lower=lower,
                upper=upper,
                tolerance=tolerance,
                coarse_gap=coarse_gap,
                refine_above=refine_above,
                engine=engine,
                network_cache=self._network_cache,
                warm_start=self.flow.warm_start if warm_start is None else bool(warm_start),
            )
        except DeadlineExceeded:
            self._anytime_returns += 1
            raise
        finally:
            engine.deadline = None

    def xy_core(self, x: int, y: int) -> XYCore:
        """The maximal [x, y]-core (cached per ``(x, y)``; copy returned)."""
        self._check_unmutated()
        key = (x, y)
        core = self._xy_cores.get(key)
        if core is None:
            core = xy_core(self.graph, x, y)
            self._xy_cores[key] = core
        return _copy_core(core)

    def max_xy_core(self) -> XYCore:
        """The maximum-product [x, y]-core (cached; copy returned)."""
        self._check_unmutated()
        if self._max_core is None:
            self._max_core = max_xy_core(self.graph)
        return _copy_core(self._max_core)

    def summary(self) -> dict[str, Any]:
        """Structural statistics of the session graph (cached)."""
        self._check_unmutated()
        if self._summary is None:
            self._summary = graph_summary(self.graph)
        return dict(self._summary)

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def apply_updates(
        self,
        added_edges: Iterable[tuple[NodeLabel, NodeLabel]] = (),
        removed_edges: Iterable[tuple[NodeLabel, NodeLabel]] = (),
        *,
        certify: bool = True,
    ) -> UpdateReport:
        """Apply one edge delta through the session, patching caches in place.

        The sanctioned alternative to rebuilding a session when the graph
        changes: the delta is normalized (:meth:`EdgeDelta.normalize
        <repro.incremental.delta.EdgeDelta.normalize>`), applied to the graph
        in one state-token step, and then every layer of cached state is
        brought along instead of thrown away —

        * degree arrays are patched in place;
        * cached [x, y]-cores are re-peeled locally (removal-only deltas) or
          recomputed (deltas with insertions);
        * cached full-graph decision networks are migrated by arc-level
          surgery that preserves their warm residual flows
          (:func:`~repro.incremental.maintain.patch_decision_network`);
        * cached results are **certified** against the delta
          (:func:`~repro.incremental.certify.certify_result`): entries whose
          optimality still has a cheap proof are kept (and marked
          ``stats["certified_stale"]``), the rest are evicted and their keys
          remembered so the next identical query counts as a bounded local
          re-search (``local_research_runs``).

        With ``certify=False`` every cached result is evicted unconditionally
        — the next query per key then re-searches on the patched networks,
        which is byte-identical to a cold rebuild (certification instead
        promises *correctness*: a certified entry may name a different but
        equally optimal pair than a cold run would when the optimum is
        non-unique).

        Returns the :class:`~repro.incremental.delta.UpdateReport` of
        everything that happened; counters aggregate in :meth:`cache_stats`
        (``updates_applied`` / ``certified_stale_hits`` /
        ``local_research_runs``) and each pre-update content fingerprint is
        appended to :meth:`lineage`.
        """
        self._check_unmutated()
        delta = EdgeDelta.normalize(self.graph, added_edges, removed_edges)
        report = UpdateReport(delta=delta, removal_only=delta.removal_only)
        if delta.is_empty:
            return report

        old_token = full_subproblem_token(self.graph)
        old_fingerprint = self.graph.content_fingerprint()
        added_pairs, removed_pairs = self.graph.apply_delta(delta.added, delta.removed)
        self._graph_token = self.graph.state_token
        self._updates_applied += 1
        self._lineage.append(old_fingerprint)
        report.edges_added = len(added_pairs)
        report.edges_removed = len(removed_pairs)
        report.nodes_added = len(delta.new_nodes)

        # Degree arrays patch in place; the other cheap derived structures
        # (sub-problem, summary, bounds) just recompute lazily on demand —
        # each is O(n + m), not worth a patch protocol of its own.
        patch_degree_arrays(
            self._out_degrees,
            self._in_degrees,
            self.graph.num_nodes,
            added_pairs,
            removed_pairs,
        )
        self._subproblem = None
        self._summary = None
        self._density_upper = None
        self._exact_tolerance = None

        (
            self._xy_cores,
            self._max_core,
            report.cores_repeeled,
            report.cores_rebuilt,
            report.max_core_kept,
        ) = refresh_cores(self.graph, self._xy_cores, self._max_core, delta.removal_only)

        new_token = full_subproblem_token(self.graph)
        (
            patched_entries,
            report.networks_patched,
            report.networks_dropped,
        ) = migrate_network_cache(
            self._network_cache,
            old_token,
            new_token,
            self.graph,
            added_pairs,
            removed_pairs,
        )

        if self._results:
            tolerance = self.exactness_tolerance()
            engine = self._engine_for(self.flow.solver)
            for key in list(self._results.keys()):
                if not certify:
                    del self._results[key]
                    self._invalidated_keys.add(key)
                    report.results_invalidated += 1
                    continue
                result = self._results[key]
                certificate = certify_result(
                    self.graph,
                    result,
                    removal_only=delta.removal_only,
                    insertions=len(added_pairs),
                    tolerance=tolerance,
                    networks=patched_entries,
                    engine=engine,
                )
                report.certificates.append(certificate)
                report.verify_cuts += certificate.verify_cuts
                if certificate.certified:
                    if certificate.replacement is not None:
                        self._results[key] = _copy_result(certificate.replacement)
                    self._results[key].stats["certified_stale"] = certificate.reason
                    self._certified_stale_hits += 1
                    report.results_certified += 1
                else:
                    del self._results[key]
                    self._invalidated_keys.add(key)
                    report.results_invalidated += 1
        return report

    def lineage(self) -> list[str]:
        """Content fingerprints of every pre-update graph state, oldest first.

        One entry per :meth:`apply_updates` call that changed the graph —
        the delta lineage the persistent store records so a warmed session
        knows which ancestor states its entries evolved from.
        """
        return list(self._lineage)

    def seed_lineage(self, fingerprints: Iterable[str]) -> None:
        """Adopt a delta lineage recorded elsewhere (persistent-store hook)."""
        self._lineage = [str(fingerprint) for fingerprint in fingerprints]

    # ------------------------------------------------------------------
    # cached derived state
    # ------------------------------------------------------------------
    def subproblem(self) -> STSubproblem:
        """The full-graph :class:`STSubproblem` (computed once per session)."""
        self._check_unmutated()
        if self._subproblem is None:
            self._subproblem = STSubproblem.from_graph(self.graph)
        return self._subproblem

    def out_degrees(self) -> list[int]:
        """Out-degree array by internal node index (cached; copy returned)."""
        self._check_unmutated()
        if self._out_degrees is None:
            self._out_degrees = self.graph.out_degrees()
        return list(self._out_degrees)

    def in_degrees(self) -> list[int]:
        """In-degree array by internal node index (cached; copy returned)."""
        self._check_unmutated()
        if self._in_degrees is None:
            self._in_degrees = self.graph.in_degrees()
        return list(self._in_degrees)

    def density_upper_bound(self) -> float:
        """Cached :func:`~repro.core.density.global_density_upper_bound`."""
        self._check_unmutated()
        if self._density_upper is None:
            self._density_upper = global_density_upper_bound(self.graph)
        return self._density_upper

    def exactness_tolerance(self) -> float:
        """Cached :func:`~repro.core.density.exactness_tolerance`."""
        self._check_unmutated()
        if self._exact_tolerance is None:
            self._exact_tolerance = exactness_tolerance(self.graph)
        return self._exact_tolerance

    # ------------------------------------------------------------------
    # warm-state exchange (the persistent store's hooks)
    # ------------------------------------------------------------------
    def cached_results(self) -> list[tuple[str, MethodConfig, DDSResult]]:
        """Snapshot of the whole-result cache as ``(method, config, result)`` triples.

        Returns defensive copies in LRU order (least recently used first).
        This is the export half of the persistent-store contract
        (:class:`repro.service.store.SessionStore`); the import half is
        :meth:`seed_result`.
        """
        return [
            (method, config, _copy_result(result))
            for (method, config), result in self._results.items()
        ]

    def seed_result(self, method: str, config: MethodConfig, result: DDSResult) -> bool:
        """Deposit an externally computed result into the result cache.

        The warm-start hook of the persistent store: a result computed by an
        earlier process (or another worker) is inserted under ``(method,
        config)`` so the next identical query is served as a
        ``result_cache_hit`` without recomputation.  The method name and
        config are validated through the registry exactly like a live query;
        the *caller* vouches that ``result`` answers that query on this
        session's graph — the store backs that up with its content
        fingerprint and per-entry checksums.  Returns ``False`` (and caches
        nothing) when result caching is disabled.
        """
        self._check_unmutated()
        spec = get_method_spec(method)
        cfg = spec.config_type.resolve(config)
        if self._result_cache_size <= 0:
            return False
        key = (spec.name, cfg)
        self._results[key] = _copy_result(result)
        self._results.move_to_end(key)
        while len(self._results) > self._result_cache_size:
            self._results.popitem(last=False)
        return True

    def cached_xy_cores(self) -> list[XYCore]:
        """Copies of every [x, y]-core this session has computed so far."""
        return [_copy_core(core) for core in self._xy_cores.values()]

    def cached_max_core(self) -> XYCore | None:
        """The cached maximum-product core, or ``None`` — never computes it."""
        return _copy_core(self._max_core) if self._max_core is not None else None

    def seed_derived(
        self,
        *,
        out_degrees: list[int] | None = None,
        in_degrees: list[int] | None = None,
        xy_cores: list[XYCore] | None = None,
        max_core: XYCore | None = None,
        density_upper_bound: float | None = None,
        exactness_tolerance: float | None = None,
    ) -> None:
        """Adopt derived per-graph state computed elsewhere (store warm start).

        Only the pieces passed are adopted; anything already cached is
        overwritten.  Degree arrays are validated against the graph's node
        count and core node indices against its index range (mismatched
        state means it belongs to a different graph and raises
        :class:`~repro.exceptions.GraphError` here, not an ``IndexError``
        at some later query).
        """
        self._check_unmutated()
        n = self.graph.num_nodes
        for name, degrees in (("out_degrees", out_degrees), ("in_degrees", in_degrees)):
            if degrees is not None and len(degrees) != n:
                raise GraphError(
                    f"seeded {name} has {len(degrees)} entries but the graph has {n} nodes"
                )

        def checked_core(core: XYCore) -> XYCore:
            """Copy a core after verifying its indices fit this graph."""
            if any(not 0 <= index < n for index in (*core.s_nodes, *core.t_nodes)):
                raise GraphError(
                    f"seeded [{core.x}, {core.y}]-core holds node indices outside "
                    f"[0, {n}); it belongs to a different graph"
                )
            return _copy_core(core)

        if out_degrees is not None:
            self._out_degrees = [int(d) for d in out_degrees]
        if in_degrees is not None:
            self._in_degrees = [int(d) for d in in_degrees]
        if xy_cores is not None:
            for core in xy_cores:
                self._xy_cores[(core.x, core.y)] = checked_core(core)
        if max_core is not None:
            self._max_core = checked_core(max_core)
        if density_upper_bound is not None:
            self._density_upper = float(density_upper_bound)
        if exactness_tolerance is not None:
            self._exact_tolerance = float(exactness_tolerance)

    # ------------------------------------------------------------------
    # introspection / maintenance
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, Any]:
        """Session-wide cache and flow-engine counters.

        ``networks_built`` / ``networks_reused`` / ``flow_calls`` /
        ``arcs_pushed`` / ``warm_starts_used`` / ``cold_starts`` aggregate
        over every query served so far, which is what the repeated-query
        regression tests pin; the keys are defined once in the stats
        glossaries of :mod:`repro.flow.engine` and
        :mod:`repro.core.network_cache`.
        """
        stats: dict[str, Any] = {
            "queries": self._queries,
            "result_cache_hits": self._result_cache_hits,
            "result_cache_entries": len(self._results),
            "updates_applied": self._updates_applied,
            "certified_stale_hits": self._certified_stale_hits,
            "local_research_runs": self._local_research_runs,
            "anytime_returns": self._anytime_returns,
        }
        stats.update(self._network_cache.stats())
        for counter in (
            "flow_calls",
            "networks_built",
            "networks_reused",
            "arcs_pushed",
            "warm_starts_used",
            "cold_starts",
            "warm_start_fallbacks",
            "height_reuses",
            "backend_selections",
            "batched_solves",
            "small_vector_solves",
            "deadline_hits",
        ):
            stats[counter] = sum(getattr(engine, counter) for engine in self._engines.values())
        auto_backends: dict[str, int] = {}
        for engine in self._engines.values():
            for backend, count in engine.auto_backend_choices.items():
                auto_backends[backend] = auto_backends.get(backend, 0) + count
        if auto_backends:
            stats["auto_backends"] = auto_backends
        stats["xy_cores_cached"] = len(self._xy_cores) + (1 if self._max_core is not None else 0)
        return stats

    def clear_cache(self) -> None:
        """Drop every cached result, network, and derived structure."""
        self._results.clear()
        self._network_cache.clear()
        self._invalidated_keys.clear()
        self._subproblem = None
        self._out_degrees = None
        self._in_degrees = None
        self._xy_cores.clear()
        self._max_core = None
        self._summary = None
        self._density_upper = None
        self._exact_tolerance = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DDSSession(n={self.graph.num_nodes}, m={self.graph.num_edges}, "
            f"queries={self._queries}, solver={self.flow.solver!r})"
        )
