"""Undirected densest-subgraph companion algorithms.

The DDS problem generalises the classic undirected edge-densest subgraph
problem, and the paper's motivation rests on the observation that ignoring
edge directions loses the hub/authority structure of the answer.  This
subpackage implements the standard undirected toolkit — k-cores, Charikar's
1/2-approximation peel, and Goldberg's exact max-flow algorithm — so the
benchmarks can quantify exactly that gap (experiment E12) and so the library
is usable for undirected inputs as well.

Undirected graphs are represented as symmetric :class:`~repro.graph.DiGraph`
objects (both arc directions present); :func:`symmetrize` converts any
digraph into that form.
"""

from repro.undirected.charikar import charikar_peel
from repro.undirected.goldberg import goldberg_exact
from repro.undirected.kcore import core_decomposition, k_core, max_core
from repro.undirected.models import UndirectedResult, edge_density, symmetrize

__all__ = [
    "UndirectedResult",
    "edge_density",
    "symmetrize",
    "k_core",
    "max_core",
    "core_decomposition",
    "charikar_peel",
    "goldberg_exact",
]
