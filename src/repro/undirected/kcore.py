"""Classic k-core decomposition on the undirected view of a graph.

The k-core is the largest induced subgraph in which every vertex has degree
at least ``k``.  The decomposition assigns every vertex its core number (the
largest ``k`` for which it survives); we use the standard "peel the current
minimum-degree vertex" algorithm with a lazy heap, whose invariant is that
the core number of the vertex being removed is the maximum of the minimum
degrees seen so far.
"""

from __future__ import annotations

import heapq

from repro.graph.digraph import DiGraph, NodeLabel
from repro.undirected.models import symmetrize
from repro.utils.validation import require_non_negative_int


def core_decomposition(graph: DiGraph) -> dict[NodeLabel, int]:
    """Core number of every vertex of the undirected view of ``graph``."""
    symmetric = symmetrize(graph)
    n = symmetric.num_nodes
    if n == 0:
        return {}
    adjacency = symmetric.out_adj
    degrees = [len(neighbors) for neighbors in adjacency]
    removed = [False] * n
    core = [0] * n

    heap = [(degrees[node], node) for node in range(n)]
    heapq.heapify(heap)
    current_floor = 0

    while heap:
        degree, node = heapq.heappop(heap)
        if removed[node] or degree != degrees[node]:
            continue
        removed[node] = True
        current_floor = max(current_floor, degree)
        core[node] = current_floor
        for neighbor in adjacency[node]:
            if not removed[neighbor]:
                degrees[neighbor] -= 1
                heapq.heappush(heap, (degrees[neighbor], neighbor))

    return {symmetric.label_of(index): core[index] for index in range(n)}


def k_core(graph: DiGraph, k: int) -> list[NodeLabel]:
    """Vertices of the undirected k-core (possibly empty)."""
    require_non_negative_int(k, "k")
    numbers = core_decomposition(graph)
    return [label for label, core_number in numbers.items() if core_number >= k]


def max_core(graph: DiGraph) -> tuple[int, list[NodeLabel]]:
    """``(k_max, vertices of the k_max-core)`` of the undirected view."""
    numbers = core_decomposition(graph)
    if not numbers:
        return 0, []
    k_max = max(numbers.values())
    return k_max, [label for label, core_number in numbers.items() if core_number >= k_max]
