"""Goldberg's exact algorithm for the undirected densest subgraph.

For a guess ``g`` build the network: source ``s`` to every vertex with
capacity ``deg(v)``, every vertex to sink ``t`` with capacity ``2g``, and
both directions of every undirected edge with capacity 1.  The cut value for
a vertex subset ``H`` (vertices on the source side) equals
``2m - 2(e(H) - g|H|)``, so ``mincut < 2m`` iff some subgraph has edge
density greater than ``g``.  A binary search with gap below ``1/(n(n-1))``
(densities are of the form ``e/|H|``) pins the exact optimum.
"""

from __future__ import annotations

from repro.exceptions import EmptyGraphError
from repro.flow.dinic import DinicSolver
from repro.flow.network import FlowNetwork
from repro.graph.digraph import DiGraph
from repro.undirected.models import UndirectedResult, symmetrize, undirected_edge_count


def goldberg_exact(graph: DiGraph) -> UndirectedResult:
    """Exact undirected densest subgraph of the undirected view of ``graph``."""
    symmetric = symmetrize(graph)
    if symmetric.num_edges == 0:
        raise EmptyGraphError("goldberg_exact requires a graph with at least one edge")

    n = symmetric.num_nodes
    m = symmetric.num_edges // 2
    adjacency = symmetric.out_adj
    degrees = [len(neighbors) for neighbors in adjacency]

    def build_network(guess: float) -> FlowNetwork:
        network = FlowNetwork(n + 2)
        source, sink = n, n + 1
        for node in range(n):
            network.add_edge(source, node, float(degrees[node]))
            network.add_edge(node, sink, 2.0 * guess)
        for node in range(n):
            for neighbor in adjacency[node]:
                network.add_edge(node, neighbor, 1.0)
        return network

    low, high = 0.0, float(max(degrees))
    tolerance = 1.0 / (n * (n - 1)) if n > 1 else 1e-9
    best_nodes = list(range(n))
    flow_calls = 0

    while high - low >= tolerance:
        guess = (low + high) / 2.0
        network = build_network(guess)
        solver = DinicSolver(network, n, n + 1)
        cut_value = solver.max_flow()
        flow_calls += 1
        if cut_value < 2.0 * m - 1e-9 * max(1.0, 2.0 * m):
            source_side = [node for node in solver.min_cut_source_side() if node < n]
            if source_side:
                best_nodes = source_side
                low = guess
            else:
                high = guess
        else:
            high = guess

    labels = symmetric.labels_of(sorted(best_nodes))
    edges_inside = undirected_edge_count(symmetric, labels)
    return UndirectedResult(
        nodes=labels,
        density=edges_inside / len(labels),
        edge_count=edges_inside,
        method="goldberg-exact",
        is_exact=True,
        stats={"flow_calls": flow_calls},
    )
