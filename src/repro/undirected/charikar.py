"""Charikar's greedy 1/2-approximation for the undirected densest subgraph.

Repeatedly remove the minimum-degree vertex and return the densest
intermediate subgraph; the classic argument shows its edge density is at
least half the optimum.
"""

from __future__ import annotations

import heapq

from repro.graph.digraph import DiGraph
from repro.exceptions import EmptyGraphError
from repro.undirected.models import UndirectedResult, symmetrize, undirected_edge_count


def charikar_peel(graph: DiGraph) -> UndirectedResult:
    """Greedy peel of the undirected view of ``graph`` (1/2-approximation)."""
    symmetric = symmetrize(graph)
    if symmetric.num_edges == 0:
        raise EmptyGraphError("charikar_peel requires a graph with at least one edge")
    n = symmetric.num_nodes
    adjacency = symmetric.out_adj
    degrees = [len(neighbors) for neighbors in adjacency]
    alive = [True] * n
    edge_count = symmetric.num_edges // 2
    alive_count = n

    heap = [(degrees[node], node) for node in range(n)]
    heapq.heapify(heap)

    removals: list[int] = []
    best_density = edge_count / alive_count
    best_step = 0

    while alive_count > 1:
        degree, node = heapq.heappop(heap)
        if not alive[node] or degree != degrees[node]:
            continue
        alive[node] = False
        alive_count -= 1
        removals.append(node)
        for neighbor in adjacency[node]:
            if alive[neighbor]:
                degrees[neighbor] -= 1
                edge_count -= 1
                heapq.heappush(heap, (degrees[neighbor], neighbor))
        density = edge_count / alive_count
        if density > best_density:
            best_density = density
            best_step = len(removals)

    survivors = set(range(n)) - set(removals[:best_step])
    nodes = symmetric.labels_of(sorted(survivors))
    return UndirectedResult(
        nodes=nodes,
        density=best_density,
        edge_count=undirected_edge_count(symmetric, nodes),
        method="charikar-peel",
        is_exact=False,
        stats={"steps": len(removals)},
    )
