"""Shared types and helpers for the undirected companion algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.graph.digraph import DiGraph, NodeLabel


@dataclass
class UndirectedResult:
    """An undirected densest-subgraph answer (single vertex set)."""

    nodes: list[NodeLabel]
    density: float
    edge_count: int
    method: str
    is_exact: bool
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of vertices in the answer."""
        return len(self.nodes)


def symmetrize(graph: DiGraph) -> DiGraph:
    """Return the undirected view of ``graph`` as a symmetric digraph.

    For every edge ``(u, v)`` both arcs ``u -> v`` and ``v -> u`` are present
    in the result, so undirected degree equals out-degree equals in-degree.
    """
    symmetric = DiGraph(allow_self_loops=False)
    for label in graph.nodes():
        symmetric.add_node(label)
    for u, v in graph.edges():
        symmetric.add_edge(u, v)
        symmetric.add_edge(v, u)
    return symmetric


def undirected_edge_count(symmetric_graph: DiGraph, nodes: Sequence[NodeLabel]) -> int:
    """Number of undirected edges inside ``nodes`` of a symmetric digraph."""
    indices = symmetric_graph.indices_of(nodes)
    directed = symmetric_graph.count_edges_between(indices, indices)
    return directed // 2


def edge_density(symmetric_graph: DiGraph, nodes: Iterable[NodeLabel]) -> float:
    """Classic undirected edge density ``|E(H)| / |V(H)|`` of the induced subgraph."""
    node_list = list(nodes)
    if not node_list:
        return 0.0
    return undirected_edge_count(symmetric_graph, node_list) / len(node_list)
