"""``repro`` — Densest Subgraph Discovery on Large Directed Graphs.

A from-scratch Python reproduction of the algorithm family of
*"Efficient Algorithms for Densest Subgraph Discovery on Large Directed
Graphs"* (SIGMOD 2020): the Kannan–Vinay directed density, [x, y]-cores,
flow-based exact solvers with divide-and-conquer over |S|/|T| ratios, and
core-based 2-approximations.

Quickstart
----------
>>> from repro import DDSSession, DiGraph
>>> g = DiGraph.from_edges([("a", "x"), ("a", "y"), ("b", "x"), ("b", "y"), ("c", "a")])
>>> session = DDSSession(g)
>>> result = session.densest_subgraph("core-exact")
>>> sorted(result.s_nodes), sorted(result.t_nodes)
(['a', 'b'], ['x', 'y'])

The one-shot ``densest_subgraph(g, method=...)`` remains available as a
deprecation shim over a throwaway session.
"""

from repro.core import (
    ApproxConfig,
    DDSResult,
    ExactConfig,
    FlowConfig,
    MethodSpec,
    brute_force_dds,
    core_approx,
    core_based_bounds,
    core_exact,
    dc_exact,
    densest_subgraph,
    directed_density,
    flow_exact,
    inc_approx,
    max_xy_core,
    peel_approx,
    register_method,
    top_k_densest,
    verify_result,
    xy_core,
    xy_core_skyline,
)
from repro.graph import DiGraph, read_edge_list, write_edge_list
from repro.incremental import DeltaCertificate, EdgeDelta, UpdateReport
from repro.session import DDSSession

__version__ = "2.0.0"

__all__ = [
    "__version__",
    "DiGraph",
    "read_edge_list",
    "write_edge_list",
    "DDSResult",
    "DDSSession",
    "ExactConfig",
    "ApproxConfig",
    "FlowConfig",
    "MethodSpec",
    "register_method",
    "densest_subgraph",
    "directed_density",
    "brute_force_dds",
    "flow_exact",
    "dc_exact",
    "core_exact",
    "core_approx",
    "inc_approx",
    "peel_approx",
    "xy_core",
    "max_xy_core",
    "xy_core_skyline",
    "core_based_bounds",
    "top_k_densest",
    "verify_result",
    "EdgeDelta",
    "UpdateReport",
    "DeltaCertificate",
]
