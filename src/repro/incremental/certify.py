"""Delta certification: decide staleness by proof instead of by token.

A cached :class:`~repro.core.results.DDSResult` does not become worthless
just because the graph changed — it becomes *unproven*.  This module
re-proves (or refutes) cached answers from the delta, cheapest argument
first:

**Bounds tier** (O(|pair|), no flow).  The old pair's density on the new
graph, ``rho_cand``, is a valid lower bound on the new optimum.  For the
upper bound: a removal-only delta can only lower every pair's density, so
``rho_opt_new <= rho_opt_old``; a delta with ``k`` insertions raises any
pair's edge count by at most ``k`` while ``sqrt(|S||T|) >= 1``, so
``rho_opt_new <= rho_opt_old + k`` (clipped against the new graph's global
degree bound).  When the bracket closes —
``upper - rho_cand <= tolerance`` — the old pair is still optimal and the
entry is **certified** without touching a network.

**Cut tier** (one min-cut per probed ratio, warm-started on the patched
networks, batched block-diagonally when the engine's aggregate gate
allows).  Removal-only, exact entries whose pair lost edges get one more
chance: probe the patched network at guess ``g = rho_opt_old - tolerance``.
An *improving* cut exhibits a pair with true density ``> g`` (the AM–GM
side of the reduction guarantees true density, not just surrogate), and
``rho_opt_new <= rho_opt_old`` caps it from above — so the new optimum lies
in the half-open window ``(rho_opt_old - tolerance, rho_opt_old]``.  With
``tolerance`` at the session's exactness gap, two distinct achievable
densities cannot both lie in a window that narrow, so the exhibited pair's
density *is* the exact new optimum and the entry is certified with the
exhibited pair as a replacement.  A non-improving cut only proves the bound
at its own ratio, never globally — so "no improving cut anywhere cached"
stays **inconclusive** and the entry is invalidated honestly.

**What certification promises.**  A certified entry is a *correct* answer
(optimal for exact methods, guarantee-preserving for approximations) — but
when the optimum is non-unique it may name a different optimal pair than a
cold rebuild would (cut-tier replacements, approximations whose core
shifted).  Callers that need byte-identical agreement with a cold session
disable certification (``apply_updates(..., certify=False)``), which routes
every cached entry through the re-search path — bit-identical by the
canonical-cut invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

from repro.core.density import directed_density, global_density_upper_bound
from repro.core.flow_network import DecisionNetwork, decision_cut_is_improving
from repro.core.results import DDSResult

try:  # the batched verify tier needs numpy's block-diagonal stacking
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI lane
    _np = None


@dataclass(frozen=True)
class DeltaCertificate:
    """Outcome of certifying one cached result against an applied delta.

    ``reason`` is one of ``"bounds"`` (bracket closed), ``"cut_reverify"``
    (cut tier pinned the optimum; ``replacement`` holds the new entry),
    ``"approx_monotone"`` (approximation guarantee preserved under a
    removal-only delta), or ``"inconclusive"`` (no cheap proof — the entry
    must be re-searched).
    """

    candidate_density: float
    upper_bound: float
    lower_bound: float
    certified: bool
    reason: str
    verify_cuts: int = 0
    replacement: DDSResult | None = None


def certify_result(
    graph: Any,
    result: DDSResult,
    *,
    removal_only: bool,
    insertions: int,
    tolerance: float,
    networks: list[tuple[float, DecisionNetwork]] | None = None,
    engine: Any | None = None,
    max_verify_cuts: int = 4,
) -> DeltaCertificate:
    """Certify one cached result against an (already applied) delta.

    ``networks`` are the surviving patched ``(ratio, network)`` entries of
    the session cache — the cut tier's probes; ``engine`` the session's
    shared :class:`~repro.flow.engine.FlowEngine`.  Both optional: without
    them only the bounds tier runs.
    """
    rho_cand = directed_density(graph, result.s_nodes, result.t_nodes)

    if not result.is_exact:
        # The 2-approximation guarantee is ``density >= rho_opt / ratio``.
        # Removal-only deltas only lower ``rho_opt``; if the pair's own
        # density is intact the inequality still holds.  (No statement is
        # possible once the pair lost edges or edges were inserted.)
        if removal_only and rho_cand >= result.density - 1e-12:
            return DeltaCertificate(
                candidate_density=rho_cand,
                upper_bound=math.inf,
                lower_bound=rho_cand,
                certified=True,
                reason="approx_monotone",
            )
        return DeltaCertificate(
            candidate_density=rho_cand,
            upper_bound=math.inf,
            lower_bound=rho_cand,
            certified=False,
            reason="inconclusive",
        )

    if removal_only:
        upper = result.density
    else:
        upper = min(
            result.density + insertions, global_density_upper_bound(graph)
        )

    if upper <= rho_cand + tolerance:
        return DeltaCertificate(
            candidate_density=rho_cand,
            upper_bound=upper,
            lower_bound=rho_cand,
            certified=True,
            reason="bounds",
        )

    if removal_only and networks and engine is not None:
        return _cut_reverify(
            graph, result, rho_cand, tolerance, networks, engine, max_verify_cuts
        )

    return DeltaCertificate(
        candidate_density=rho_cand,
        upper_bound=upper,
        lower_bound=rho_cand,
        certified=False,
        reason="inconclusive",
    )


def _cut_reverify(
    graph: Any,
    result: DDSResult,
    rho_cand: float,
    tolerance: float,
    networks: list[tuple[float, DecisionNetwork]],
    engine: Any,
    max_verify_cuts: int,
) -> DeltaCertificate:
    """The cut tier: probe patched networks at the old optimum minus the gap.

    Returns a certified certificate when some probe's cut is improving (see
    the module docstring for why that pins the new optimum); when every
    probe is non-improving — which proves nothing globally — an
    inconclusive one carrying the cut count.
    """
    guess = max(result.density - tolerance, 0.0)
    # Probe the cached ratios closest (log-scale) to the old pair's own
    # ratio first — the tight ratio is where the old optimum re-certifies.
    own_ratio = result.ratio if result.ratio > 0 else 1.0
    probes = sorted(networks, key=lambda entry: abs(math.log(entry[0] / own_ratio)))
    probes = probes[:max_verify_cuts]
    for ratio, decision in probes:
        decision.retune(ratio, guess, warm_start=True)

    cuts: list[tuple[DecisionNetwork, float, list[int]]] = []
    arc_counts = [decision.network.num_arcs for _, decision in probes]
    if len(probes) >= 2 and _np is not None and engine.supports_batching(arc_counts):
        from repro.flow.batch import BatchedFlowNetwork

        batch = BatchedFlowNetwork(
            [
                (decision.network, decision.source, decision.sink)
                for _, decision in probes
            ]
        )
        outcomes = engine.min_cut_batch(
            batch,
            list(range(len(probes))),
            [True] * len(probes),
        )
        for (_, decision), (value, source_side, _) in zip(probes, outcomes):
            cuts.append((decision, value, source_side))
    else:
        for _, decision in probes:
            value, solver = engine.min_cut(
                decision.network, decision.source, decision.sink, warm_start=True
            )
            cuts.append((decision, value, solver.min_cut_source_side()))

    for decision, value, source_side in cuts:
        if not decision_cut_is_improving(value, decision.total_capacity):
            continue
        s_side, t_side = decision.extract_pair(source_side)
        if not s_side or not t_side:
            continue
        s_labels = graph.labels_of(s_side)
        t_labels = graph.labels_of(t_side)
        density = directed_density(graph, s_labels, t_labels)
        if density <= guess:  # pragma: no cover - float-noise guard
            continue
        edge_count = graph.count_edges_between(s_side, t_side)
        stats = dict(result.stats)
        stats["incremental_certified"] = "cut_reverify"
        replacement = replace(
            result,
            s_nodes=s_labels,
            t_nodes=t_labels,
            density=density,
            edge_count=edge_count,
            stats=stats,
        )
        return DeltaCertificate(
            candidate_density=rho_cand,
            upper_bound=result.density,
            lower_bound=density,
            certified=True,
            reason="cut_reverify",
            verify_cuts=len(cuts),
            replacement=replacement,
        )
    return DeltaCertificate(
        candidate_density=rho_cand,
        upper_bound=result.density,
        lower_bound=rho_cand,
        certified=False,
        reason="inconclusive",
        verify_cuts=len(cuts),
    )
