"""Incremental DDS under graph updates: patch caches, certify stale answers.

The subsystem behind
:meth:`DDSSession.apply_updates <repro.session.DDSSession.apply_updates>`:

* :mod:`repro.incremental.delta` — normalized :class:`EdgeDelta` batches
  and the per-update :class:`UpdateReport`;
* :mod:`repro.incremental.maintain` — in-place patching of degree arrays,
  [x, y]-core decompositions (bounded local re-peel) and cached decision
  networks (arc-level surgery that keeps warm residual flows alive);
* :mod:`repro.incremental.certify` — density-bound and min-cut-re-verify
  certificates deciding which cached results are provably still optimal.

``top_k`` rounds ≥ 2 route through the same machinery: a peel round *is*
an edge-removal delta, so each round's working cache is seeded by
clone-and-patch from the previous round's networks instead of rebuilding.
"""

from repro.incremental.certify import DeltaCertificate, certify_result
from repro.incremental.delta import EdgeDelta, UpdateReport
from repro.incremental.maintain import (
    full_subproblem_token,
    migrate_network_cache,
    patch_decision_network,
    patch_degree_arrays,
    refresh_cores,
    seed_cache_from,
)

__all__ = [
    "DeltaCertificate",
    "EdgeDelta",
    "UpdateReport",
    "certify_result",
    "full_subproblem_token",
    "migrate_network_cache",
    "patch_decision_network",
    "patch_degree_arrays",
    "refresh_cores",
    "seed_cache_from",
]
