"""In-place maintenance of derived DDS state under an edge delta.

Three layers of cached state survive a graph update instead of being
rebuilt:

**Degree arrays** are patched by ±1 per touched endpoint (O(|delta|)).

**[x, y]-cores** exploit monotonicity.  Under a removal-only delta degrees
only drop, so the new maximal [x, y]-core is *contained* in the old one
(valid pairs of the new graph are valid in the old graph, and the maximal
core contains every valid pair) — re-peeling restricted to the old core's
members therefore yields exactly the new global core at O(|core|) cost.
Deltas with insertions can grow a core beyond the old members, so those
recompute from the whole graph (still O(n + m), counted separately).  The
cached *maximum-product* core gets a sharper argument: if its own local
re-peel leaves it unchanged, every other core only shrank, so no product
grew, the old maximum is still attained, and — because
:func:`~repro.core.xycore.max_xy_core`'s sweep keeps the smallest ``x``
achieving the maximal product under a strict-improvement rule — a cold
sweep of the new graph returns the *same* core.  The keep is bit-identical,
not merely valid.

**Decision networks** are patched by arc-level surgery
(:func:`patch_decision_network`) so their warm residual flows survive.
The construction of :func:`~repro.core.flow_network.build_decision_network`
makes every repair local:

* an ``i_v`` node's only outgoing arc is its penalty arc, so its flow
  carries the node's entire inflow — a deficit created at ``i_v`` by
  cancelling a deleted edge's flow is always repairable by withdrawing the
  same amount from that one arc;
* an ``o_u`` node's only incoming arc is its source arc, so surpluses
  accumulated at ``o_u`` walk back to the source along a single known path
  (:meth:`~repro.flow.network.FlowNetwork.return_excess`).

After surgery the residual state is again a valid feasible flow, so the
next warm-start retune/solve continues from it; by the canonical-cut
invariant (the source-reachable set of *any* max flow's residual graph is
the unique minimal min cut) a patched network yields bit-identical answers
to a freshly built one — stale zero-capacity arcs and arc order differences
cannot change the extracted pair.
"""

from __future__ import annotations

from typing import Any

from repro.core.flow_network import DecisionNetwork
from repro.core.network_cache import NetworkCache
from repro.core.xycore import XYCore, xy_core
from repro.graph.digraph import DiGraph

IndexPair = tuple[int, int]


# ----------------------------------------------------------------------
# degree arrays
# ----------------------------------------------------------------------
def patch_degree_arrays(
    out_degrees: list[int] | None,
    in_degrees: list[int] | None,
    num_nodes: int,
    added_pairs: list[IndexPair],
    removed_pairs: list[IndexPair],
) -> None:
    """Patch cached degree arrays in place for one applied delta.

    Each array is first extended with zeros to ``num_nodes`` (new nodes are
    only ever appended), then each effective edge adjusts its endpoints.
    A ``None`` array (not cached yet) is skipped — it will be computed
    lazily from the post-delta graph on first demand.
    """
    for degrees in (out_degrees, in_degrees):
        if degrees is not None and len(degrees) < num_nodes:
            degrees.extend([0] * (num_nodes - len(degrees)))
    for u, v in added_pairs:
        if out_degrees is not None:
            out_degrees[u] += 1
        if in_degrees is not None:
            in_degrees[v] += 1
    for u, v in removed_pairs:
        if out_degrees is not None:
            out_degrees[u] -= 1
        if in_degrees is not None:
            in_degrees[v] -= 1


# ----------------------------------------------------------------------
# [x, y]-cores
# ----------------------------------------------------------------------
def refresh_cores(
    graph: DiGraph,
    cores: dict[tuple[int, int], XYCore],
    max_core: XYCore | None,
    removal_only: bool,
) -> tuple[dict[tuple[int, int], XYCore], XYCore | None, int, int, bool]:
    """Refresh every cached core for the (already applied) delta.

    Returns ``(new_cores, new_max_core, repeeled, rebuilt, max_kept)``.
    ``new_max_core`` is ``None`` whenever the keep argument in the module
    docstring does not apply — the caller recomputes lazily on next demand.
    """
    repeeled = 0
    rebuilt = 0
    new_cores: dict[tuple[int, int], XYCore] = {}
    for (x, y), core in cores.items():
        if removal_only:
            if core.is_empty:
                # Cores only shrink under removals: empty stays empty.
                new_cores[(x, y)] = core
            else:
                new_cores[(x, y)] = xy_core(
                    graph, x, y, s_candidates=core.s_nodes, t_candidates=core.t_nodes
                )
                repeeled += 1
        else:
            new_cores[(x, y)] = xy_core(graph, x, y)
            rebuilt += 1

    new_max: XYCore | None = None
    max_kept = False
    if max_core is not None and removal_only and not max_core.is_empty:
        survivor = xy_core(
            graph,
            max_core.x,
            max_core.y,
            s_candidates=max_core.s_nodes,
            t_candidates=max_core.t_nodes,
        )
        if (
            survivor.s_nodes == max_core.s_nodes
            and survivor.t_nodes == max_core.t_nodes
        ):
            new_max = max_core
            max_kept = True
    return new_cores, new_max, repeeled, rebuilt, max_kept


# ----------------------------------------------------------------------
# decision networks
# ----------------------------------------------------------------------
def full_subproblem_token(graph: DiGraph, state_token: int | None = None) -> tuple:
    """The cache token :meth:`STSubproblem.from_graph(graph) <repro.core.subproblem.STSubproblem.from_graph>` would produce.

    Computed from the degree sequences alone — ``from_graph`` with default
    candidates keeps exactly the nodes with an outgoing (resp. incoming)
    edge, in index order, and every edge.  This lets the migration identify
    (and re-key) full-graph network-cache entries without materialising a
    sub-problem on either side of the delta.
    """
    s_kept = tuple(u for u, d in enumerate(graph.out_degrees()) if d > 0)
    t_kept = tuple(v for v, d in enumerate(graph.in_degrees()) if d > 0)
    token = graph.state_token if state_token is None else state_token
    return (token, s_kept, t_kept, graph.num_edges)


def patch_decision_network(
    decision: DecisionNetwork,
    graph: DiGraph,
    added_pairs: list[IndexPair],
    removed_pairs: list[IndexPair],
) -> bool:
    """Patch a full-graph decision network in place for an applied delta.

    Returns ``False`` — leaving the network untouched — when the delta
    cannot be represented in the network's fixed node layout: an inserted
    edge whose tail (head) was not an S (T) candidate when the network was
    built, including brand-new nodes.  Such networks must be dropped and
    rebuilt on demand.

    On success the network's edge arcs, source-arc capacities and
    ``total_capacity`` match a fresh build from the post-delta graph, and
    the residual state is a valid feasible flow (the previous solve's flow,
    minus exactly what the deleted capacity can no longer carry).  Deleted
    edges keep a zero-capacity stale arc — harmless for solves and cut
    extraction, and reusable if the edge is later re-inserted.
    """
    s_pos = {u: index for index, u in enumerate(decision.s_nodes)}
    t_pos = {v: index for index, v in enumerate(decision.t_nodes)}
    for u, v in added_pairs:
        if u not in s_pos or v not in t_pos:
            return False
    arcs = decision.edge_arc_map()
    for pair in removed_pairs:
        if pair not in arcs:
            return False

    network = decision.network
    t_offset = 2 + len(decision.s_nodes)
    # Inflow surplus accumulated at each o_u (keyed by S position) as edge
    # flow is cancelled; settled against the source-arc clamp below.
    excess: dict[int, float] = {}
    touched: set[int] = set()

    for u, v in removed_pairs:
        arc = arcs[(u, v)]
        flow = network.arc_flow(arc)
        network.set_capacity_preserving_flow(arc, 0.0)
        if flow > 0.0:
            # i_v's entire inflow leaves on its penalty arc, so the arc
            # carries at least ``flow`` — the deficit repair is local.
            network.withdraw_flow(decision.t_penalty_arcs[t_pos[v]], flow)
            position = s_pos[u]
            excess[position] = excess.get(position, 0.0) + flow
        touched.add(u)

    for u, v in added_pairs:
        arc = arcs.get((u, v))
        if arc is not None:
            # A stale arc from an earlier removal: revive it (it carries no
            # flow, so no repair is needed).
            network.set_capacity_preserving_flow(arc, 2.0)
        else:
            arcs[(u, v)] = network.add_edge(
                2 + s_pos[u], t_offset + t_pos[v], 2.0
            )
        touched.add(u)

    returns: list[tuple[int, float]] = []
    for u in sorted(touched, key=s_pos.__getitem__):
        position = s_pos[u]
        source_arc = decision.source_arc(position)
        new_cap = 2.0 * len(graph.out_adj[u])
        old_cap = network.arc_base_capacity(source_arc)
        have = excess.get(position, 0.0)
        source_flow = network.arc_flow(source_arc)
        # o_u's current outflow is its inflow minus the surplus parked on it;
        # anything beyond the new source capacity must be drained first so
        # the clamp below leaves no deficit.
        drain = (source_flow - have) - new_cap
        if drain > 0.0:
            have += _drain_outflow(decision, graph, u, position, drain, arcs, t_pos)
        overflow = network.set_capacity_preserving_flow(source_arc, new_cap)
        # The clamp removed ``overflow`` of o_u's inflow, consuming that much
        # of the parked surplus at the source itself; the rest walks back.
        leftover = have - overflow
        if leftover > 0.0:
            returns.append((2 + position, leftover))
        decision.total_capacity += new_cap - old_cap
    if returns:
        network.return_excess(returns, decision.source)
    return True


def _drain_outflow(
    decision: DecisionNetwork,
    graph: DiGraph,
    u: int,
    position: int,
    amount: float,
    arcs: dict[IndexPair, int],
    t_pos: dict[int, int],
) -> float:
    """Withdraw ``amount`` of flow from ``o_u``'s outgoing arcs; return the total.

    Penalty arc first (its withdrawal needs no further repair), then live
    edge arcs — each of those creates a deficit at the edge's ``i_v``,
    immediately repaired from that node's penalty arc.  The requested amount
    never exceeds ``o_u``'s outflow (the caller computes it as the outflow
    beyond the shrunken source capacity), so the walk always completes.
    """
    network = decision.network
    drained = 0.0
    penalty_arc = decision.s_penalty_arcs[position]
    take = min(amount, network.arc_flow(penalty_arc))
    if take > 0.0:
        network.withdraw_flow(penalty_arc, take)
        drained += take
        amount -= take
    if amount > 0.0:
        for v in graph.out_adj[u]:
            if amount <= 0.0:
                break
            arc = arcs.get((u, v))
            if arc is None:
                continue
            take = min(amount, network.arc_flow(arc))
            if take > 0.0:
                network.withdraw_flow(arc, take)
                network.withdraw_flow(decision.t_penalty_arcs[t_pos[v]], take)
                drained += take
                amount -= take
    return drained


def migrate_network_cache(
    cache: NetworkCache,
    old_token: tuple,
    new_token: tuple,
    graph: DiGraph,
    added_pairs: list[IndexPair],
    removed_pairs: list[IndexPair],
) -> tuple[list[tuple[float, DecisionNetwork]], int, int]:
    """Re-key a network cache across a graph delta, patching what it can.

    Entries keyed by the pre-delta full-graph token are patched in place and
    re-filed under the post-delta token; every other entry — networks carved
    from core-restricted sub-problems, whose candidate sets have no cheap
    post-delta counterpart — is dropped.  Returns the surviving
    ``(ratio, network)`` pairs (the certification tier re-verifies against
    them) plus the patched/dropped counts.
    """
    patched: list[tuple[float, DecisionNetwork]] = []
    dropped = 0
    for token, ratio, network in cache.take_all():
        if token == old_token and patch_decision_network(
            network, graph, added_pairs, removed_pairs
        ):
            cache.put_token(new_token, ratio, network)
            patched.append((ratio, network))
        else:
            dropped += 1
    return patched, len(patched), dropped


def seed_cache_from(
    source_entries: list[tuple[Any, float, DecisionNetwork]],
    source_token: tuple,
    target: NetworkCache,
    target_token: tuple,
    graph: DiGraph,
    added_pairs: list[IndexPair],
    removed_pairs: list[IndexPair],
) -> int:
    """Clone-and-patch matching entries of one cache into another.

    The non-destructive sibling of :func:`migrate_network_cache`: each entry
    keyed by ``source_token`` is *cloned*, the clone patched for the delta
    and deposited into ``target`` under ``target_token`` — the originals
    stay untouched.  This is how a ``top_k`` round seeds its working cache
    from the session's warm networks.  Returns the number seeded.
    """
    seeded = 0
    for token, ratio, network in source_entries:
        if token != source_token:
            continue
        clone = network.clone()
        if patch_decision_network(clone, graph, added_pairs, removed_pairs):
            target.put_token(target_token, ratio, clone)
            seeded += 1
    return seeded
