"""Normalized edge deltas and the per-update maintenance report.

The incremental subsystem treats a graph update as one **normalized batch**
of edge removals and insertions — :class:`EdgeDelta` — applied through
:meth:`DiGraph.apply_delta <repro.graph.digraph.DiGraph.apply_delta>` so the
graph's state token moves exactly once per batch.  Normalization happens
*before* anything is mutated, against the pre-update graph:

* both lists are de-duplicated (first occurrence wins);
* an edge listed as both added and removed is rejected outright — the batch
  is unordered, so the request is ambiguous;
* removed edges must exist (matching :meth:`DiGraph.remove_edge`);
* added edges that already exist, and self-loops on a loop-rejecting graph,
  are dropped silently (matching :meth:`DiGraph.add_edge` returning
  ``False``) — with the one divergence that a *rejected* edge never creates
  its endpoint nodes either;
* endpoint labels unknown to the graph are recorded in :attr:`new_nodes`
  (they will be appended, in order of first appearance, when the delta is
  applied).

Every count the maintenance machinery produces while absorbing the delta is
gathered into an :class:`UpdateReport` — the return value of
:meth:`DDSSession.apply_updates <repro.session.DDSSession.apply_updates>`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph, NodeLabel

Edge = tuple[NodeLabel, NodeLabel]


@dataclass(frozen=True)
class EdgeDelta:
    """A normalized batch of edge updates against one specific graph state.

    ``added`` / ``removed`` hold only the *effective* edges (duplicates and
    rejected insertions already filtered); ``token`` records the graph state
    the delta was normalized against, so applying it to any other state is
    detectable.
    """

    added: tuple[Edge, ...]
    removed: tuple[Edge, ...]
    new_nodes: tuple[NodeLabel, ...]
    token: int

    @property
    def is_empty(self) -> bool:
        """True when the delta changes nothing (apply is then a no-op)."""
        return not self.added and not self.removed and not self.new_nodes

    @property
    def removal_only(self) -> bool:
        """True when the delta only removes edges.

        Removal-only deltas are the monotone case the maintenance layer
        exploits: degrees only drop, [x, y]-cores only shrink, and the
        optimal density can only decrease — each of which licenses a cheaper
        patch than the general case.
        """
        return not self.added and not self.new_nodes

    @classmethod
    def normalize(
        cls,
        graph: DiGraph,
        added_edges: Iterable[Edge] = (),
        removed_edges: Iterable[Edge] = (),
    ) -> "EdgeDelta":
        """Validate and canonicalise a raw update request against ``graph``."""
        removed: list[Edge] = []
        removed_seen: set[Edge] = set()
        for u, v in removed_edges:
            if (u, v) in removed_seen:
                continue
            if not graph.has_edge(u, v):
                raise GraphError(f"edge {u!r} -> {v!r} does not exist")
            removed_seen.add((u, v))
            removed.append((u, v))

        added: list[Edge] = []
        added_seen: set[Edge] = set()
        new_nodes: list[NodeLabel] = []
        new_seen: set[NodeLabel] = set()
        for u, v in added_edges:
            if (u, v) in removed_seen:
                raise GraphError(
                    f"edge {u!r} -> {v!r} is listed as both added and removed; "
                    "a delta batch is unordered, so the request is ambiguous"
                )
            if (u, v) in added_seen:
                continue
            if u == v and not graph.allow_self_loops:
                continue
            if graph.has_edge(u, v):
                continue
            added_seen.add((u, v))
            added.append((u, v))
            for label in (u, v):
                if not graph.has_node(label) and label not in new_seen:
                    new_seen.add(label)
                    new_nodes.append(label)

        return cls(
            added=tuple(added),
            removed=tuple(removed),
            new_nodes=tuple(new_nodes),
            token=graph.state_token,
        )


@dataclass
class UpdateReport:
    """What one :meth:`DDSSession.apply_updates` call did to the caches.

    Field glossary (each is also surfaced in the docs' counter glossary):

    ``edges_added`` / ``edges_removed`` / ``nodes_added``
        Effective structural changes the delta applied.
    ``removal_only``
        Whether the monotone fast paths were available (see
        :attr:`EdgeDelta.removal_only`).
    ``cores_repeeled``
        Cached [x, y]-cores refreshed by a *local* re-peel restricted to the
        old core's members (removal-only deltas).
    ``cores_rebuilt``
        Cached cores recomputed from the whole graph (deltas with
        insertions, where a local re-peel is unsound because cores can grow).
    ``max_core_kept``
        Whether the cached maximum-product core survived the delta unchanged
        (provably still maximal — see ``maintain.refresh_cores``).
    ``networks_patched`` / ``networks_dropped``
        Cached decision networks migrated to the post-delta cache key by
        arc-level surgery vs. discarded (non-full-graph sub-problems, or
        deltas their node layout cannot represent).
    ``results_certified`` / ``results_invalidated``
        Result-cache entries kept because the delta certificate proved them
        still valid vs. evicted (their keys are remembered so the next miss
        counts as a ``local_research_run``).
    ``verify_cuts``
        Min-cut re-verifications run by the certification tier.
    ``certificates``
        One :class:`~repro.incremental.certify.DeltaCertificate` per
        result-cache entry examined, in eviction-order.
    """

    delta: EdgeDelta
    edges_added: int = 0
    edges_removed: int = 0
    nodes_added: int = 0
    removal_only: bool = False
    cores_repeeled: int = 0
    cores_rebuilt: int = 0
    max_core_kept: bool = False
    networks_patched: int = 0
    networks_dropped: int = 0
    results_certified: int = 0
    results_invalidated: int = 0
    verify_cuts: int = 0
    certificates: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """Counter view (used by the bench harness and the E6 smoke gate)."""
        return {
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "nodes_added": self.nodes_added,
            "removal_only": self.removal_only,
            "cores_repeeled": self.cores_repeeled,
            "cores_rebuilt": self.cores_rebuilt,
            "max_core_kept": self.max_core_kept,
            "networks_patched": self.networks_patched,
            "networks_dropped": self.networks_dropped,
            "results_certified": self.results_certified,
            "results_invalidated": self.results_invalidated,
            "verify_cuts": self.verify_cuts,
        }
