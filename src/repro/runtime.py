"""Deadlines, budgets, and anytime partial results.

This module is the timekeeping layer of the serving stack.  A
:class:`Deadline` is a point on the **monotonic** clock: wall-clock jumps
(NTP steps, suspend/resume, leap smearing) can neither extend nor skip a
budget, which is the property the distributed tier's remaining-budget
enforcement and the client's circuit-breaker cooldown both rely on.  The
clock is injectable, so tests drive expiry deterministically instead of
sleeping.

Budget propagation
------------------
``FlowConfig.deadline_ms`` arms a :class:`Deadline` at query entry
(:class:`repro.session.DDSSession`), which travels down the whole solve
stack on the query's :class:`~repro.flow.engine.FlowEngine`:

* the Dinkelbach/DC drivers check it between binary-search guesses, ratio
  chunks, and D&C intervals;
* :meth:`FlowEngine.min_cut <repro.flow.engine.FlowEngine.min_cut>` checks
  it before each solve and hands it to the solver;
* the solvers check it at their phase boundaries — dinic between BFS
  rounds, push–relabel between discharge sweeps, the numpy backend between
  supersteps — and abort *without* committing their in-progress snapshot,
  so the network keeps the valid residual flow it had at solve entry.

Expiry raises :class:`~repro.exceptions.DeadlineExceeded`; the search
drivers catch it on the way up and attach an :class:`AnytimeResult` — the
ROADMAP's "anytime DDS" observation made concrete: every binary-search
step already yields a feasible subgraph and a certified bound, so a
deadline-expired query returns *that* instead of nothing.

``Budget`` is an alias of :class:`Deadline`: the same object read as
"remaining work allowance" (daemon-side admission control) rather than
"instant in time" (solver-side cancellation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ConfigError, DeadlineExceeded

__all__ = ["AnytimeResult", "Budget", "Deadline", "DeadlineExceeded"]


class Deadline:
    """A time budget pinned to the monotonic clock.

    Parameters
    ----------
    budget_ms:
        The allowance in milliseconds, measured from construction.  Must be
        a positive finite number.
    clock:
        Second-resolution monotonic clock (defaults to ``time.monotonic``).
        Injectable so tests advance time deterministically; every reading
        this object ever takes goes through it — ``time.time()`` is never
        consulted, by design.
    """

    __slots__ = ("budget_ms", "_clock", "_started_at", "_expires_at")

    def __init__(
        self, budget_ms: float, *, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if isinstance(budget_ms, bool):
            raise ConfigError(f"deadline budget must be a number, got {budget_ms!r}")
        try:
            budget = float(budget_ms)
        except (TypeError, ValueError):
            raise ConfigError(f"deadline budget must be a number, got {budget_ms!r}") from None
        if not budget > 0 or budget != budget or budget == float("inf"):
            raise ConfigError(f"deadline budget must be a positive finite number of ms, got {budget_ms!r}")
        self.budget_ms = budget
        self._clock = clock
        self._started_at = clock()
        self._expires_at = self._started_at + budget / 1000.0

    @classmethod
    def after_ms(
        cls, budget_ms: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now (alias constructor)."""
        return cls(budget_ms, clock=clock)

    def elapsed_ms(self) -> float:
        """Milliseconds consumed since the budget was armed."""
        return (self._clock() - self._started_at) * 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds left before expiry, clamped at 0."""
        return max((self._expires_at - self._clock()) * 1000.0, 0.0)

    @property
    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self._clock() >= self._expires_at

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out.

        The cooperative cancellation checkpoint: callers place this at
        phase boundaries where their state is consistent.  ``context``
        names the checkpoint for the exception message.
        """
        if self.expired:
            where = f" at {context}" if context else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_ms:g} ms exceeded{where} "
                f"({self.elapsed_ms():.1f} ms elapsed)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget_ms={self.budget_ms:g}, remaining_ms={self.remaining_ms():.1f})"


#: The daemon-facing name of the same object: a remaining-work allowance.
Budget = Deadline


@dataclass
class AnytimeResult:
    """The certified partial answer a deadline-expired search carries.

    ``s_nodes`` / ``t_nodes`` are the best feasible pair found before the
    budget ran out (node *labels*, like a :class:`~repro.core.results.
    DDSResult`; empty when no pair was extracted yet).  ``density`` is that
    pair's true density — a certified **lower** bound on the optimum — and
    ``upper_bound`` a certified **upper** bound assembled from the bracket
    state at cancellation (pending interval bounds, the global degree
    bound, completed searches' tolerances).  The invariant every chaos test
    pins: ``density <= rho_opt <= upper_bound``.
    """

    s_nodes: list[Any] = field(default_factory=list)
    t_nodes: list[Any] = field(default_factory=list)
    density: float = 0.0
    upper_bound: float = float("inf")
    #: Which driver assembled this partial (``"dc-exact"``, ``"flow-exact"``, ...).
    method: str = ""
    #: Milliseconds the search ran before expiry (informational).
    elapsed_ms: float = 0.0

    @property
    def gap(self) -> float:
        """Certified optimality gap ``upper_bound - density`` (may be ``inf``)."""
        return self.upper_bound - self.density

    @property
    def found_pair(self) -> bool:
        """Whether any feasible pair was extracted before expiry."""
        return bool(self.s_nodes) and bool(self.t_nodes)

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready form used by the service tier's deadline payloads."""
        upper = self.upper_bound
        return {
            "deadline_exceeded": True,
            "method": self.method,
            "density": self.density,
            "upper_bound": upper if upper != float("inf") else None,
            "gap": self.gap if upper != float("inf") else None,
            "s_size": len(self.s_nodes),
            "t_size": len(self.t_nodes),
            "is_exact": False,
        }
