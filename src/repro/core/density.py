"""The Kannan–Vinay directed density and helpers to evaluate it.

Given a directed graph ``G = (V, E)`` and two non-empty vertex sets
``S, T ⊆ V`` (which may overlap), let ``E(S, T)`` be the set of edges whose
tail lies in ``S`` and whose head lies in ``T``.  The directed density is

    rho(S, T) = |E(S, T)| / sqrt(|S| * |T|)

When ``S = T = V`` and the graph is symmetric this reduces (up to the factor
accounting for edge direction) to the classic undirected edge density, which
is why the DDS problem strictly generalises the undirected densest-subgraph
problem.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.exceptions import AlgorithmError
from repro.graph.digraph import DiGraph, NodeLabel


def edge_count_between(graph: DiGraph, s_nodes: Sequence[NodeLabel], t_nodes: Sequence[NodeLabel]) -> int:
    """``|E(S, T)|`` for label sets ``S`` and ``T``."""
    s_idx = graph.indices_of(s_nodes)
    t_idx = graph.indices_of(t_nodes)
    return graph.count_edges_between(s_idx, t_idx)


def directed_density(
    graph: DiGraph,
    s_nodes: Sequence[NodeLabel],
    t_nodes: Sequence[NodeLabel],
) -> float:
    """``rho(S, T)`` for label sets; 0.0 when either side is empty."""
    if not s_nodes or not t_nodes:
        return 0.0
    edges = edge_count_between(graph, s_nodes, t_nodes)
    return edges / math.sqrt(len(s_nodes) * len(t_nodes))


def directed_density_from_indices(
    graph: DiGraph,
    s_indices: Sequence[int],
    t_indices: Sequence[int],
) -> float:
    """``rho(S, T)`` for internal index sets; 0.0 when either side is empty."""
    if not s_indices or not t_indices:
        return 0.0
    edges = graph.count_edges_between(s_indices, t_indices)
    return edges / math.sqrt(len(s_indices) * len(t_indices))


def surrogate_denominator(s_size: int, t_size: int, ratio: float) -> float:
    """The ratio-``a`` surrogate denominator ``(|S|/sqrt(a) + sqrt(a)|T|) / 2``.

    By the AM–GM inequality this is always at least ``sqrt(|S| * |T|)``, with
    equality exactly when ``|S| / |T| == ratio`` — the fact underpinning both
    the per-ratio binary search and the divide-and-conquer interval bound.
    """
    if ratio <= 0:
        raise AlgorithmError(f"ratio must be > 0, got {ratio}")
    root = math.sqrt(ratio)
    return (s_size / root + root * t_size) / 2.0


def surrogate_density(edges: int, s_size: int, t_size: int, ratio: float) -> float:
    """``|E(S,T)|`` divided by the ratio-``a`` surrogate denominator."""
    if s_size == 0 or t_size == 0:
        return 0.0
    return edges / surrogate_denominator(s_size, t_size, ratio)


def interval_relaxation_factor(low: float, high: float) -> float:
    """``f(a, b) = ((b/a)^(1/4) + (a/b)^(1/4)) / 2`` for ``0 < a <= b``.

    For any pair ``(S, T)`` whose ratio ``|S|/|T|`` lies in ``[a, b]`` and for
    the probe ratio ``x = sqrt(a*b)``, the surrogate denominator at ``x``
    over-estimates ``sqrt(|S||T|)`` by at most this factor, hence

        max over ratio-in-[a,b] pairs of rho(S, T)  <=  f(a, b) * val(x).

    The factor tends to 1 as the interval shrinks, which is what makes the
    divide-and-conquer pruning effective.
    """
    if low <= 0 or high <= 0:
        raise AlgorithmError("interval endpoints must be positive")
    if low > high:
        raise AlgorithmError(f"invalid interval [{low}, {high}]")
    quarter = (high / low) ** 0.25
    return (quarter + 1.0 / quarter) / 2.0


def global_density_upper_bound(graph: DiGraph) -> float:
    """A cheap upper bound on ``rho_opt``: ``min(sqrt(dout_max * din_max), sqrt(m))``.

    * ``|E(S,T)| <= |S| * dout_max`` and ``|E(S,T)| <= |T| * din_max`` give
      ``rho <= sqrt(dout_max * din_max)``.
    * ``|E(S,T)| <= |S| * |T|`` gives ``rho <= sqrt(|E(S,T)|) <= sqrt(m)``.
    """
    if graph.num_edges == 0:
        return 0.0
    degree_bound = math.sqrt(graph.max_out_degree() * graph.max_in_degree())
    return min(degree_bound, math.sqrt(graph.num_edges))


def exactness_tolerance(graph: DiGraph) -> float:
    """Binary-search stopping gap that separates distinct density values.

    Achievable densities have the form ``k / sqrt(i * j)`` with
    ``k <= m`` and ``i, j <= n``; two distinct such values differ by at least
    ``1 / (2 * m * n^3)``.  A binary search narrowed below this gap therefore
    pins the optimum exactly.  The value is floored at ``1e-12`` to stay clear
    of double-precision noise; for graphs large enough to hit the floor the
    exact solvers still return a valid subgraph (densities of extracted pairs
    are always evaluated directly), only the optimality certificate becomes
    subject to that floating-point margin.
    """
    n = max(graph.num_nodes, 1)
    m = max(graph.num_edges, 1)
    return max(1.0 / (2.0 * m * n**3), 1e-12)


def validate_pair(
    graph: DiGraph,
    s_nodes: Iterable[NodeLabel],
    t_nodes: Iterable[NodeLabel],
) -> None:
    """Raise :class:`AlgorithmError` unless ``S`` and ``T`` are non-empty node subsets."""
    s_list = list(s_nodes)
    t_list = list(t_nodes)
    if not s_list or not t_list:
        raise AlgorithmError("S and T must both be non-empty")
    for label in s_list + t_list:
        if not graph.has_node(label):
            raise AlgorithmError(f"node {label!r} is not in the graph")
