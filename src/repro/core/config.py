"""Typed, validated configuration objects for the DDS algorithms.

The session-oriented public API (:class:`repro.session.DDSSession`) and the
method registry (:mod:`repro.core.method_registry`) replace the historical
``**kwargs`` funnel with three small frozen dataclasses:

* :class:`FlowConfig` — max-flow backend selection and decision-network cache
  sizing, shared by every flow-backed exact method;
* :class:`ExactConfig` — the knobs of the exact solvers (``flow-exact``,
  ``dc-exact``, ``core-exact``, ``brute-force``);
* :class:`ApproxConfig` — the knobs of the approximation family
  (``peel-approx``, ``core-approx``, ``inc-approx``).

All three validate eagerly in ``__post_init__`` and raise
:class:`~repro.exceptions.ConfigError` on bad values, so an invalid query is
rejected *before* any per-graph work starts.  They are frozen (hashable) on
purpose: a session uses ``(method, config)`` as its result-cache key.

Legacy keyword arguments (``tolerance=``, ``epsilon=``, ``flow_solver=`` ...)
are still accepted by every entry point through :meth:`MethodConfig.resolve`,
which overlays non-``None`` keyword overrides onto a base config and
re-validates the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.exceptions import ConfigError
from repro.flow.registry import DEFAULT_SOLVER, validate_solver_choice

#: Intervals containing at most this many distinct candidate ratios are
#: leaves of the divide-and-conquer recursion (canonical definition; the
#: solver modules re-export it for backwards compatibility).
LEAF_RATIO_COUNT = 2

#: Default capacity of the per-session / per-run decision-network LRU cache.
DEFAULT_NETWORK_CACHE_SIZE = 64


class MethodConfig:
    """Mixin providing override resolution shared by all config dataclasses."""

    @classmethod
    def resolve(cls, config: Any = None, **overrides: Any) -> "MethodConfig":
        """Overlay non-``None`` keyword ``overrides`` onto ``config``.

        ``config`` may be ``None`` (start from the defaults) or an instance of
        ``cls``; anything else — including a config meant for a different
        method family — raises :class:`ConfigError`.  Unknown override names
        raise :class:`ConfigError` listing the accepted fields, which is how
        typos in legacy keyword calls surface.
        """
        if config is None:
            config = cls()
        elif not isinstance(config, cls):
            raise ConfigError(
                f"expected {cls.__name__} (or None), got {type(config).__name__}: {config!r}"
            )
        clean = {name: value for name, value in overrides.items() if value is not None}
        if not clean:
            return config
        allowed = {f.name for f in fields(cls)}
        for alias in ("flow_solver", "warm_start", "deadline_ms"):
            # Per-field overrides of the nested FlowConfig: fold them into a
            # replaced ``flow`` (flow_solver= first, so warm_start= composes).
            # Skipped when the name is a direct field of this class (e.g.
            # warm_start on FlowConfig itself) — plain replace() handles it.
            if alias in allowed:
                continue
            value = clean.pop(alias, None)
            if value is None:
                continue
            if "flow" not in allowed:
                raise ConfigError(
                    f"{cls.__name__} does not accept {alias}= "
                    f"(accepted: {', '.join(sorted(allowed))})"
                )
            base_flow = clean.get("flow", getattr(config, "flow", None))
            if isinstance(base_flow, str):
                base_flow = FlowConfig(solver=base_flow)
            if alias == "flow_solver":
                clean["flow"] = replace(base_flow, solver=value)
            elif alias == "deadline_ms":
                clean["flow"] = replace(base_flow, deadline_ms=value)
            else:
                clean["flow"] = replace(base_flow, warm_start=value)
        if "max_nodes" in clean:
            # Legacy alias of the brute-force safety limit.
            if "node_limit" not in allowed:
                raise ConfigError(
                    f"{cls.__name__} does not accept max_nodes= "
                    f"(accepted: {', '.join(sorted(allowed))})"
                )
            if "node_limit" in clean:
                raise ConfigError("max_nodes is a legacy alias of node_limit; pass only one")
            clean["node_limit"] = clean.pop("max_nodes")
        unknown = sorted(set(clean) - allowed)
        if unknown:
            raise ConfigError(
                f"{cls.__name__} does not accept: {', '.join(unknown)} "
                f"(accepted: {', '.join(sorted(allowed))})"
            )
        return replace(config, **clean)


@dataclass(frozen=True)
class FlowConfig(MethodConfig):
    """Max-flow backend configuration shared by the flow-backed exact methods.

    Attributes
    ----------
    solver:
        Registry name of the max-flow solver (see :mod:`repro.flow.registry`),
        or ``"auto"`` — the engine then picks the vectorised
        ``numpy-push-relabel`` backend for decision networks at or above the
        arc threshold and ``dinic`` below it (and everywhere when numpy is
        not installed), recording each choice as ``backend_selections``.
    network_cache_size:
        Capacity of the decision-network LRU cache shared across fixed-ratio
        searches (0 disables caching entirely).
    warm_start:
        Reuse the residual flow of the previous binary-search guess (and, via
        the network cache, of earlier searches on the same ``(sub-problem,
        ratio)``) as the starting point of the next min-cut instead of
        resetting to zero flow.  Results are bit-identical either way; warm
        starts only reduce the work per solve (``arcs_pushed``).  Solvers
        that cannot warm start (``edmonds-karp``) fall back to cold solves
        and record the fallback — see the stats glossary in
        :mod:`repro.flow.engine`.
    batch_size:
        Under the ``"auto"`` policy, up to this many fixed-ratio searches
        over the same sub-problem are run in lockstep as one block-diagonal
        batched solve whenever their *aggregate* arc count clears the auto
        threshold that each network misses alone (see
        :class:`repro.flow.batch.BatchedFlowNetwork` and
        ``batched_solves`` in the stats glossary).  ``1`` disables batching;
        explicit solver names are never batched.
    deadline_ms:
        Per-query time budget in milliseconds, or ``None`` (no deadline).
        When set, a monotonic :class:`repro.runtime.Deadline` is armed at
        query entry and checked cooperatively at solver phase boundaries;
        expiry raises :class:`~repro.exceptions.DeadlineExceeded` carrying
        an anytime partial result (see :mod:`repro.runtime`).  Queries that
        finish inside the budget are bit-identical to undeadlined runs.
    """

    solver: str = DEFAULT_SOLVER
    network_cache_size: int = DEFAULT_NETWORK_CACHE_SIZE
    warm_start: bool = True
    batch_size: int = 32
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        # Resolve the name eagerly so an unknown solver fails at config time
        # ("auto" is accepted as a policy and resolved per network).
        validate_solver_choice(self.solver)
        if not isinstance(self.network_cache_size, int) or self.network_cache_size < 0:
            raise ConfigError(
                f"network_cache_size must be a non-negative int, got {self.network_cache_size!r}"
            )
        if not isinstance(self.warm_start, bool):
            raise ConfigError(f"warm_start must be a bool, got {self.warm_start!r}")
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be an int >= 1, got {self.batch_size!r}"
            )
        if self.deadline_ms is not None:
            if isinstance(self.deadline_ms, bool) or not isinstance(
                self.deadline_ms, (int, float)
            ):
                raise ConfigError(
                    f"deadline_ms must be a positive number or None, got {self.deadline_ms!r}"
                )
            if not 0 < self.deadline_ms < float("inf"):
                raise ConfigError(
                    f"deadline_ms must be a positive finite number or None, got {self.deadline_ms!r}"
                )
            # Normalise to float so configs hash/compare consistently across
            # int and float spellings of the same budget (result-cache keys).
            object.__setattr__(self, "deadline_ms", float(self.deadline_ms))


@dataclass(frozen=True)
class ExactConfig(MethodConfig):
    """Configuration of the exact solvers.

    Attributes
    ----------
    tolerance:
        Binary-search stopping gap; ``None`` selects the provably-exact
        :func:`~repro.core.density.exactness_tolerance` of the input graph.
    leaf_ratio_count:
        Divide-and-conquer leaf threshold (``dc-exact`` / ``core-exact``).
    seed_with_core:
        Seed the incumbent from the CoreApprox core instead of a cheap peel
        (``dc-exact`` only; ``core-exact`` always seeds with the core).
    node_limit:
        Override of the safety node limit of ``flow-exact`` / ``brute-force``.
    flow:
        The :class:`FlowConfig` selecting the min-cut backend.
    """

    tolerance: float | None = None
    leaf_ratio_count: int = LEAF_RATIO_COUNT
    seed_with_core: bool = False
    node_limit: int | None = None
    flow: FlowConfig = field(default_factory=FlowConfig)

    def __post_init__(self) -> None:
        if self.tolerance is not None and not self.tolerance > 0:
            raise ConfigError(f"tolerance must be > 0, got {self.tolerance!r}")
        if not isinstance(self.leaf_ratio_count, int) or self.leaf_ratio_count < 1:
            raise ConfigError(f"leaf_ratio_count must be an int >= 1, got {self.leaf_ratio_count!r}")
        if self.node_limit is not None and (
            not isinstance(self.node_limit, int) or self.node_limit < 1
        ):
            raise ConfigError(f"node_limit must be an int >= 1, got {self.node_limit!r}")
        if isinstance(self.flow, str):
            # Convenience: ExactConfig(flow="push-relabel").
            object.__setattr__(self, "flow", FlowConfig(solver=self.flow))
        elif not isinstance(self.flow, FlowConfig):
            raise ConfigError(f"flow must be a FlowConfig or solver name, got {self.flow!r}")


@dataclass(frozen=True)
class ApproxConfig(MethodConfig):
    """Configuration of the approximation algorithms.

    Attributes
    ----------
    epsilon:
        Geometric ratio-grid step of ``peel-approx`` (guarantee
        ``2*sqrt(1+epsilon)``); ignored by the core-based approximations.
    ratios:
        Optional explicit ratio grid overriding the geometric one
        (``peel-approx`` only; stored as a tuple so the config stays hashable).
    """

    epsilon: float = 0.5
    ratios: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.epsilon > 0:
            raise ConfigError(f"epsilon must be > 0, got {self.epsilon!r}")
        if self.ratios is not None:
            ratios = tuple(float(r) for r in self.ratios)
            if not ratios:
                raise ConfigError("ratios must be non-empty when given")
            if any(not r > 0 for r in ratios):
                raise ConfigError(f"every ratio must be > 0, got {self.ratios!r}")
            object.__setattr__(self, "ratios", ratios)
