"""Brute-force DDS solver used as the ground-truth oracle in tests.

The solver enumerates every pair of non-empty vertex subsets, so it is only
usable for tiny graphs (``n <= ~8``, i.e. up to ``(2^8 - 1)^2 ≈ 65k`` pairs).
The property-based tests compare every other exact algorithm against it on
random small digraphs.
"""

from __future__ import annotations

import math
from itertools import combinations

from repro.core.config import ExactConfig
from repro.core.results import DDSResult
from repro.exceptions import AlgorithmError
from repro.graph.digraph import DiGraph

#: Enumeration is refused above this node count (the space grows as ``4^n``).
DEFAULT_MAX_NODES = 14


def _non_empty_subsets(indices: list[int]) -> list[list[int]]:
    subsets: list[list[int]] = []
    for size in range(1, len(indices) + 1):
        subsets.extend(list(combo) for combo in combinations(indices, size))
    return subsets


def brute_force_dds(
    graph: DiGraph,
    config: ExactConfig | None = None,
    *,
    max_nodes: int | None = None,
) -> DDSResult:
    """Exhaustively find the densest ``(S, T)`` pair.

    Parameters
    ----------
    graph:
        Input digraph; must have at least one edge.
    config:
        Normalized :class:`~repro.core.config.ExactConfig`; only its
        ``node_limit`` is consulted (safety limit on the enumeration).
    max_nodes:
        Legacy override of the safety limit (default
        :data:`DEFAULT_MAX_NODES`).
    """
    cfg = ExactConfig.resolve(config, node_limit=max_nodes)
    max_nodes = cfg.node_limit if cfg.node_limit is not None else DEFAULT_MAX_NODES
    n = graph.num_nodes
    if n > max_nodes:
        raise AlgorithmError(
            f"brute_force_dds refuses graphs with more than {max_nodes} nodes (got {n})"
        )
    if graph.num_edges == 0:
        raise AlgorithmError("brute_force_dds requires at least one edge")

    indices = list(range(n))
    # Only vertices with at least one outgoing (resp. incoming) edge can ever
    # help the S (resp. T) side; restricting to them keeps the enumeration
    # noticeably smaller without affecting optimality, because adding an
    # isolated-on-that-side vertex can only increase the denominator.
    s_candidates = [u for u in indices if len(graph.out_adj[u]) > 0]
    t_candidates = [v for v in indices if len(graph.in_adj[v]) > 0]

    best_density = -1.0
    best_pair: tuple[list[int], list[int]] = ([], [])
    best_edges = 0
    pairs_examined = 0

    for s_set in _non_empty_subsets(s_candidates):
        for t_set in _non_empty_subsets(t_candidates):
            pairs_examined += 1
            edges = graph.count_edges_between(s_set, t_set)
            density = edges / math.sqrt(len(s_set) * len(t_set))
            if density > best_density + 1e-15:
                best_density = density
                best_pair = (s_set, t_set)
                best_edges = edges

    s_idx, t_idx = best_pair
    return DDSResult(
        s_nodes=graph.labels_of(s_idx),
        t_nodes=graph.labels_of(t_idx),
        density=best_density,
        edge_count=best_edges,
        method="brute-force",
        is_exact=True,
        stats={"pairs_examined": pairs_examined},
    )
